//! # samba-coe
//!
//! A from-scratch Rust reproduction of *"SambaNova SN40L: Scaling the AI
//! Memory Wall with Dataflow and Composition of Experts"* (MICRO 2024) —
//! the SN40L Reconfigurable Dataflow Unit, its three-tier memory system,
//! the streaming-dataflow compiler, and the trillion-parameter Samba-CoE
//! serving stack — built as a simulation and modeling library.
//!
//! The workspace is organized bottom-up:
//!
//! | Module (crate) | What it models |
//! |---|---|
//! | [`arch`] (`sn-arch`) | Typed units, chip/socket/node specs, GPU baselines, calibration |
//! | [`dataflow`] (`sn-dataflow`) | Graph IR, operators, operational-intensity analysis |
//! | [`memsim`] (`sn-memsim`) | HBM/DDR allocators and timed DMA |
//! | [`rdusim`] (`sn-rdusim`) | Cycle-level PCU/PMU/RDN/AGCU simulators |
//! | [`compiler`] (`sn-compiler`) | Fusion, place-and-route, static memory planning, static bandwidth model |
//! | [`runtime`] (`sn-runtime`) | Kernel-launch orchestration, CoE runtime with the HBM LRU cache |
//! | [`models`] (`sn-models`) | Llama2/Mistral/Falcon/Bloom/LLaVA/sparseGPT/FlashFFTConv workloads |
//! | [`baseline`] (`sn-baseline`) | DGX A100/H100 analytical executors and footprint models |
//! | [`coe`] (`sn-coe`) | Samba-CoE: experts, router, serving, platform comparison |
//! | [`faults`] (`sn-faults`) | Seeded fault injection, retry policies, degraded-mode serving |
//! | [`trace`] (`sn-trace`) | Structured event tracing, typed counters, Perfetto timeline export |
//! | [`profile`] (`sn-profile`) | Roofline bottleneck attribution, serving SLO metrics, benchmark snapshots |
//!
//! # Quickstart
//!
//! Compile a Llama2-7B decode step for one SN40L socket and run it on the
//! 8-socket node:
//!
//! ```
//! use samba_coe::arch::prelude::*;
//! use samba_coe::compiler::{Compiler, FusionPolicy};
//! use samba_coe::models::{build, Phase, TransformerConfig};
//! use samba_coe::runtime::executor::NodeExecutor;
//!
//! let cfg = TransformerConfig::llama2_7b();
//! let graph = build(&cfg, Phase::Decode { past_tokens: 4096 }, 1, 8)?;
//! let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
//! let exe = compiler.compile(&graph, FusionPolicy::Spatial)?;
//! let node = NodeExecutor::new(NodeSpec::sn40l_node(), Calibration::baseline());
//! let report = node.run(&exe, Orchestration::Hardware);
//! // A memory-bound decode step takes ~1-2 ms on the node.
//! assert!(report.total.as_millis() < 5.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! harness regenerating every table and figure of the paper.

pub use sn_arch as arch;
pub use sn_baseline as baseline;
pub use sn_coe as coe;
pub use sn_compiler as compiler;
pub use sn_dataflow as dataflow;
pub use sn_faults as faults;
pub use sn_memsim as memsim;
pub use sn_models as models;
pub use sn_profile as profile;
pub use sn_rdusim as rdusim;
pub use sn_runtime as runtime;
pub use sn_trace as trace;
