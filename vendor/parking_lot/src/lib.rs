#![allow(clippy::all, clippy::pedantic)]
//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Matches the parking_lot API shape used in this repo: `lock()` returns
//! the guard directly (poisoning is swallowed, as parking_lot has no
//! poisoning).

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex that never poisons, like `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock that never poisons, like `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
