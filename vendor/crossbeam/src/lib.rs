#![allow(clippy::all, clippy::pedantic)]
//! Offline stand-in for `crossbeam`, implementing the scoped-thread API
//! this repo uses on top of `std::thread::scope` (Rust 1.63+).

pub mod thread {
    //! Scoped threads mirroring `crossbeam::thread`.

    use std::any::Any;

    /// Mirrors `crossbeam::thread::Scope`: spawn closures receive the
    /// scope again so they can spawn nested work.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Mirrors `crossbeam::thread::scope`. All spawned threads are joined
    /// before this returns; panics in children surface as `Err` in real
    /// crossbeam, but `std::thread::scope` re-raises them, so the `Ok`
    /// here is only reached when every child succeeded.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod pool {
    //! A persistent scoped worker pool for fine-grained dispatch.
    //!
    //! `thread::scope` spawns and joins OS threads on every call, which
    //! costs ~100µs per dispatch — fine for sweep points that run for
    //! milliseconds, far too slow for per-wave lane work measured in
    //! tens of microseconds. This pool spawns its workers once; each
    //! worker then *blocks* on its own job channel (no spinning, so idle
    //! workers never steal cycles from the coordinator on small hosts)
    //! and [`Pool::scoped`] provides the same borrows-allowed closure
    //! interface as a scope, with a completion barrier before it
    //! returns.

    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::mpsc::{channel, Receiver, Sender};
    use std::thread::JoinHandle;

    type Job = Box<dyn FnOnce() + Send + 'static>;

    /// A fixed set of persistent worker threads.
    pub struct Pool {
        senders: Vec<Sender<Job>>,
        done_rx: Receiver<bool>,
        handles: Vec<JoinHandle<()>>,
    }

    impl std::fmt::Debug for Pool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Pool")
                .field("workers", &self.senders.len())
                .finish()
        }
    }

    impl Pool {
        /// Spawns `workers` (at least 1) blocked worker threads.
        pub fn new(workers: usize) -> Pool {
            let workers = workers.max(1);
            let (done_tx, done_rx) = channel::<bool>();
            let mut senders = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (tx, rx) = channel::<Job>();
                let done = done_tx.clone();
                handles.push(std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let ok = catch_unwind(AssertUnwindSafe(job)).is_ok();
                        if done.send(ok).is_err() {
                            break;
                        }
                    }
                }));
                senders.push(tx);
            }
            Pool {
                senders,
                done_rx,
                handles,
            }
        }

        /// Number of worker threads.
        pub fn workers(&self) -> usize {
            self.senders.len()
        }

        /// Runs one closure per worker (index-aligned: `jobs[i]` runs on
        /// worker `i`) and blocks until every one has finished. Closures
        /// may borrow from the caller's stack: the completion barrier
        /// guarantees no job outlives this call.
        ///
        /// # Panics
        ///
        /// Panics when given more jobs than workers, and re-panics after
        /// the barrier if any job panicked (every worker stays usable —
        /// jobs run under `catch_unwind`).
        pub fn scoped<'scope, F>(&mut self, jobs: Vec<F>)
        where
            F: FnOnce() + Send + 'scope,
        {
            let n = jobs.len();
            assert!(n <= self.senders.len(), "more jobs than pool workers");
            for (i, job) in jobs.into_iter().enumerate() {
                let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(job);
                // SAFETY: the barrier below blocks until every submitted
                // job has completed (panicked jobs still report via
                // catch_unwind), so no borrow captured by `job` is used
                // past this function's lifetime. This is the classic
                // scoped-threadpool lifetime erasure.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
                self.senders[i].send(job).expect("pool worker alive");
            }
            let mut panicked = false;
            for _ in 0..n {
                match self.done_rx.recv() {
                    Ok(true) => {}
                    Ok(false) | Err(_) => panicked = true,
                }
            }
            assert!(!panicked, "pool worker job panicked");
        }
    }

    impl Drop for Pool {
        fn drop(&mut self) {
            // Closing the job channels wakes every blocked worker, which
            // then exits its recv loop.
            self.senders.clear();
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_slots() {
        let mut slots = vec![0usize; 8];
        super::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i + 1);
            }
        })
        .unwrap();
        assert_eq!(slots, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn pool_runs_borrowing_jobs_to_completion() {
        let mut pool = super::pool::Pool::new(4);
        let mut outs = vec![0usize; 4];
        for round in 0..3 {
            let jobs: Vec<_> = outs
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| move || *slot = (round + 1) * 10 + i)
                .collect();
            pool.scoped(jobs);
        }
        assert_eq!(outs, vec![30, 31, 32, 33]);
    }

    #[test]
    fn pool_accepts_fewer_jobs_than_workers() {
        let mut pool = super::pool::Pool::new(4);
        let mut hit = false;
        pool.scoped(vec![|| hit = true]);
        assert!(hit);
        assert_eq!(pool.workers(), 4);
    }

    #[test]
    fn pool_propagates_worker_panics() {
        let mut pool = super::pool::Pool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scoped(vec![|| panic!("lane failure"), || ()]);
        }));
        assert!(result.is_err(), "job panic must surface to the caller");
        // The barrier drained both completions, so the pool stays usable.
        let mut ok = false;
        pool.scoped(vec![|| ok = true]);
        assert!(ok);
    }
}
