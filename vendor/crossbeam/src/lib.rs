#![allow(clippy::all, clippy::pedantic)]
//! Offline stand-in for `crossbeam`, implementing the scoped-thread API
//! this repo uses on top of `std::thread::scope` (Rust 1.63+).

pub mod thread {
    //! Scoped threads mirroring `crossbeam::thread`.

    use std::any::Any;

    /// Mirrors `crossbeam::thread::Scope`: spawn closures receive the
    /// scope again so they can spawn nested work.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Mirrors `crossbeam::thread::scope`. All spawned threads are joined
    /// before this returns; panics in children surface as `Err` in real
    /// crossbeam, but `std::thread::scope` re-raises them, so the `Ok`
    /// here is only reached when every child succeeded.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_slots() {
        let mut slots = vec![0usize; 8];
        super::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i + 1);
            }
        })
        .unwrap();
        assert_eq!(slots, (1..=8).collect::<Vec<_>>());
    }
}
