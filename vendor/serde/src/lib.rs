#![allow(clippy::all, clippy::pedantic)]
//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, and this repo currently
//! uses `Serialize`/`Deserialize` purely as marker derives documenting
//! which types are serialization-ready. The traits here are empty markers
//! and the derives (re-exported from the stub `serde_derive`) emit empty
//! impls. Replace with the real crates when a registry is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
