#![allow(clippy::all, clippy::pedantic)]
//! Offline stand-in for the `bytes` crate: a minimal `Bytes` container
//! backed by `Vec<u8>` (no zero-copy slicing; this repo only uses it as
//! an opaque payload).

/// A contiguous byte payload.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub const fn new() -> Self {
        Bytes(Vec::new())
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![1, 2, 3]).len(), 3);
        assert_eq!(Bytes::from_static(b"ab").as_slice(), b"ab");
    }
}
