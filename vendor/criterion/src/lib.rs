#![allow(clippy::all, clippy::pedantic)]
//! Offline stand-in for `criterion`.
//!
//! Provides the macro/entry-point surface the bench targets use —
//! `criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter` — backed by a simple wall-clock
//! timer: a short warmup, then a fixed measurement window, reporting
//! mean ns/iteration. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _criterion: self }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub runs one pass regardless.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iterations == 0 {
        println!("  {name}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iterations as f64;
    println!("  {name}: {per_iter:.0} ns/iter ({} iters)", b.iterations);
}

/// Passed to each benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        // Warmup: let caches and allocators settle.
        for _ in 0..3 {
            black_box(payload());
        }
        // Measure for a bounded window.
        let window = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < window {
            black_box(payload());
            iters += 1;
        }
        self.elapsed += start.elapsed();
        self.iterations += iters;
    }
}

/// Mirrors `criterion_group!`: defines a function running each benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion_main!`: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.finish();
    }
}
