#![allow(clippy::all, clippy::pedantic)]
//! Offline stand-in for the `rand` crate.
//!
//! Provides the small API slice this repo uses (`StdRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range`) with a deterministic splitmix64 core. The
//! streams differ from the real `StdRng` (ChaCha12), but every consumer in
//! this repo only relies on *seed-stable determinism*, not on matching
//! upstream streams.

/// Low-level random source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling conveniences, mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of a type with a standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from a half-open range.
    fn gen_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard uniform distribution (stand-in for
/// `Distribution<T> for Standard`).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types drawable uniformly from a half-open range.
pub trait UniformRange: Sized {
    fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl UniformRange for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

impl UniformRange for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        range.start + f32::sample(rng) * (range.end - range.start)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete RNGs.

    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state ^ 0x6A09_E667_F3BC_C908,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// Deterministic stand-in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng {
                state: state ^ 0xBB67_AE85_84CA_A73B,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..9);
            assert!((3..9).contains(&v));
        }
    }
}
