#![allow(clippy::all, clippy::pedantic)]
//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real serde
//! derive machinery is unavailable. This repo only uses `Serialize` /
//! `Deserialize` as marker derives (nothing actually serializes yet), so
//! the derives expand to empty marker impls. If real serialization is
//! needed later, swap these stubs for the genuine crates.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum`/`union` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tok in input {
        if let TokenTree::Ident(id) = &tok {
            let s = id.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("derive input has no struct/enum name");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
