#![allow(clippy::all, clippy::pedantic)]
//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this repo's property tests
//! use: range/tuple/`Just`/mapped/boxed strategies, `collection::vec` and
//! `collection::btree_set`, `prop_oneof!`, `prop_shuffle`, and the
//! `proptest!` macro with `#![proptest_config(...)]`. Sampling is
//! deterministic per test name; there is no shrinking — failures report
//! the sampled inputs via the normal panic message instead.

pub mod test_runner {
    //! Configuration and the deterministic test RNG.

    /// Stand-in for `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic splitmix64 RNG, seeded from the property name so
    /// every run of a given test samples the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            let mut state = 0x5EED_0F_5A31A_u64;
            for b in name.bytes() {
                state = state.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
            }
            TestRng { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Strategies: deterministic samplers for input values.

    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A sampler of values of type `Self::Value`. Unlike real proptest
    /// there is no value tree / shrinking; `sample` draws directly.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Shuffles the sampled collection (for `Vec` values).
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle(self)
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe sampling, for [`BoxedStrategy`].
    pub trait DynStrategy<V> {
        fn sample_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(pub(crate) Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample_dyn(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Applies a function to another strategy's samples.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Fisher–Yates shuffle of a sampled `Vec`.
    #[derive(Debug, Clone)]
    pub struct Shuffle<S>(pub(crate) S);

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;

        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let mut v = self.0.sample(rng);
            for i in (1..v.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                v.swap(i, j);
            }
            v
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            assert!(!self.0.is_empty(), "prop_oneof! of nothing");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Element-count specification: an exact count or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo) as u64) as usize
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s of sampled elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet`s of sampled elements. Duplicates collapse,
    /// so the set may come out smaller than the requested count (real
    /// proptest retries; for this repo's ranges the distinction is
    /// irrelevant, and at least one element is always present when the
    /// minimum count is nonzero).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::btree_set`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each property as a loop of deterministic samples. Mirrors the
/// `proptest!` macro shape used in this repo (named bindings with `in`,
/// optional `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($binding:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(let $binding = $crate::strategy::Strategy::sample(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($binding:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($binding in $strat),*) $body
            )*
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Stand-in for `prop_assert!`: plain `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Stand-in for `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Stand-in for `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn sampling_is_deterministic_per_name() {
        let strat = crate::collection::vec(0u64..100, 1..8);
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(
            Strategy::sample(&strat, &mut a),
            Strategy::sample(&strat, &mut b)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (1usize..4).prop_map(|x| x * 2),
                Just(99usize),
            ]
        ) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 8));
        }

        #[test]
        fn shuffle_is_a_permutation(
            order in Just((0..16usize).collect::<Vec<_>>()).prop_shuffle()
        ) {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        }
    }
}
