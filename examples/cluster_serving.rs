//! Scale a CoE past one node: shard 2,000 experts over a cluster of SN40L
//! nodes and serve batches concurrently.
//!
//! ```sh
//! cargo run --release --example cluster_serving
//! ```

use samba_coe::arch::prelude::*;
use samba_coe::coe::cluster::CoeCluster;
use samba_coe::coe::{ExpertLibrary, PromptGenerator};
use samba_coe::models::TransformerConfig;

fn main() {
    // 2,000 BF16 experts exceed one node's 12 TiB of DDR; three nodes fit.
    let experts = 2000;
    println!("library: {experts} Llama2-7B experts");
    for nodes in [3usize, 4, 6] {
        let library = ExpertLibrary::new(experts);
        let mut cluster = CoeCluster::new(NodeSpec::sn40l_node(), nodes, library, 1024)
            .expect("cluster sized to fit");
        let mut generator = PromptGenerator::new(4242, 1024);
        // Warm, then measure.
        for _ in 0..3 {
            cluster.serve_batch(&generator.batch(24), 20);
        }
        let report = cluster.serve_batch(&generator.batch(24), 20);
        println!(
            "  {nodes} nodes: batch of 24 in {} (imbalance {:.2}, misses {})",
            report.latency,
            report.imbalance(),
            report.expert_misses
        );
    }

    // The INT8 variant fits the same library on fewer nodes.
    let int8 = TransformerConfig::llama2_7b().quantized_int8();
    let library = ExpertLibrary::with_config(experts, int8);
    match CoeCluster::new(NodeSpec::sn40l_node(), 2, library, 1024) {
        Ok(_) => println!("\nINT8 quantization: the same {experts} experts fit 2 nodes"),
        Err(e) => println!("\nunexpected: {e}"),
    }
}
