//! Study a realistic serving day: a skewed, drifting request trace against
//! the 150-expert CoE, with and without expert prefetching.
//!
//! ```sh
//! cargo run --release --example trace_study
//! ```

use samba_coe::arch::prelude::*;
use samba_coe::coe::{ExpertLibrary, SambaCoeNode, TraceConfig, TraceGenerator};

fn main() {
    let config = TraceConfig {
        skew: 0.9,
        drift_period: 256,
        prompt_tokens: 1024,
    };
    println!(
        "trace: Zipf skew {}, drift every {} requests, 150 experts\n",
        config.skew, config.drift_period
    );

    for (label, prefetch) in [
        ("sequential switching", false),
        ("prefetched switching", true),
    ] {
        let mut node =
            SambaCoeNode::new(NodeSpec::sn40l_node(), ExpertLibrary::samba_coe_150(), 1024);
        let mut trace = TraceGenerator::new(77, config);
        let mut total = TimeSecs::ZERO;
        let mut switching = TimeSecs::ZERO;
        let mut misses = 0;
        let batches = 40;
        for _ in 0..batches {
            let batch = trace.batch(8);
            let report = if prefetch {
                node.serve_batch_prefetched(&batch, 20)
            } else {
                node.serve_batch(&batch, 20)
            };
            total += report.total();
            switching += report.switching;
            misses += report.expert_misses;
        }
        println!(
            "{label:<22} {batches} batches: total {total}, exposed switching {switching} \
             ({misses} cold misses)"
        );
    }

    println!("\nThe skewed trace keeps a hot expert set resident (few misses after");
    println!("warmup), and prefetching hides most of what switching remains —");
    println!("both effects ride on the DDR tier holding the full library (§III-B).");
}
