//! Explore operator fusion on the paper's motivating example (Figure 3 /
//! Table I): operational intensity, roofline regimes, and the simulated
//! speedup of spatial fusion.
//!
//! ```sh
//! cargo run --example fusion_explorer
//! ```

use samba_coe::arch::prelude::*;
use samba_coe::compiler::{Bound, Compiler, FusionPolicy};
use samba_coe::dataflow::intensity::{fusion_levels, FusionLevel};
use samba_coe::dataflow::monarch::{flash_fft_conv, monarch_fig3};
use samba_coe::runtime::executor::NodeExecutor;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let graph = monarch_fig3();
    println!(
        "Figure 3 example: {} operators, {} total FLOPs",
        graph.node_count(),
        graph.total_flops()
    );

    let socket = SocketSpec::sn40l();
    let a100 = GpuSpec::a100();
    println!(
        "machine balance: A100 {:.0} FLOPs/byte, SN40L {:.0} FLOPs/byte\n",
        a100.balance(),
        socket.hbm_balance()
    );

    let levels = fusion_levels(&graph);
    for (label, level, paper) in [
        ("no fusion", FusionLevel::None, 39.5),
        ("gemm-anchored fusion", FusionLevel::Partial, 102.6),
        ("fully spatially fused", FusionLevel::Full, 410.4),
    ] {
        let i = levels[&level];
        let regime = if i < a100.balance() {
            "memory-bound on A100"
        } else {
            "compute-bound on A100"
        };
        println!("{label:<24} {i:>7.1} ops/byte (paper {paper:>6.1}) — {regime}");
    }

    let compiler = Compiler::new(socket, Calibration::baseline());
    let node = NodeExecutor::new(NodeSpec::sn40l_node(), Calibration::baseline());
    println!("\nsimulated execution on one SN40L socket:");
    for policy in [FusionPolicy::Unfused, FusionPolicy::Spatial] {
        let exe = compiler.compile(&graph, policy)?;
        let r = node.run(&exe, Orchestration::Hardware);
        let bounds: Vec<&str> = exe
            .estimates()
            .iter()
            .map(|e| match e.bound {
                Bound::Compute => "C",
                Bound::Memory => "M",
                Bound::Collective => "X",
            })
            .collect();
        println!(
            "  {policy:?}: {} in {} kernels (bounds: {})",
            r.total,
            exe.kernel_count(),
            bounds.join("")
        );
    }

    println!("\nFlashFFTConv (1M sequence, radix-32, 4 levels):");
    let fft = flash_fft_conv(8, 32, 4);
    let unfused = compiler.compile(&fft, FusionPolicy::Unfused)?;
    let fused = compiler.compile(&fft, FusionPolicy::Spatial)?;
    let tu = node.run(&unfused, Orchestration::Software).total;
    let tf = node.run(&fused, Orchestration::Hardware).total;
    println!(
        "  {} unfused kernels -> {} fused kernel(s): {} -> {} ({:.1}x)",
        unfused.kernel_count(),
        fused.kernel_count(),
        tu,
        tf,
        tu / tf
    );
    Ok(())
}
