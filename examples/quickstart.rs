//! Quickstart: compile a Llama2-7B workload for the SN40L and compare
//! fusion policies and launch orchestration.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use samba_coe::arch::prelude::*;
use samba_coe::compiler::{Compiler, FusionPolicy};
use samba_coe::models::{build, Phase, TransformerConfig};
use samba_coe::runtime::executor::NodeExecutor;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = TransformerConfig::llama2_7b();
    println!(
        "model: {} ({:.2}B params, {} of BF16 weights)",
        cfg.name,
        cfg.param_count() as f64 / 1e9,
        cfg.param_bytes()
    );

    let socket = SocketSpec::sn40l();
    println!(
        "socket: {} — {} peak BF16, {} HBM @ {}, {} DDR @ {}",
        socket.chip.name,
        socket.peak_bf16(),
        socket.hbm.capacity,
        socket.hbm.bandwidth,
        socket.ddr.capacity,
        socket.ddr.bandwidth,
    );

    let compiler = Compiler::new(socket, Calibration::baseline());
    let node = NodeExecutor::new(NodeSpec::sn40l_node(), Calibration::baseline());

    for (label, phase) in [
        (
            "prefill(4096)",
            Phase::Prefill {
                prompt_tokens: 4096,
            },
        ),
        ("decode@4096", Phase::Decode { past_tokens: 4096 }),
    ] {
        println!("\n== {label} (TP8, one socket shard) ==");
        let graph = build(&cfg, phase, 1, 8)?;
        println!("graph: {} operators", graph.node_count());
        for policy in [FusionPolicy::Unfused, FusionPolicy::Spatial] {
            let exe = compiler.compile(&graph, policy)?;
            for orch in [Orchestration::Software, Orchestration::Hardware] {
                let r = node.run(&exe, orch);
                println!(
                    "  {policy:?} + {orch:?}: total {} ({} kernels, {} distinct programs, \
                     {:.0}% launch overhead)",
                    r.total,
                    r.launches,
                    r.distinct_programs,
                    100.0 * r.overhead_fraction()
                );
            }
        }
    }
    Ok(())
}
