//! Serve a prompt stream against the 150-expert Samba-CoE on one SN40L
//! node, watching the HBM expert cache warm up (Figure 9's pipeline).
//!
//! ```sh
//! cargo run --example coe_serving
//! ```

use samba_coe::arch::prelude::*;
use samba_coe::coe::{ExpertLibrary, PromptGenerator, SambaCoeNode};

fn main() {
    let library = ExpertLibrary::samba_coe_150();
    println!(
        "Samba-CoE: {} experts + router = {:.2}T parameters, {} in node DDR",
        library.len(),
        library.total_params() as f64 / 1e12,
        library.library_bytes(),
    );

    let mut node = SambaCoeNode::new(NodeSpec::sn40l_node(), library, 1024);
    let mut generator = PromptGenerator::new(2026, 1024);

    println!("\nserving 12 batches of 8 prompts, 20 output tokens each:");
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>12} {:>6} {:>6}",
        "batch", "router", "switching", "execution", "total", "hits", "miss"
    );
    for i in 0..12 {
        let batch = generator.batch(8);
        let report = node.serve_batch(&batch, 20);
        println!(
            "{:<6} {:>10} {:>12} {:>12} {:>12} {:>6} {:>6}",
            i,
            report.router.to_string(),
            report.switching.to_string(),
            report.execution.to_string(),
            report.total().to_string(),
            report.expert_hits,
            report.expert_misses,
        );
    }
    println!("\nAs the working set of experts warms into HBM, switching time");
    println!("falls toward zero — the temporal locality §III-B builds on.");
}
