//! Plan a CoE deployment: how many SN40L nodes vs DGX nodes does a given
//! expert library need (the Figure 13 question), and where does each
//! platform run out of memory?
//!
//! ```sh
//! cargo run --example capacity_planner -- 400
//! ```
//! (argument: expert count, default 850)

use samba_coe::arch::prelude::*;
use samba_coe::baseline::{dgx_nodes_needed, sn40l_nodes_needed};
use samba_coe::models::TransformerConfig;

fn main() {
    let experts: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(850);
    let cfg = TransformerConfig::llama2_7b();
    let expert_bytes = cfg.param_bytes();
    let total = expert_bytes * experts as u64;
    println!(
        "library: {experts} x {} experts = {} of weights\n",
        cfg.name, total
    );

    let sn = NodeSpec::sn40l_node();
    let a100 = DgxSpec::dgx_a100();
    let h100 = DgxSpec::dgx_h100();

    println!("to *sustain TP8 latency* (every expert in fast local memory):");
    let sn_nodes = sn40l_nodes_needed(&sn, experts, expert_bytes);
    let a_nodes = dgx_nodes_needed(&a100, experts, expert_bytes);
    let h_nodes = dgx_nodes_needed(&h100, experts, expert_bytes);
    println!(
        "  SN40L  : {sn_nodes:>3} node(s) — experts live in {} of node DDR",
        sn.ddr_capacity()
    );
    println!(
        "  DGX A100: {a_nodes:>3} node(s) — experts must live in {} of HBM",
        a100.hbm_for_experts()
    );
    println!(
        "  DGX H100: {h_nodes:>3} node(s)   (footprint reduction: {:.0}x / {:.0}x)",
        a_nodes as f64 / sn_nodes as f64,
        h_nodes as f64 / sn_nodes as f64
    );

    println!("\nsingle-node capacity limits (weights anywhere, any latency):");
    let dgx_max = ((a100.total_expert_capacity().as_f64()) / expert_bytes.as_f64()) as usize;
    let sn_max = (sn.ddr_capacity().as_f64() / expert_bytes.as_f64()) as usize;
    println!("  SN40L Node: {sn_max} experts before DDR exhausts");
    println!(
        "  DGX       : {dgx_max} experts before HBM+host DRAM exhaust (the paper's '>150 -> OOM')"
    );

    println!("\nswitching cost per expert miss:");
    println!(
        "  SN40L  DDR->HBM : {}",
        expert_bytes / sn.model_switch_bandwidth()
    );
    println!(
        "  DGX A100 host->HBM: {}",
        expert_bytes / a100.model_switch_bandwidth()
    );
    println!(
        "  DGX H100 host->HBM: {}",
        expert_bytes / h100.model_switch_bandwidth()
    );
}
