//! Watch the CoE runtime's HBM activation cache under different policies
//! (§V-B): LRU vs FIFO eviction and read-only copy-back elision.
//!
//! ```sh
//! cargo run --example model_switching
//! ```

use samba_coe::arch::prelude::*;
use samba_coe::runtime::coe::{CoeRuntime, CoeRuntimeConfig, EvictionPolicy, ModelBinary};

fn run_trace(eviction: EvictionPolicy, skip_readonly: bool) -> (f64, u64, u64) {
    let mut rt = CoeRuntime::new(
        &NodeSpec::sn40l_node(),
        CoeRuntimeConfig {
            eviction,
            skip_readonly_copyback: skip_readonly,
            hbm_reserved: Bytes::from_gib(48),
        },
    );
    for i in 0..60 {
        rt.register(ModelBinary::weights_only(
            format!("expert{i}"),
            Bytes::from_gb(13.48),
        ))
        .expect("60 experts fit node DDR");
    }
    // Hot set of 30 with periodic cold excursions.
    let mut total = TimeSecs::ZERO;
    for round in 0..10 {
        for hot in 0..30 {
            total += rt
                .activate(&format!("expert{hot}"))
                .expect("registered")
                .switch_time;
        }
        for cold in 0..3 {
            let e = 30 + (round * 3 + cold) % 30;
            total += rt
                .activate(&format!("expert{e}"))
                .expect("registered")
                .switch_time;
        }
    }
    let stats = rt.stats();
    (total.as_secs(), stats.hits, stats.evictions)
}

fn main() {
    println!("trace: 10 rounds x (30 hot experts + 3 cold excursions), 60-expert library\n");
    println!(
        "{:<28} {:>14} {:>8} {:>10}",
        "configuration", "switch time", "hits", "evictions"
    );
    for (label, policy, skip) in [
        ("LRU + read-only elision", EvictionPolicy::Lru, true),
        ("LRU, full copy-back", EvictionPolicy::Lru, false),
        ("FIFO + read-only elision", EvictionPolicy::Fifo, true),
    ] {
        let (secs, hits, evictions) = run_trace(policy, skip);
        println!("{label:<28} {:>12.2} s {hits:>8} {evictions:>10}", secs);
    }
    println!("\nLRU keeps the hot set resident; FIFO churns it. Read-only weights");
    println!("skip the copy-back on eviction, halving thrash cost (§V-B).");
}
