#!/usr/bin/env bash
# Repository-wide checks: formatting, lints, tests. CI runs exactly this
# script, so a clean local run means a clean CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --release (integration tests at optimized speed)"
cargo test --workspace --release -q --tests

echo "==> repro serve --jobs parity (parallel sweep == legacy path, byte-for-byte)"
cargo build --release -q -p sn-bench --bin repro
./target/release/repro --jobs 1 serve > /tmp/serve_jobs1.out
./target/release/repro --jobs 4 serve > /tmp/serve_jobs4.out
if ! diff -u /tmp/serve_jobs1.out /tmp/serve_jobs4.out; then
  echo "serve sweep output differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
rm -f /tmp/serve_jobs1.out /tmp/serve_jobs4.out

echo "==> repro tenants chaos smoke (correlated-failure window, --jobs parity)"
./target/release/repro --jobs 1 tenants > /tmp/tenants_jobs1.out
./target/release/repro --jobs 2 tenants > /tmp/tenants_jobs2.out
if ! diff -u /tmp/tenants_jobs1.out /tmp/tenants_jobs2.out; then
  echo "tenants sweep output differs between --jobs 1 and --jobs 2" >&2
  exit 1
fi
grep -q "MULTI-TENANT CHAOS" /tmp/tenants_jobs1.out
rm -f /tmp/tenants_jobs1.out /tmp/tenants_jobs2.out

echo "==> repro tenants --intra-jobs parity (lane engine == sequential wave loop, byte-for-byte)"
./target/release/repro --intra-jobs 1 tenants > /tmp/tenants_intra1.out
./target/release/repro --intra-jobs 4 tenants > /tmp/tenants_intra4.out
if ! diff -u /tmp/tenants_intra1.out /tmp/tenants_intra4.out; then
  echo "tenants output differs between --intra-jobs 1 and --intra-jobs 4" >&2
  exit 1
fi
grep -q "MULTI-TENANT CHAOS" /tmp/tenants_intra1.out
rm -f /tmp/tenants_intra1.out /tmp/tenants_intra4.out

echo "==> repro placement policy smoke (stats-driven serving, --jobs parity)"
./target/release/repro --jobs 1 placement > /tmp/placement_jobs1.out
./target/release/repro --jobs 4 placement > /tmp/placement_jobs4.out
if ! diff -u /tmp/placement_jobs1.out /tmp/placement_jobs4.out; then
  echo "placement sweep output differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
grep -q "PLACEMENT POLICIES" /tmp/placement_jobs1.out
rm -f /tmp/placement_jobs1.out /tmp/placement_jobs4.out

echo "==> repro obs smoke (burn-rate alerts + flight recorder, --jobs parity)"
# One shared export path: the printed "wrote <path>" line is part of the
# byte-identity contract, so it must not vary between the two runs.
./target/release/repro --jobs 1 --obs /tmp/obs_check.json obs > /tmp/obs_jobs1.out
mv /tmp/obs_check.json /tmp/obs_jobs1.json
./target/release/repro --jobs 2 --obs /tmp/obs_check.json obs > /tmp/obs_jobs2.out
if ! diff -u /tmp/obs_jobs1.out /tmp/obs_jobs2.out; then
  echo "obs sweep output differs between --jobs 1 and --jobs 2" >&2
  exit 1
fi
if ! diff -q /tmp/obs_jobs1.json /tmp/obs_check.json; then
  echo "--obs export differs between --jobs 1 and --jobs 2" >&2
  exit 1
fi
grep -q "OBSERVABILITY" /tmp/obs_jobs1.out
grep -q "firing" /tmp/obs_jobs1.out
grep -q "resolved" /tmp/obs_jobs1.out
grep -q '"schema":"sn-obs/v1"' /tmp/obs_jobs1.json
rm -f /tmp/obs_jobs1.out /tmp/obs_jobs2.out /tmp/obs_jobs1.json /tmp/obs_check.json

echo "==> repro surrogate smoke (calibrated grid + drift gate, --jobs parity)"
./target/release/repro --jobs 1 surrogate > /tmp/surrogate_jobs1.out
./target/release/repro --jobs 2 surrogate > /tmp/surrogate_jobs2.out
if ! diff -u /tmp/surrogate_jobs1.out /tmp/surrogate_jobs2.out; then
  echo "surrogate output differs between --jobs 1 and --jobs 2" >&2
  exit 1
fi
grep -q "gate: PASS" /tmp/surrogate_jobs1.out
rm -f /tmp/surrogate_jobs1.out /tmp/surrogate_jobs2.out

echo "All checks passed."
