#!/usr/bin/env bash
# Repository-wide checks: formatting, lints, tests. CI runs exactly this
# script, so a clean local run means a clean CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --release (integration tests at optimized speed)"
cargo test --workspace --release -q --tests

echo "All checks passed."
