#!/usr/bin/env bash
# Continuous-benchmark regression gate. Regenerates the tracked-metric
# snapshot (or takes a pre-generated one as $1) and compares it against
# the committed BENCH_PR10.json baseline; exits non-zero if any tracked
# metric drifts beyond its tolerance. CI runs exactly this script.
# Wall-clock timings (sweep at 1 job vs N jobs, intra-run lane timings,
# surrogate grid timings, host cores) ride along as info entries, which
# are recorded but never compared.
#
# Usage:
#   scripts/bench_check.sh                  # regenerate current snapshot in-process
#   scripts/bench_check.sh current.json     # compare a pre-generated snapshot
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_PR10.json
if [[ ! -f "$BASELINE" ]]; then
  echo "missing baseline $BASELINE — generate one with: cargo run --release -p sn-bench --bin repro -- --bench-json $BASELINE" >&2
  exit 1
fi

# Only rows carrying a "tolerance" field are tracked metrics; info rows
# (wall-clock timings, host facts) have no tolerance and are skipped by
# the comparison. Count both up front so the gate's coverage — and what
# it deliberately ignores — is visible in CI logs.
TRACKED=$(grep -c '"tolerance":' "$BASELINE" || true)
TOTAL=$(grep -c '{"key":' "$BASELINE" || true)
INFO=$((TOTAL - TRACKED))
echo "==> baseline $BASELINE: $TRACKED tracked metrics, skipping $INFO info rows (recorded, never compared)"
if [[ "$TRACKED" -eq 0 ]]; then
  echo "==> baseline has only info rows — nothing is gated; the comparison passes vacuously"
fi

echo "==> cargo build --release -p sn-bench (repro)"
cargo build --release -q -p sn-bench --bin repro

echo "==> repro --bench-check $BASELINE ${1:-}"
./target/release/repro --bench-check "$BASELINE" "$@"
