//! Analytical DGX A100 / H100 baselines (§VI-B).
//!
//! The paper estimates DGX latencies from published model-latency numbers
//! and DGX specs rather than measuring them; this crate follows the same
//! methodology, executing the *same dataflow graphs* as the RDU path but
//! under conventional-GPU constraints:
//!
//! - [`partition`]: restricted operator fusion — an optional GEMM anchor
//!   plus a short elementwise epilogue; data-reordering operators break
//!   fusion and materialize (§III-A), and at most a handful of operators
//!   fuse per kernel (§VIII-3);
//! - [`exec`]: roofline kernel timing with per-kernel launch overheads
//!   (CUDA-graph launch mode available) and NVLink collectives;
//! - [`footprint`]: the Figure 13 system-footprint model.

pub mod exec;
pub mod footprint;
pub mod partition;

pub use exec::{GpuExecutor, GpuReport, LaunchMode};
pub use footprint::{dgx_nodes_needed, sn40l_nodes_needed};
pub use partition::gpu_partition;
