//! Conventional-GPU operator fusion (§III-A, §VIII-3).
//!
//! GPU fusion engines attach elementwise prologues/epilogues (and a
//! row-local epilogue like softmax or a norm) to a GEMM anchor, but:
//!
//! - a data-reordering operator (transpose, reshape across the fast axis,
//!   gather, concat) ends the kernel — its output materializes to HBM
//!   because threads must exchange data across SMs (§III-A);
//! - at most [`sn_arch::GpuSpec::max_fused_ops`] operators share a kernel
//!   ("conventional operator fusion targets 1-5 operators", §VIII-3);
//! - a second GEMM never joins an existing kernel;
//! - collectives (NCCL) are separate launches.

use sn_dataflow::intensity::KernelPartition;
use sn_dataflow::{AccessPattern, Graph, NodeId};

/// Partitions a graph under conventional GPU fusion rules.
pub fn gpu_partition(graph: &Graph, max_fused_ops: usize) -> KernelPartition {
    assert!(max_fused_ops >= 1);
    fn flush(kernels: &mut KernelPartition, current: &mut Vec<NodeId>) {
        if !current.is_empty() {
            kernels.push(std::mem::take(current));
        }
    }
    let mut kernels: KernelPartition = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();
    for nid in graph.node_ids() {
        let node = graph.node(nid);
        match node.op.access_pattern() {
            AccessPattern::Reorder | AccessPattern::Collective => {
                // Ends any open kernel and stands alone.
                flush(&mut kernels, &mut current);
                kernels.push(vec![nid]);
            }
            AccessPattern::Contraction => {
                // A GEMM starts a fresh kernel.
                flush(&mut kernels, &mut current);
                current.push(nid);
            }
            AccessPattern::Streaming | AccessPattern::RowLocal => {
                // Epilogue fusion — but only onto a kernel whose producer
                // is actually in the kernel (no horizontal fusion), and
                // only up to the operator limit.
                let producer_inside = node
                    .inputs
                    .iter()
                    .filter_map(|&t| graph.producer(t))
                    .any(|p| current.contains(&p));
                if !current.is_empty() && producer_inside && current.len() < max_fused_ops {
                    current.push(nid);
                } else {
                    flush(&mut kernels, &mut current);
                    current.push(nid);
                }
            }
        }
    }
    flush(&mut kernels, &mut current);
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_dataflow::intensity::is_valid_partition;
    use sn_dataflow::monarch::monarch_fig3;
    use sn_models::{build, Phase, TransformerConfig};

    #[test]
    fn transposes_break_gpu_fusion() {
        // Figure 3: the GPU cannot fuse across the Transpose, so the graph
        // needs several kernels where the RDU needs one.
        let g = monarch_fig3();
        let p = gpu_partition(&g, 5);
        assert!(p.len() >= 4, "got {} kernels", p.len());
        assert!(is_valid_partition(&g, &p));
    }

    #[test]
    fn epilogues_attach_to_gemms() {
        // gemm -> mul(twiddle) stays together; cast prologue does not
        // retroactively join.
        let g = monarch_fig3();
        let p = gpu_partition(&g, 5);
        let has_fused_pair = p
            .iter()
            .any(|k| k.len() == 2 && g.node(k[0]).op.is_gemm() && !g.node(k[1]).op.is_gemm());
        assert!(has_fused_pair, "twiddle mul should fuse onto gemm0");
    }

    #[test]
    fn gpu_needs_many_more_kernels_than_rdu_for_llama() {
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, Phase::Decode { past_tokens: 4096 }, 1, 8).unwrap();
        let p = gpu_partition(&g, 5);
        // RDU fuses a layer into ~1 kernel; the GPU needs an order of
        // magnitude more.
        assert!(p.len() > 10 * (cfg.layers + 2), "got {}", p.len());
        assert!(is_valid_partition(&g, &p));
    }

    #[test]
    fn op_limit_is_respected() {
        let cfg = TransformerConfig::llama2_7b();
        let g = build(
            &cfg,
            Phase::Prefill {
                prompt_tokens: 1024,
            },
            1,
            8,
        )
        .unwrap();
        for k in gpu_partition(&g, 5) {
            assert!(k.len() <= 5);
        }
    }

    #[test]
    fn gpu_kernels_average_under_5_ops_rdu_over_20() {
        // §VIII-3: "conventional operator fusion targets 1-5 operators"
        // while "streaming dataflow pipelines ... commonly contain 20+
        // operators".
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, Phase::Decode { past_tokens: 4096 }, 1, 8).unwrap();
        let gpu = gpu_partition(&g, 5);
        let gpu_avg = g.node_count() as f64 / gpu.len() as f64;
        assert!(gpu_avg < 5.0, "GPU avg ops/kernel {gpu_avg:.1}");
        use sn_compiler::{Compiler, FusionPolicy};
        let compiler = Compiler::new(
            sn_arch::SocketSpec::sn40l(),
            sn_arch::Calibration::baseline(),
        );
        let exe = compiler.compile(&g, FusionPolicy::Spatial).unwrap();
        let rdu_avg = g.node_count() as f64 / exe.kernel_count() as f64;
        assert!(rdu_avg > 20.0, "RDU avg ops/kernel {rdu_avg:.1}");
    }

    #[test]
    fn limit_one_means_fully_unfused() {
        let g = monarch_fig3();
        let p = gpu_partition(&g, 1);
        assert_eq!(p.len(), g.node_count());
    }
}
