//! Roofline execution model for DGX baselines.
//!
//! Each GPU of a TP8 DGX runs the same per-socket graph shard the RDU
//! sockets run, but partitioned under GPU fusion rules. Kernel time is the
//! max of the compute and memory rooflines; small kernels achieve a lower
//! fraction of HBM bandwidth (launch gaps, low occupancy), which is what
//! makes unfusable decode graphs slow even on very fast HBM.

use crate::partition::gpu_partition;
use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, Calibration, DgxSpec, TimeSecs};
use sn_dataflow::{Graph, OpKind};

/// Kernel launch mechanism to credit the baseline with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LaunchMode {
    /// Stream launches from the host (one driver call per kernel).
    Standard,
    /// CUDA-graph replay: the optimistic assumption the paper grants DGX
    /// estimates.
    CudaGraph,
}

/// Timing breakdown for one graph execution on a DGX.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuReport {
    pub total: TimeSecs,
    pub exec: TimeSecs,
    pub launch: TimeSecs,
    pub collective: TimeSecs,
    pub kernels: usize,
    pub traffic: Bytes,
}

/// Kernels moving less than this are "small": they cannot hide launch
/// latency or fill the memory system (empirically, decode-sized GEMM
/// kernels sit far below streaming bandwidth).
const SMALL_KERNEL_BYTES: u64 = 32 * 1024 * 1024;

/// Executes graphs analytically on a DGX node.
#[derive(Debug, Clone)]
pub struct GpuExecutor {
    dgx: DgxSpec,
    calib: Calibration,
}

impl GpuExecutor {
    pub fn new(dgx: DgxSpec, calib: Calibration) -> Self {
        GpuExecutor { dgx, calib }
    }

    pub fn dgx(&self) -> &DgxSpec {
        &self.dgx
    }

    /// Runs one per-GPU graph shard (all GPUs in lockstep under TP).
    pub fn run(&self, graph: &Graph, mode: LaunchMode) -> GpuReport {
        let gpu = &self.dgx.gpu;
        let partition = gpu_partition(graph, gpu.max_fused_ops);
        let mut exec = TimeSecs::ZERO;
        let mut collective = TimeSecs::ZERO;
        let mut traffic = Bytes::ZERO;
        for kernel in &partition {
            // Collectives run on NCCL over NVLink, fully exposed.
            if let OpKind::AllReduce { participants } = &graph.node(kernel[0]).op {
                if *participants > 1 {
                    let bytes = graph.tensor(graph.node(kernel[0]).output).bytes();
                    let factor = 2.0 * (*participants as f64 - 1.0) / *participants as f64;
                    collective += Bytes::new((bytes.as_f64() * factor) as u64) / self.dgx.nvlink;
                }
                continue;
            }
            let flops = graph.subset_flops(kernel);
            let bytes = graph.subset_boundary_bytes(kernel);
            traffic += bytes;
            let compute = flops / gpu.peak_bf16.scale(self.calib.gpu_prefill_efficiency);
            let bw_eff = if bytes.as_u64() < SMALL_KERNEL_BYTES {
                gpu.hbm_efficiency_small_kernels
            } else {
                gpu.hbm_efficiency
            };
            let memory = bytes / gpu.hbm_bandwidth.scale(bw_eff);
            exec += compute.max(memory);
        }
        let per_launch = match mode {
            LaunchMode::Standard => gpu.kernel_launch,
            LaunchMode::CudaGraph => gpu.graph_launch,
        };
        let launch = per_launch * partition.len() as f64;
        GpuReport {
            total: exec + launch + collective,
            exec,
            launch,
            collective,
            kernels: partition.len(),
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_arch::{DgxSpec, NodeSpec, Orchestration, SocketSpec};
    use sn_compiler::{Compiler, FusionPolicy};
    use sn_models::{build, Phase, TransformerConfig};
    use sn_runtime::executor::NodeExecutor;

    fn a100() -> GpuExecutor {
        GpuExecutor::new(DgxSpec::dgx_a100(), Calibration::baseline())
    }

    fn h100() -> GpuExecutor {
        GpuExecutor::new(DgxSpec::dgx_h100(), Calibration::baseline())
    }

    fn llama_graph(phase: Phase) -> Graph {
        build(&TransformerConfig::llama2_7b(), phase, 1, 8).unwrap()
    }

    #[test]
    fn h100_beats_a100() {
        for phase in [
            Phase::Prefill {
                prompt_tokens: 4096,
            },
            Phase::Decode { past_tokens: 4096 },
        ] {
            let g = llama_graph(phase);
            let a = a100().run(&g, LaunchMode::CudaGraph).total;
            let h = h100().run(&g, LaunchMode::CudaGraph).total;
            assert!(h < a, "H100 must win: {h} vs {a}");
        }
    }

    #[test]
    fn decode_step_is_low_single_digit_ms() {
        // NVIDIA-published llama2-7b TP8 decode steps are 1-5 ms; the
        // model should land in that range.
        let g = llama_graph(Phase::Decode { past_tokens: 4096 });
        let t = a100().run(&g, LaunchMode::CudaGraph).total.as_millis();
        assert!(t > 1.0 && t < 8.0, "A100 decode step {t} ms");
    }

    #[test]
    fn sn40l_decode_beats_dgx_by_paper_margins() {
        // §VI-B under 50 experts, 200-token (decode-dominated) case:
        // ~3.2x vs DGX A100 and ~2.3x vs DGX H100.
        let g = llama_graph(Phase::Decode { past_tokens: 4096 });
        let c = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        let exe = c.compile(&g, FusionPolicy::Spatial).unwrap();
        let node = NodeExecutor::new(NodeSpec::sn40l_node(), Calibration::baseline());
        let rdu = node.run(&exe, Orchestration::Hardware).total;
        let a = a100().run(&g, LaunchMode::CudaGraph).total / rdu;
        let h = h100().run(&g, LaunchMode::CudaGraph).total / rdu;
        // The single-step graph ratio runs a little above the end-to-end
        // Table III expert ratio (which amortizes program loads over the
        // decode loop); the loop-level check lives in sn-coe.
        assert!(a > 2.5 && a < 5.5, "vs A100 {a:.2}x (paper 3.2x)");
        assert!(h > 1.8 && h < 4.5, "vs H100 {h:.2}x (paper 2.3x)");
    }

    #[test]
    fn sn40l_prefill_beats_dgx_moderately() {
        // Prefill is compute-bound; the win comes from fusion keeping the
        // pipeline busy, roughly the paper's 1.5-2x expert-speedup band.
        let g = llama_graph(Phase::Prefill {
            prompt_tokens: 4096,
        });
        let c = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        let exe = c.compile(&g, FusionPolicy::Spatial).unwrap();
        let node = NodeExecutor::new(NodeSpec::sn40l_node(), Calibration::baseline());
        let rdu = node.run(&exe, Orchestration::Hardware).total;
        let a = a100().run(&g, LaunchMode::CudaGraph).total / rdu;
        assert!(a > 1.3 && a < 4.0, "prefill vs A100 {a:.2}x");
    }

    #[test]
    fn cuda_graphs_help_decode() {
        let g = llama_graph(Phase::Decode { past_tokens: 4096 });
        let std = a100().run(&g, LaunchMode::Standard).total;
        let cg = a100().run(&g, LaunchMode::CudaGraph).total;
        assert!(cg < std);
    }

    #[test]
    fn report_accounts_collectives() {
        let g = llama_graph(Phase::Decode { past_tokens: 4096 });
        let r = a100().run(&g, LaunchMode::CudaGraph);
        assert!(
            r.collective.as_secs() > 0.0,
            "TP8 graphs all-reduce every layer"
        );
        assert!(r.kernels > 100);
    }
}
