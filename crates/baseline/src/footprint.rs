//! The Figure 13 system-footprint model: machines needed to sustain TP8
//! latency as the expert count grows.
//!
//! Sustaining TP8 latency on a DGX requires *eliminating host-DRAM expert
//! copies*, i.e. every expert resident in GPU HBM — so DGX nodes scale
//! with aggregate HBM. The SN40L's DDR-to-HBM switch is fast enough to be
//! inside the latency budget, so one node serves experts up to its DDR
//! capacity (850 Llama2-7B experts; §VI-B).

use sn_arch::{Bytes, DgxSpec, NodeSpec};

/// DGX nodes needed to hold `experts` of `expert_bytes` each in HBM.
pub fn dgx_nodes_needed(dgx: &DgxSpec, experts: usize, expert_bytes: Bytes) -> usize {
    if experts == 0 {
        return 0;
    }
    let per_node = (dgx.hbm_for_experts().as_f64() / expert_bytes.as_f64()).floor() as usize;
    assert!(per_node > 0, "an expert must fit one node's HBM");
    experts.div_ceil(per_node)
}

/// SN40L nodes needed to hold `experts` in accelerator-local DDR.
pub fn sn40l_nodes_needed(node: &NodeSpec, experts: usize, expert_bytes: Bytes) -> usize {
    if experts == 0 {
        return 0;
    }
    let per_node = (node.ddr_capacity().as_f64() / expert_bytes.as_f64()).floor() as usize;
    assert!(per_node > 0, "an expert must fit one node's DDR");
    experts.div_ceil(per_node)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXPERT: f64 = 13.48;

    #[test]
    fn sn40l_serves_850_experts_on_one_node() {
        let node = NodeSpec::sn40l_node();
        assert_eq!(sn40l_nodes_needed(&node, 850, Bytes::from_gb(EXPERT)), 1);
    }

    #[test]
    fn dgx_needs_19_nodes_at_850_experts() {
        // §VI-B / Figure 13: "Achieving this with DGX would need 19 DGX
        // nodes to hold all experts in HBM."
        let dgx = DgxSpec::dgx_a100();
        let nodes = dgx_nodes_needed(&dgx, 850, Bytes::from_gb(EXPERT));
        assert!((18..=20).contains(&nodes), "got {nodes}");
    }

    #[test]
    fn footprint_ratio_is_about_19x() {
        let dgx = DgxSpec::dgx_a100();
        let node = NodeSpec::sn40l_node();
        let e = Bytes::from_gb(EXPERT);
        let ratio = dgx_nodes_needed(&dgx, 850, e) / sn40l_nodes_needed(&node, 850, e);
        assert!(
            (18..=20).contains(&ratio),
            "footprint reduction {ratio}x (paper: up to 19x)"
        );
    }

    #[test]
    fn footprints_grow_monotonically() {
        let dgx = DgxSpec::dgx_h100();
        let node = NodeSpec::sn40l_node();
        let e = Bytes::from_gb(EXPERT);
        let mut last_dgx = 0;
        let mut last_sn = 0;
        for n in [1, 10, 50, 100, 150, 300, 500, 850] {
            let d = dgx_nodes_needed(&dgx, n, e);
            let s = sn40l_nodes_needed(&node, n, e);
            assert!(d >= last_dgx && s >= last_sn);
            assert!(d >= s);
            last_dgx = d;
            last_sn = s;
        }
    }

    #[test]
    fn zero_experts_need_zero_nodes() {
        assert_eq!(
            dgx_nodes_needed(&DgxSpec::dgx_a100(), 0, Bytes::from_gb(EXPERT)),
            0
        );
        assert_eq!(
            sn40l_nodes_needed(&NodeSpec::sn40l_node(), 0, Bytes::from_gb(EXPERT)),
            0
        );
    }
}
