//! Sweep-point configurations and the feature extractor.
//!
//! A [`SweepSpec`] is the *configuration* of one sweep point — cluster
//! shape, tenant mix totals, load multiplier, a chaos-schedule summary,
//! and policy flags — everything the analytical model is allowed to see
//! *before* running anything. [`extract`] turns a spec plus the node's
//! roofline constants into a fixed-width [`FeatureVector`]: utilization,
//! memory-tier pressure, chaos severity, and scale terms the calibrator
//! fits residual corrections over.
//!
//! Extraction is **total** (every spec yields finite features — zero
//! capacity, zero requests, and zero-duration chaos windows all clamp
//! rather than divide by zero) and **deterministic** (a pure function of
//! the spec and node constants; no clocks, no randomness).

use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, NodeSpec, TimeSecs};
use sn_coe::{ExpertLibrary, TenancyReport};
use sn_profile::MachineProfile;

/// BF16 bytes of one expert's weights. Every library the sweeps build
/// shares one architecture, so this is a constant of the model — not of
/// the expert count — and the grid's hot path must not pay
/// [`ExpertLibrary::new`]'s per-expert metadata allocation (hundreds of
/// name strings per cell) just to read it.
pub(crate) fn expert_weight_bytes() -> Bytes {
    ExpertLibrary::new(1).expert_bytes()
}

/// Summary of a chaos schedule: the correlated outage window plus the
/// degraded-fabric fault window, reduced to the scalars the analytical
/// model consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosSummary {
    /// Nodes the outage kills together (after clipping to the cluster:
    /// an outage aimed at node 3 of a 2-node cluster kills nothing).
    pub outage_nodes: usize,
    /// Outage window start, in model time.
    pub outage_start: TimeSecs,
    /// Outage window end (crashed nodes restore here).
    pub outage_end: TimeSecs,
    /// End of the degraded-fabric fault window.
    pub fabric_end: TimeSecs,
    /// Fabric retransmit probability inside the window.
    pub fail_rate: f64,
    /// Fabric slowdown probability inside the window.
    pub slow_rate: f64,
    /// Fabric slowdown factor when a slow draw hits.
    pub slow_factor: f64,
}

/// The configuration of one sweep point, as the surrogate sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Nodes the cluster starts with.
    pub nodes: usize,
    /// Decode slots per node per wave.
    pub per_node_slots: usize,
    /// Experts in the library.
    pub experts: usize,
    /// Prompt length of every request.
    pub prompt_tokens: usize,
    /// Decode tokens per wave chunk.
    pub wave_tokens: usize,
    /// Interactive requests offered across all tenants.
    pub interactive_requests: usize,
    /// Batch requests offered across all tenants.
    pub batch_requests: usize,
    /// Wave chunks per interactive request.
    pub interactive_chunks: usize,
    /// Wave chunks per batch request.
    pub batch_chunks: usize,
    /// Interactive admission-queue bound (sheds `queue-full` past it —
    /// which caps how long a *completed* request can have waited).
    pub interactive_queue_cap: usize,
    /// Batch admission-queue bound.
    pub batch_queue_cap: usize,
    /// Interactive class deadline (sheds past it).
    pub interactive_deadline: TimeSecs,
    /// Interactive class SLO bound (goodput counts inside it).
    pub interactive_slo: TimeSecs,
    /// Batch class deadline.
    pub batch_deadline: TimeSecs,
    /// Batch class SLO bound.
    pub batch_slo: TimeSecs,
    /// Model-time span over which the arrival mix lands (0 for a pure
    /// backlog that arrives at t = 0).
    pub arrival_span: TimeSecs,
    /// Offered-load multiplier the request counts were scaled by.
    pub load: f64,
    /// Whether the stats-driven placement/prefetch/KV policy bundle is
    /// enabled.
    pub policies: bool,
    /// Chaos summary, when the point replays a schedule.
    pub chaos: Option<ChaosSummary>,
}

/// Number of features [`extract`] produces.
pub const NUM_FEATURES: usize = 12;

/// Names of the extracted features, index-aligned with
/// [`FeatureVector::values`].
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "total_chunks",
    "wave_capacity",
    "est_waves",
    "interactive_utilization",
    "offered_log",
    "hbm_resident_fraction",
    "miss_pressure",
    "switch_ms_per_miss",
    "outage_severity",
    "fabric_stretch",
    "load",
    "policies",
];

/// Fixed-width feature vector for one sweep point. Always finite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    /// Feature values, index-aligned with [`FEATURE_NAMES`].
    pub values: [f64; NUM_FEATURES],
}

impl FeatureVector {
    /// Looks a feature up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        FEATURE_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| self.values[i])
    }

    /// Whether every feature is finite (extraction guarantees it; the
    /// property suites assert it).
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

/// Total wave chunks a spec offers (`requests × chunks`, both classes).
pub fn total_chunks(spec: &SweepSpec) -> f64 {
    (spec.interactive_requests * spec.interactive_chunks + spec.batch_requests * spec.batch_chunks)
        as f64
}

/// Extracts the feature vector for one sweep point against a node's
/// roofline constants. Total and deterministic — see the module docs.
///
/// # Examples
///
/// ```
/// use sn_arch::{NodeSpec, TimeSecs};
/// use sn_surrogate::{extract, SweepSpec, FEATURE_NAMES};
///
/// let spec = SweepSpec {
///     nodes: 4,
///     per_node_slots: 4,
///     experts: 120,
///     prompt_tokens: 512,
///     wave_tokens: 8,
///     interactive_requests: 96,
///     batch_requests: 48,
///     interactive_chunks: 1,
///     batch_chunks: 4,
///     interactive_queue_cap: 64,
///     batch_queue_cap: 256,
///     interactive_deadline: TimeSecs::from_secs(2.0),
///     interactive_slo: TimeSecs::from_secs(1.0),
///     batch_deadline: TimeSecs::from_secs(30.0),
///     batch_slo: TimeSecs::from_secs(10.0),
///     arrival_span: TimeSecs::from_secs(0.8),
///     load: 1.0,
///     policies: false,
///     chaos: None,
/// };
/// let features = extract(&spec, &NodeSpec::sn40l_node());
/// assert!(features.all_finite());
/// assert_eq!(features.get("total_chunks"), Some(96.0 + 48.0 * 4.0));
/// assert_eq!(FEATURE_NAMES.len(), features.values.len());
/// ```
pub fn extract(spec: &SweepSpec, node: &NodeSpec) -> FeatureVector {
    let machine = MachineProfile::from_node(node);
    let chunks = total_chunks(spec);
    let capacity = (spec.nodes.max(1) * spec.per_node_slots.max(1)) as f64;
    let est_waves = (chunks / capacity).max(1.0);

    // Per-expert weight size and how many experts one node's HBM can
    // keep resident — the memory-tier pressure terms.
    let expert_bytes = expert_weight_bytes();
    let resident_per_node = if expert_bytes.as_f64() > 0.0 {
        node.hbm_capacity().as_f64() / expert_bytes.as_f64()
    } else {
        spec.experts as f64
    };
    let experts_per_node = (spec.experts.max(1) as f64 / spec.nodes.max(1) as f64).max(1.0);
    let resident_fraction = (resident_per_node / experts_per_node).clamp(0.0, 1.0);
    let pressure = miss_pressure(spec, node);
    let switch_per_miss = expert_bytes / machine.ddr_bandwidth;

    // Interactive utilization: offered interactive chunk rate against
    // the cluster's wave service rate. A zero arrival span (pure
    // backlog) saturates the term at its clamp.
    let tau = wave_latency_estimate(spec, node);
    let service_rate = if tau.as_secs() > 0.0 {
        capacity / tau.as_secs()
    } else {
        f64::MAX
    };
    let interactive_chunks = (spec.interactive_requests * spec.interactive_chunks.max(1)) as f64;
    let span = spec.arrival_span.as_secs();
    let offered_rate = if span > 0.0 {
        interactive_chunks / span
    } else if interactive_chunks > 0.0 {
        f64::MAX
    } else {
        0.0
    };
    let utilization = if service_rate > 0.0 {
        (offered_rate / service_rate).min(8.0)
    } else {
        8.0
    };

    // Chaos severity against a two-pass makespan estimate, so a window
    // that outlives the run doesn't over-count.
    let horizon = (span + est_waves * tau.as_secs()).max(1e-9);
    let (outage_severity, fabric_stretch) = match &spec.chaos {
        None => (0.0, 1.0),
        Some(c) => {
            let outage = overlap(c.outage_start, c.outage_end, horizon)
                * (c.outage_nodes.min(spec.nodes) as f64 / spec.nodes.max(1) as f64);
            let window = overlap(c.outage_start, c.fabric_end, horizon);
            let stretch =
                1.0 + window * (c.fail_rate + c.slow_rate * (c.slow_factor - 1.0).max(0.0));
            (outage.clamp(0.0, 1.0), stretch.max(1.0))
        }
    };

    FeatureVector {
        values: [
            chunks,
            capacity,
            est_waves,
            utilization,
            (1.0 + chunks).ln(),
            resident_fraction,
            pressure,
            switch_per_miss.as_secs() * 1e3,
            outage_severity,
            fabric_stretch,
            spec.load,
            if spec.policies { 1.0 } else { 0.0 },
        ],
    }
}

/// Fraction of `[0, horizon]` a `[start, end]` window covers (0 on a
/// degenerate or out-of-range window).
fn overlap(start: TimeSecs, end: TimeSecs, horizon: f64) -> f64 {
    if horizon <= 0.0 {
        return 0.0;
    }
    let s = start.as_secs().clamp(0.0, horizon);
    let e = end.as_secs().clamp(0.0, horizon);
    ((e - s) / horizon).clamp(0.0, 1.0)
}

/// Expected cold (DDR→HBM-switching) expert activations across a whole
/// run: the *compulsory* misses — distinct experts the request mix
/// touches at all, a coupon-collector expectation over uniform routing —
/// plus *capacity* thrash whenever the per-node active set exceeds what
/// HBM keeps resident. Bounded by the total activation count (one
/// activation per served chunk).
///
/// # Examples
///
/// ```
/// use sn_arch::{NodeSpec, TimeSecs};
/// use sn_surrogate::{expected_misses, total_chunks, SweepSpec};
///
/// let spec = SweepSpec {
///     nodes: 4,
///     per_node_slots: 4,
///     experts: 120,
///     prompt_tokens: 512,
///     wave_tokens: 8,
///     interactive_requests: 96,
///     batch_requests: 48,
///     interactive_chunks: 1,
///     batch_chunks: 4,
///     interactive_queue_cap: 64,
///     batch_queue_cap: 256,
///     interactive_deadline: TimeSecs::from_secs(2.0),
///     interactive_slo: TimeSecs::from_secs(1.0),
///     batch_deadline: TimeSecs::from_secs(30.0),
///     batch_slo: TimeSecs::from_secs(10.0),
///     arrival_span: TimeSecs::from_secs(0.8),
///     load: 1.0,
///     policies: false,
///     chaos: None,
/// };
/// let node = NodeSpec::sn40l_node();
/// let misses = expected_misses(&spec, &node);
/// assert!(misses > 0.0 && misses <= total_chunks(&spec));
///
/// // No offered work, no misses.
/// let mut idle = spec;
/// idle.interactive_requests = 0;
/// idle.batch_requests = 0;
/// assert_eq!(expected_misses(&idle, &node), 0.0);
/// ```
pub fn expected_misses(spec: &SweepSpec, node: &NodeSpec) -> f64 {
    let experts = spec.experts.max(1) as f64;
    let requests = (spec.interactive_requests + spec.batch_requests) as f64;
    let chunks = total_chunks(spec);
    if chunks <= 0.0 {
        return 0.0;
    }
    let distinct = experts * (1.0 - (-requests / experts).exp());
    let thrash = miss_pressure(spec, node) * chunks;
    (distinct + thrash).min(chunks)
}

/// Capacity-thrash share of activations: zero while one node's HBM
/// holds its active set, climbing toward 1 as the per-wave working set
/// outgrows residency (the placement sweep's regime).
pub(crate) fn miss_pressure(spec: &SweepSpec, node: &NodeSpec) -> f64 {
    let expert_bytes = expert_weight_bytes();
    let experts_per_node = (spec.experts.max(1) as f64 / spec.nodes.max(1) as f64).max(1.0);
    let active_per_node = (spec.per_node_slots.max(1) as f64).min(experts_per_node);
    let resident_per_node = if expert_bytes.as_f64() > 0.0 {
        node.hbm_capacity().as_f64() / expert_bytes.as_f64()
    } else {
        experts_per_node
    };
    (1.0 - (resident_per_node / active_per_node).min(1.0)).clamp(0.0, 1.0)
}

/// The base analytical wave-latency estimate: decode streams the wave's
/// active expert weights from HBM token by token, plus the expected
/// per-node DDR→HBM switch cost of the wave's share of the run's cold
/// activations.
pub(crate) fn wave_latency_estimate(spec: &SweepSpec, node: &NodeSpec) -> TimeSecs {
    let machine = MachineProfile::from_node(node);
    let expert_bytes = expert_weight_bytes();
    let experts_per_node = (spec.experts.max(1) as f64 / spec.nodes.max(1) as f64).max(1.0);
    let active_per_node = (spec.per_node_slots.max(1) as f64).min(experts_per_node);
    let decode_bytes = expert_bytes.as_f64() * active_per_node * spec.wave_tokens.max(1) as f64;
    let decode_secs = decode_bytes / node.effective_hbm_bandwidth().as_bytes_per_s().max(1.0);
    let capacity = (spec.nodes.max(1) * spec.per_node_slots.max(1)) as f64;
    let est_waves = (total_chunks(spec) / capacity).max(1.0);
    let misses_per_node_wave = expected_misses(spec, node) / (est_waves * spec.nodes.max(1) as f64);
    let switch_secs = misses_per_node_wave * (expert_bytes / machine.ddr_bandwidth).as_secs();
    TimeSecs::from_secs((decode_secs + switch_secs).max(1e-9))
}

/// Per-wave phase/occupancy roll-up over a [`TenancyReport`]'s wave
/// feature stream — the exact-run view the surrogate's anchor tables
/// print next to predictions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveSummary {
    /// Waves the run executed.
    pub waves: usize,
    /// Mean occupied-slot fraction (`slots / capacity`) across waves.
    pub mean_occupancy: f64,
    /// Mean share of occupied slots running prefill (vs pure decode).
    pub prefill_fraction: f64,
    /// Share of waves served with fewer healthy nodes than the run's
    /// maximum (the outage's wave-level footprint).
    pub degraded_fraction: f64,
    /// Share of waves stretched or retransmitted by a chaos fabric draw.
    pub stretched_fraction: f64,
    /// Mean wave latency, milliseconds.
    pub mean_wave_ms: f64,
}

impl WaveSummary {
    /// Summarizes a report's per-wave features. Total: an empty wave
    /// stream (a run that never composed a wave) yields all-zero
    /// fractions, never NaN.
    pub fn from_report(report: &TenancyReport) -> WaveSummary {
        let waves = report.wave_features.len();
        if waves == 0 {
            return WaveSummary {
                waves: 0,
                mean_occupancy: 0.0,
                prefill_fraction: 0.0,
                degraded_fraction: 0.0,
                stretched_fraction: 0.0,
                mean_wave_ms: 0.0,
            };
        }
        let n = waves as f64;
        let max_nodes = report
            .wave_features
            .iter()
            .map(|w| w.healthy_nodes)
            .max()
            .unwrap_or(0);
        let mut occupancy = 0.0;
        let mut prefill = 0.0;
        let mut degraded = 0usize;
        let mut stretched = 0usize;
        let mut latency_ms = 0.0;
        for w in &report.wave_features {
            if w.capacity > 0 {
                occupancy += w.slots as f64 / w.capacity as f64;
            }
            if w.slots > 0 {
                prefill += w.prefill_slots as f64 / w.slots as f64;
            }
            if w.healthy_nodes < max_nodes {
                degraded += 1;
            }
            if w.chaos_factor != 1.0 {
                stretched += 1;
            }
            latency_ms += w.latency.as_secs() * 1e3;
        }
        WaveSummary {
            waves,
            mean_occupancy: occupancy / n,
            prefill_fraction: prefill / n,
            degraded_fraction: degraded as f64 / n,
            stretched_fraction: stretched as f64 / n,
            mean_wave_ms: latency_ms / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> SweepSpec {
        SweepSpec {
            nodes: 4,
            per_node_slots: 4,
            experts: 120,
            prompt_tokens: 512,
            wave_tokens: 8,
            interactive_requests: 96,
            batch_requests: 48,
            interactive_chunks: 1,
            batch_chunks: 4,
            interactive_queue_cap: 64,
            batch_queue_cap: 256,
            interactive_deadline: TimeSecs::from_secs(2.0),
            interactive_slo: TimeSecs::from_secs(1.0),
            batch_deadline: TimeSecs::from_secs(30.0),
            batch_slo: TimeSecs::from_secs(10.0),
            arrival_span: TimeSecs::from_secs(0.8),
            load: 1.0,
            policies: false,
            chaos: None,
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let node = NodeSpec::sn40l_node();
        let spec = base_spec();
        assert_eq!(extract(&spec, &node), extract(&spec, &node));
    }

    #[test]
    fn degenerate_specs_extract_finite() {
        let node = NodeSpec::sn40l_node();
        let mut empty = base_spec();
        empty.interactive_requests = 0;
        empty.batch_requests = 0;
        empty.arrival_span = TimeSecs::ZERO;
        assert!(extract(&empty, &node).all_finite());

        let mut tiny = base_spec();
        tiny.nodes = 1;
        tiny.per_node_slots = 1;
        tiny.experts = 1;
        assert!(extract(&tiny, &node).all_finite());

        let mut chaotic = base_spec();
        chaotic.chaos = Some(ChaosSummary {
            outage_nodes: 9,
            outage_start: TimeSecs::from_secs(5.0),
            outage_end: TimeSecs::from_secs(1.0), // inverted window
            fabric_end: TimeSecs::ZERO,
            fail_rate: 1.0,
            slow_rate: 1.0,
            slow_factor: 0.0, // slow draw "speeds up": clamps to no stretch
        });
        let f = extract(&chaotic, &node);
        assert!(f.all_finite());
        assert!(f.get("fabric_stretch").unwrap() >= 1.0);
    }

    #[test]
    fn feature_lookup_by_name() {
        let f = extract(&base_spec(), &NodeSpec::sn40l_node());
        assert_eq!(f.get("load"), Some(1.0));
        assert_eq!(f.get("policies"), Some(0.0));
        assert_eq!(f.get("nope"), None);
    }
}
