//! The base analytical model: queueing + memory-tier prediction of the
//! tracked bench metrics for one sweep point.
//!
//! The model is deliberately simple — a handful of closed-form terms
//! built from the node's roofline constants ([`sn_profile::MachineProfile`])
//! and the spec's offered work:
//!
//! - **wave service time** — decode streams the wave's active expert
//!   weights from HBM (~2 ops/byte, §VI-B); cold activations pay the
//!   DDR→HBM switch at the model-switch bandwidth;
//! - **effective capacity** — the outage window removes its nodes for
//!   its overlap with the run, the degraded-fabric window stretches
//!   waves by the expected retransmit/slowdown factor;
//! - **queueing** — interactive wait grows as ρ²/(1−ρ) against the wave
//!   service rate, clamped at the class deadline (the exact engine sheds
//!   there, so the observable p99 saturates);
//! - **switch-bound share** — the predicted demand-switch seconds
//!   against decode streaming the rest, classified through the same
//!   [`sn_profile::ServeAttribution`] roofline rule the exact sweeps use.
//!
//! The point is not standalone accuracy — it is a *monotone, physical*
//! base the calibrator's residual corrections can anchor to, so a small
//! exact anchor set generalizes over a grid 100x larger.

use crate::features::{self, SweepSpec};
use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, Flops, NodeSpec, TimeSecs};
use sn_profile::{Bound, MachineProfile, PhaseKind, PhaseSample, ServeAttribution};

/// Number of metrics the surrogate predicts.
pub const NUM_METRICS: usize = 7;

/// Names of the predicted metrics, index-aligned with
/// [`MetricVector::values`]. These are exactly the tracked bench
/// metrics the exact sweeps record.
pub const METRIC_NAMES: [&str; NUM_METRICS] = [
    "interactive_p99_ms",
    "batch_p99_ms",
    "interactive_goodput_rps",
    "batch_goodput_rps",
    "hbm_hit_rate",
    "switch_bound_fraction",
    "makespan_ms",
];

/// One point's predicted (or exactly measured) metric values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricVector {
    /// Metric values, index-aligned with [`METRIC_NAMES`].
    pub values: [f64; NUM_METRICS],
}

impl MetricVector {
    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        METRIC_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| self.values[i])
    }

    /// Whether every metric is finite.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// Clamps each metric into its physical range: times and rates
    /// non-negative, fractions in `[0, 1]`.
    pub fn clamp_physical(mut self) -> MetricVector {
        for (i, v) in self.values.iter_mut().enumerate() {
            if !v.is_finite() {
                *v = 0.0;
            }
            *v = match METRIC_NAMES[i] {
                "hbm_hit_rate" | "switch_bound_fraction" => v.clamp(0.0, 1.0),
                _ => v.max(0.0),
            };
        }
        self
    }
}

/// Predicts the tracked metrics for one sweep point from the analytical
/// model alone (no calibration). Deterministic and total: every spec
/// yields finite, physically-clamped values.
///
/// # Examples
///
/// ```
/// use sn_arch::{NodeSpec, TimeSecs};
/// use sn_surrogate::{predict_base, SweepSpec, METRIC_NAMES};
///
/// let spec = SweepSpec {
///     nodes: 4,
///     per_node_slots: 4,
///     experts: 120,
///     prompt_tokens: 512,
///     wave_tokens: 8,
///     interactive_requests: 96,
///     batch_requests: 48,
///     interactive_chunks: 1,
///     batch_chunks: 4,
///     interactive_queue_cap: 64,
///     batch_queue_cap: 256,
///     interactive_deadline: TimeSecs::from_secs(2.0),
///     interactive_slo: TimeSecs::from_secs(1.0),
///     batch_deadline: TimeSecs::from_secs(30.0),
///     batch_slo: TimeSecs::from_secs(10.0),
///     arrival_span: TimeSecs::from_secs(0.8),
///     load: 1.0,
///     policies: false,
///     chaos: None,
/// };
/// let base = predict_base(&spec, &NodeSpec::sn40l_node());
/// assert!(base.all_finite());
/// let hit = base.get("hbm_hit_rate").unwrap();
/// assert!((0.0..=1.0).contains(&hit));
/// assert_eq!(METRIC_NAMES.len(), base.values.len());
/// ```
pub fn predict_base(spec: &SweepSpec, node: &NodeSpec) -> MetricVector {
    let machine = MachineProfile::from_node(node);
    let expert_bytes = features::expert_weight_bytes();
    let nodes = spec.nodes.max(1) as f64;
    let capacity = nodes * spec.per_node_slots.max(1) as f64;
    let chunks = features::total_chunks(spec);
    let tau = features::wave_latency_estimate(spec, node).as_secs();
    let span = spec.arrival_span.as_secs();

    // Expected HBM hit rate: compulsory misses — the *distinct* experts
    // the request mix touches, a coupon-collector expectation, so the
    // hit rate naturally rises with load as repeat activations amortize
    // the cold set — plus capacity thrash when the per-node active set
    // exceeds what HBM keeps resident.
    let experts = spec.experts.max(1) as f64;
    let requests = (spec.interactive_requests + spec.batch_requests) as f64;
    let distinct = experts * (1.0 - (-requests / experts).exp());
    let pressure = features::miss_pressure(spec, node);
    // A policy bundle (prefetch + replication) converts a share of the
    // thrash back into hits; the residual fit tunes the exact share.
    let pressure = if spec.policies {
        pressure * 0.5
    } else {
        pressure
    };
    let est_waves = (chunks / capacity).max(1.0);
    let misses = (distinct + pressure * chunks).min(chunks);
    let hbm_hit_rate = (1.0 - misses / chunks.max(1.0)).clamp(0.0, 1.0);

    // Chaos terms against a two-pass horizon: the outage removes
    // capacity for its overlap, the fabric window stretches waves.
    let mut horizon = (span + est_waves * tau).max(1e-9);
    let mut stretch = 1.0;
    let mut outage_loss = 0.0;
    for _ in 0..2 {
        (stretch, outage_loss) = match &spec.chaos {
            None => (1.0, 0.0),
            Some(c) => {
                let outage_frac = window_fraction(c.outage_start, c.outage_end, horizon);
                let loss = outage_frac * c.outage_nodes.min(spec.nodes) as f64 / nodes;
                let fabric_frac = window_fraction(c.outage_start, c.fabric_end, horizon);
                let s = 1.0
                    + fabric_frac * (c.fail_rate + c.slow_rate * (c.slow_factor - 1.0).max(0.0));
                (s.max(1.0), loss.clamp(0.0, 0.95))
            }
        };
        let eff_capacity = (capacity * (1.0 - outage_loss)).max(1.0);
        let waves_needed = (chunks / eff_capacity).max(1.0);
        horizon = span.max(waves_needed * tau * stretch).max(1e-9);
    }
    let makespan_secs = horizon;
    let tau_eff = tau * stretch;

    // Interactive queueing: offered chunk rate against the effective
    // wave service rate. Two valves bound the *observable* wait of a
    // completed request: the admission queue never holds more than its
    // cap (`queue-full` sheds the rest, so wait ≤ cap / drain rate) and
    // the deadline sheds whatever blows it.
    let interactive_chunks = (spec.interactive_requests * spec.interactive_chunks.max(1)) as f64;
    // Interactive only gets its share of wave slots: the batch backlog
    // competes for the same capacity over the whole drain, so the class
    // drains at roughly its chunk share of the cluster rate.
    let share_i = if chunks > 0.0 {
        (interactive_chunks / chunks).clamp(0.05, 1.0)
    } else {
        1.0
    };
    let service_rate = (capacity * share_i * (1.0 - outage_loss)).max(1.0) / tau_eff.max(1e-9);
    let rho = if span > 0.0 {
        (interactive_chunks / span) / service_rate
    } else if interactive_chunks > 0.0 {
        2.0
    } else {
        0.0
    };
    // A request pays one prefill wave before its decode chunks.
    let service_i = (1 + spec.interactive_chunks.max(1)) as f64 * tau_eff;
    let queue_bound_i = spec.interactive_queue_cap.max(1) as f64 / service_rate.max(1e-9);
    let wait_i = if rho < 1.0 {
        tau_eff * rho * rho / (1.0 - rho).max(0.05)
    } else {
        f64::MAX
    };
    let wait_i = wait_i
        .min(queue_bound_i)
        .min(spec.interactive_deadline.as_secs());
    let interactive_p99 =
        (service_i + wait_i).min(spec.interactive_deadline.as_secs().max(service_i));

    // Batch drains behind interactive: its tail sees most of the run.
    let service_b = (1 + spec.batch_chunks.max(1)) as f64 * tau_eff;
    let batch_p99 =
        (0.8 * makespan_secs + service_b).min(spec.batch_deadline.as_secs().max(service_b));

    // Goodput: completions inside the class SLO per second of makespan.
    // Overload sheds interactive excess (the engine's deadline valve).
    // The SLO attainment is a soft knee at 3x the bound: a p99 hovering
    // near the SLO barely dents goodput (most of the distribution is
    // well inside it), while a p99 blown past it by an order of
    // magnitude — the thrashing placement regime — crushes it.
    let completed_i = if rho > 1.0 {
        spec.interactive_requests as f64 / rho
    } else {
        spec.interactive_requests as f64
    };
    let att_i =
        1.0 / (1.0 + (interactive_p99 / (3.0 * spec.interactive_slo.as_secs()).max(1e-9)).powi(4));
    let interactive_goodput = completed_i * att_i / makespan_secs.max(1e-9);
    let att_b = 1.0 / (1.0 + (batch_p99 / (3.0 * spec.batch_slo.as_secs()).max(1e-9)).powi(4));
    let batch_goodput = spec.batch_requests as f64 * att_b / makespan_secs.max(1e-9);

    // Switch-bound share: predicted demand-switch seconds vs decode
    // streaming, classified by the same roofline attribution rule the
    // exact sweeps use (`sn-profile`).
    let cluster = machine.scale(nodes);
    let switch_time = TimeSecs::from_secs(
        (misses * (expert_bytes / cluster.ddr_bandwidth).as_secs()).min(makespan_secs),
    );
    let switch_bytes = expert_bytes.scale(misses);
    let serve_time = TimeSecs::from_secs((makespan_secs - switch_time.as_secs()).max(0.0));
    let serve_bytes = cluster.hbm_bandwidth * serve_time;
    let attribution = ServeAttribution::from_samples(
        cluster,
        vec![
            PhaseSample {
                kind: PhaseKind::Switching,
                time: switch_time,
                flops: Flops::ZERO,
                hbm_bytes: switch_bytes,
                ddr_bytes: switch_bytes,
            },
            PhaseSample {
                kind: PhaseKind::Decode,
                time: serve_time,
                flops: Flops::new(serve_bytes.as_f64() * 2.0),
                hbm_bytes: serve_bytes,
                ddr_bytes: Bytes::ZERO,
            },
        ],
    );
    let switch_bound = attribution.bound_fraction(Bound::DdrBandwidth)
        + attribution.bound_fraction(Bound::Switching);

    MetricVector {
        values: [
            interactive_p99 * 1e3,
            batch_p99 * 1e3,
            interactive_goodput,
            batch_goodput,
            hbm_hit_rate,
            switch_bound,
            makespan_secs * 1e3,
        ],
    }
    .clamp_physical()
}

/// Fraction of `[0, horizon]` covered by `[start, end]`.
fn window_fraction(start: TimeSecs, end: TimeSecs, horizon: f64) -> f64 {
    if horizon <= 0.0 {
        return 0.0;
    }
    let s = start.as_secs().clamp(0.0, horizon);
    let e = end.as_secs().clamp(0.0, horizon);
    ((e - s) / horizon).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::ChaosSummary;

    fn base_spec() -> SweepSpec {
        SweepSpec {
            nodes: 4,
            per_node_slots: 4,
            experts: 120,
            prompt_tokens: 512,
            wave_tokens: 8,
            interactive_requests: 96,
            batch_requests: 48,
            interactive_chunks: 1,
            batch_chunks: 4,
            interactive_queue_cap: 64,
            batch_queue_cap: 256,
            interactive_deadline: TimeSecs::from_secs(2.0),
            interactive_slo: TimeSecs::from_secs(1.0),
            batch_deadline: TimeSecs::from_secs(30.0),
            batch_slo: TimeSecs::from_secs(10.0),
            arrival_span: TimeSecs::from_secs(0.8),
            load: 1.0,
            policies: false,
            chaos: None,
        }
    }

    #[test]
    fn base_prediction_is_deterministic_and_physical() {
        let node = NodeSpec::sn40l_node();
        let spec = base_spec();
        let a = predict_base(&spec, &node);
        assert_eq!(a, predict_base(&spec, &node));
        assert!(a.all_finite());
        assert!((0.0..=1.0).contains(&a.get("hbm_hit_rate").unwrap()));
        assert!((0.0..=1.0).contains(&a.get("switch_bound_fraction").unwrap()));
        assert!(a.get("makespan_ms").unwrap() > 0.0);
    }

    #[test]
    fn chaos_worsens_the_prediction() {
        let node = NodeSpec::sn40l_node();
        let calm = predict_base(&base_spec(), &node);
        let mut spec = base_spec();
        spec.chaos = Some(ChaosSummary {
            outage_nodes: 2,
            outage_start: TimeSecs::from_secs(0.05),
            outage_end: TimeSecs::from_secs(0.60),
            fabric_end: TimeSecs::from_secs(1.20),
            fail_rate: 0.10,
            slow_rate: 0.25,
            slow_factor: 1.5,
        });
        let chaotic = predict_base(&spec, &node);
        assert!(
            chaotic.get("makespan_ms").unwrap() >= calm.get("makespan_ms").unwrap(),
            "losing nodes cannot speed the drain up"
        );
    }

    #[test]
    fn more_load_never_shrinks_makespan() {
        let node = NodeSpec::sn40l_node();
        let mut last = 0.0;
        for mult in [1usize, 2, 4, 8] {
            let mut spec = base_spec();
            spec.interactive_requests *= mult;
            spec.batch_requests *= mult;
            let m = predict_base(&spec, &node).get("makespan_ms").unwrap();
            assert!(m >= last, "makespan must be monotone in offered work");
            last = m;
        }
    }

    #[test]
    fn empty_spec_predicts_finite_zeroish_metrics() {
        let node = NodeSpec::sn40l_node();
        let mut spec = base_spec();
        spec.interactive_requests = 0;
        spec.batch_requests = 0;
        spec.arrival_span = TimeSecs::ZERO;
        let m = predict_base(&spec, &node);
        assert!(m.all_finite());
        assert_eq!(m.get("interactive_goodput_rps").unwrap(), 0.0);
    }
}
