//! # sn-surrogate
//!
//! A calibrated analytical surrogate for the exact serving simulator:
//! closed-form queueing + memory-tier predictions of the tracked bench
//! metrics (per-class p99/goodput, HBM hit rate, switch-bound fraction,
//! makespan), corrected by a deterministic least-squares fit against a
//! small set of exact simulator runs. The point is scale: the exact
//! engine affords a handful of sweep points per run, the surrogate
//! predicts hundreds in milliseconds — and a seeded subset of those
//! predictions is re-run exactly to gate drift (see `repro surrogate`
//! in `sn-bench`).
//!
//! The pipeline is three pure functions plus a fit:
//!
//! 1. [`extract`] — sweep-point configuration ([`SweepSpec`]) + node
//!    roofline constants → [`FeatureVector`];
//! 2. [`predict_base`] — analytical queueing/memory-tier model →
//!    uncalibrated [`MetricVector`];
//! 3. [`Calibration::fit`] — ridge least squares over exact
//!    [`Anchor`]s → per-metric residual corrections;
//! 4. [`Calibration::apply`] — corrected prediction.
//!
//! Everything is total (degenerate specs clamp instead of dividing by
//! zero) and deterministic (no clocks, no randomness, fixed-order
//! accumulation), so surrogate grids are byte-identical at any
//! `--jobs` fan-out.
//!
//! # Examples
//!
//! ```
//! use sn_arch::{NodeSpec, TimeSecs};
//! use sn_surrogate::{
//!     extract, predict_base, Anchor, Calibration, SweepSpec,
//! };
//!
//! let node = NodeSpec::sn40l_node();
//! let spec_at = |load: usize| SweepSpec {
//!     nodes: 4,
//!     per_node_slots: 4,
//!     experts: 120,
//!     prompt_tokens: 512,
//!     wave_tokens: 8,
//!     interactive_requests: 96 * load,
//!     batch_requests: 48 * load,
//!     interactive_chunks: 1,
//!     batch_chunks: 4,
//!     interactive_queue_cap: 64,
//!     batch_queue_cap: 256,
//!     interactive_deadline: TimeSecs::from_secs(2.0),
//!     interactive_slo: TimeSecs::from_secs(1.0),
//!     batch_deadline: TimeSecs::from_secs(30.0),
//!     batch_slo: TimeSecs::from_secs(10.0),
//!     arrival_span: TimeSecs::from_secs(0.8),
//!     load: load as f64,
//!     policies: false,
//!     chaos: None,
//! };
//!
//! // Calibrate on "exact" anchors (here synthesized with a known bias),
//! // then predict an unseen point.
//! let anchors: Vec<Anchor> = [1usize, 2, 4]
//!     .iter()
//!     .map(|&load| {
//!         let spec = spec_at(load);
//!         let features = extract(&spec, &node);
//!         let base = predict_base(&spec, &node);
//!         let mut exact = base;
//!         exact.values.iter_mut().for_each(|v| *v *= 1.1);
//!         Anchor { spec, features, base, exact }
//!     })
//!     .collect();
//! let calibration = Calibration::fit(&anchors);
//!
//! let unseen = spec_at(3);
//! let predicted =
//!     calibration.apply(&extract(&unseen, &node), &predict_base(&unseen, &node));
//! assert!(predicted.all_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calib;
mod features;
mod model;

pub use calib::{basis, metric_floor, relative_error, Anchor, Calibration, BASIS};
pub use features::{
    expected_misses, extract, total_chunks, ChaosSummary, FeatureVector, SweepSpec, WaveSummary,
    FEATURE_NAMES, NUM_FEATURES,
};
pub use model::{predict_base, MetricVector, METRIC_NAMES, NUM_METRICS};
