//! Deterministic least-squares residual calibration.
//!
//! The analytical model ([`crate::predict_base`]) captures the *shape*
//! of the metric surfaces but not their constants — the exact engine's
//! wave composition, preemption, and shed valves move the levels around.
//! The calibrator fits, per metric, a small ridge-regularized linear
//! correction over a feature basis, against the residual observed on a
//! seeded anchor set of exact simulator runs. Unbounded metrics (times
//! and rates) fit the **log-ratio** residual `ln(exact / base)` and
//! apply multiplicatively — corrections compose across orders of
//! magnitude and a corrected prediction can never collapse to zero or
//! go negative. Bounded metrics (fractions) fit the **relative**
//! residual `(exact − base) / scale(base)` linearly and clamp back into
//! `[0, 1]`.
//!
//! Everything is deterministic: the normal equations are accumulated in
//! anchor order and solved by Gaussian elimination with partial
//! pivoting — no iterative solver, no randomness, so the same anchors
//! always produce bit-identical coefficients at any `--jobs`.

use crate::features::{FeatureVector, SweepSpec};
use crate::model::{MetricVector, METRIC_NAMES, NUM_METRICS};
use serde::{Deserialize, Serialize};

/// Size of the correction basis (see [`basis`]).
pub const BASIS: usize = 7;

/// Ridge regularization weight: keeps the normal equations solvable
/// (and the fit bounded) even on degenerate anchor sets whose basis
/// columns are collinear.
const RIDGE: f64 = 1e-3;

/// Correction magnitude clamp for the linear (fraction) path: a fitted
/// relative residual beyond ±`MAX_CORRECTION` is almost certainly
/// extrapolation noise, not signal, so [`Calibration::apply`] saturates
/// there.
const MAX_CORRECTION: f64 = 4.0;

/// Correction magnitude clamp for the log (time/rate) path, in nats:
/// ±2 bounds a single correction to ~7.4x in either direction.
const MAX_LOG_CORRECTION: f64 = 2.0;

/// Whether a metric calibrates on the multiplicative log-ratio path
/// (times and rates) rather than the linear fraction path.
fn is_log_metric(name: &str) -> bool {
    !matches!(name, "hbm_hit_rate" | "switch_bound_fraction")
}

/// One calibration anchor: a sweep point the exact simulator ran, with
/// the features and base prediction the fit pairs against it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Anchor {
    /// The sweep-point configuration.
    pub spec: SweepSpec,
    /// Extracted features for the point.
    pub features: FeatureVector,
    /// Uncalibrated analytical prediction.
    pub base: MetricVector,
    /// Exact simulator metrics for the point.
    pub exact: MetricVector,
}

/// Fitted per-metric correction coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// `coeffs[m]` corrects metric `m` (index-aligned with
    /// [`METRIC_NAMES`]): times and rates as
    /// `base × exp(coeffs[m] · basis)`, fractions as
    /// `base + (coeffs[m] · basis) × scale(base)`.
    pub coeffs: [[f64; BASIS]; NUM_METRICS],
    /// Anchors the fit consumed.
    pub anchors: usize,
}

/// Relative-error scale floor for a metric: residuals are normalized by
/// `max(|base|, floor)` so near-zero bases don't blow the fit up. The
/// floors are in each metric's native unit (ms, rps, or fraction).
pub fn metric_floor(name: &str) -> f64 {
    match name {
        "interactive_p99_ms" | "batch_p99_ms" | "makespan_ms" => 1.0,
        "interactive_goodput_rps" | "batch_goodput_rps" => 0.5,
        _ => 0.05, // fractions
    }
}

/// The correction basis for one feature vector: a constant term plus
/// the utilization, its square, the log offered-work scale, the chaos
/// fabric stretch, the memory-tier miss pressure, and the policy flag.
/// Small on purpose — seven terms fit from a dozen anchors generalize;
/// forty would memorize. The miss-pressure and policy terms matter for
/// the placement family (whose working set outgrows HBM residency);
/// they are identically zero across the tenants grid, so its correction
/// stays untouched by placement anchors.
pub fn basis(features: &FeatureVector) -> [f64; BASIS] {
    let rho = features
        .get("interactive_utilization")
        .unwrap_or(0.0)
        .min(4.0);
    [
        1.0,
        rho,
        rho * rho,
        features.get("offered_log").unwrap_or(0.0),
        features.get("fabric_stretch").unwrap_or(1.0),
        features.get("miss_pressure").unwrap_or(0.0),
        features.get("policies").unwrap_or(0.0),
    ]
}

impl Calibration {
    /// The identity calibration: zero correction everywhere.
    pub fn identity() -> Calibration {
        Calibration {
            coeffs: [[0.0; BASIS]; NUM_METRICS],
            anchors: 0,
        }
    }

    /// Fits per-metric correction coefficients against an anchor set by
    /// deterministic ridge-regularized least squares. Total: an empty
    /// anchor set (or a degenerate one with collinear basis columns)
    /// yields finite coefficients — the ridge term keeps the normal
    /// equations non-singular.
    ///
    /// # Examples
    ///
    /// ```
    /// use sn_arch::{NodeSpec, TimeSecs};
    /// use sn_surrogate::{extract, predict_base, Anchor, Calibration, SweepSpec};
    ///
    /// let node = NodeSpec::sn40l_node();
    /// let mut anchors = Vec::new();
    /// for load in [1usize, 2, 4] {
    ///     let spec = SweepSpec {
    ///         nodes: 4,
    ///         per_node_slots: 4,
    ///         experts: 120,
    ///         prompt_tokens: 512,
    ///         wave_tokens: 8,
    ///         interactive_requests: 96 * load,
    ///         batch_requests: 48 * load,
    ///         interactive_chunks: 1,
    ///         batch_chunks: 4,
    ///         interactive_queue_cap: 64,
    ///         batch_queue_cap: 256,
    ///         interactive_deadline: TimeSecs::from_secs(2.0),
    ///         interactive_slo: TimeSecs::from_secs(1.0),
    ///         batch_deadline: TimeSecs::from_secs(30.0),
    ///         batch_slo: TimeSecs::from_secs(10.0),
    ///         arrival_span: TimeSecs::from_secs(0.8),
    ///         load: load as f64,
    ///         policies: false,
    ///         chaos: None,
    ///     };
    ///     let features = extract(&spec, &node);
    ///     let base = predict_base(&spec, &node);
    ///     // Pretend the exact simulator measured 10% higher makespans.
    ///     let mut exact = base;
    ///     exact.values[6] *= 1.1;
    ///     anchors.push(Anchor { spec, features, base, exact });
    /// }
    /// let calibration = Calibration::fit(&anchors);
    /// let corrected = calibration.apply(&anchors[0].features, &anchors[0].base);
    /// let err = (corrected.values[6] - anchors[0].exact.values[6]).abs()
    ///     / anchors[0].exact.values[6];
    /// assert!(err < 0.05, "fit should recover the 10% residual: {err}");
    /// ```
    pub fn fit(anchors: &[Anchor]) -> Calibration {
        let mut coeffs = [[0.0; BASIS]; NUM_METRICS];
        for (m, row) in coeffs.iter_mut().enumerate() {
            // Accumulate the ridge-regularized normal equations
            // XᵀX + λI and Xᵀy in anchor order.
            let mut ata = [[0.0f64; BASIS]; BASIS];
            let mut aty = [0.0f64; BASIS];
            let floor = metric_floor(METRIC_NAMES[m]);
            let log_space = is_log_metric(METRIC_NAMES[m]);
            for anchor in anchors {
                let x = basis(&anchor.features);
                let y = if log_space {
                    (anchor.exact.values[m].max(floor) / anchor.base.values[m].max(floor)).ln()
                } else {
                    let scale = anchor.base.values[m].abs().max(floor);
                    (anchor.exact.values[m] - anchor.base.values[m]) / scale
                };
                if !y.is_finite() {
                    continue;
                }
                for i in 0..BASIS {
                    for j in 0..BASIS {
                        ata[i][j] += x[i] * x[j];
                    }
                    aty[i] += x[i] * y;
                }
            }
            for (i, r) in ata.iter_mut().enumerate() {
                r[i] += RIDGE;
            }
            *row = solve(ata, aty);
        }
        Calibration {
            coeffs,
            anchors: anchors.len(),
        }
    }

    /// Applies the fitted correction to a base prediction — times and
    /// rates multiplicatively (`base × exp(coeffs · basis)`), fractions
    /// linearly (`base + (coeffs · basis) × scale(base)`) — then clamps
    /// each metric back into its physical range.
    pub fn apply(&self, features: &FeatureVector, base: &MetricVector) -> MetricVector {
        let x = basis(features);
        let mut out = *base;
        for (m, name) in METRIC_NAMES.iter().enumerate() {
            let correction: f64 = self.coeffs[m]
                .iter()
                .zip(x.iter())
                .map(|(c, xi)| c * xi)
                .sum();
            let floor = metric_floor(name);
            out.values[m] = if is_log_metric(name) {
                let correction = correction.clamp(-MAX_LOG_CORRECTION, MAX_LOG_CORRECTION);
                base.values[m].max(floor) * correction.exp()
            } else {
                let correction = correction.clamp(-MAX_CORRECTION, MAX_CORRECTION);
                let scale = base.values[m].abs().max(floor);
                base.values[m] + correction * scale
            };
        }
        out.clamp_physical()
    }
}

/// Relative error of a prediction against an exact value, floored per
/// metric so near-zero exact values don't produce infinite errors.
pub fn relative_error(metric: &str, predicted: f64, exact: f64) -> f64 {
    (predicted - exact).abs() / exact.abs().max(metric_floor(metric))
}

/// Solves `A x = b` for a small dense system by Gaussian elimination
/// with partial pivoting. Deterministic; returns zeros if a pivot
/// degenerates (the ridge term prevents that for the fit's systems).
fn solve(mut a: [[f64; BASIS]; BASIS], mut b: [f64; BASIS]) -> [f64; BASIS] {
    for col in 0..BASIS {
        let mut pivot = col;
        for row in (col + 1)..BASIS {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return [0.0; BASIS];
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..BASIS {
            let factor = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (cell, p) in a[row].iter_mut().zip(pivot_row.iter()).skip(col) {
                *cell -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0; BASIS];
    for col in (0..BASIS).rev() {
        let mut sum = b[col];
        for k in (col + 1)..BASIS {
            sum -= a[col][k] * x[k];
        }
        x[col] = sum / a[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;
    use crate::model::predict_base;
    use sn_arch::{NodeSpec, TimeSecs};

    fn spec_for(load: usize) -> SweepSpec {
        SweepSpec {
            nodes: 4,
            per_node_slots: 4,
            experts: 120,
            prompt_tokens: 512,
            wave_tokens: 8,
            interactive_requests: 96 * load,
            batch_requests: 48 * load,
            interactive_chunks: 1,
            batch_chunks: 4,
            interactive_queue_cap: 64,
            batch_queue_cap: 256,
            interactive_deadline: TimeSecs::from_secs(2.0),
            interactive_slo: TimeSecs::from_secs(1.0),
            batch_deadline: TimeSecs::from_secs(30.0),
            batch_slo: TimeSecs::from_secs(10.0),
            arrival_span: TimeSecs::from_secs(0.8),
            load: load as f64,
            policies: false,
            chaos: None,
        }
    }

    fn synthetic_anchor(load: usize, bias: f64) -> Anchor {
        let node = NodeSpec::sn40l_node();
        let spec = spec_for(load);
        let features = extract(&spec, &node);
        let base = predict_base(&spec, &node);
        let mut exact = base;
        for v in exact.values.iter_mut() {
            *v *= bias;
        }
        Anchor {
            spec,
            features,
            base,
            exact: exact.clamp_physical(),
        }
    }

    #[test]
    fn fit_is_deterministic() {
        let anchors: Vec<Anchor> = (1..=4).map(|l| synthetic_anchor(l, 1.2)).collect();
        assert_eq!(Calibration::fit(&anchors), Calibration::fit(&anchors));
    }

    #[test]
    fn fit_recovers_a_constant_bias() {
        let anchors: Vec<Anchor> = (1..=4).map(|l| synthetic_anchor(l, 1.25)).collect();
        let calibration = Calibration::fit(&anchors);
        for anchor in &anchors {
            let corrected = calibration.apply(&anchor.features, &anchor.base);
            for (m, name) in METRIC_NAMES.iter().enumerate() {
                // Fractions the physical clamp bound are no longer a
                // constant bias across anchors; only demand recovery
                // where the bias survived intact.
                if anchor.exact.values[m] != anchor.base.values[m] * 1.25 {
                    continue;
                }
                let err = relative_error(name, corrected.values[m], anchor.exact.values[m]);
                assert!(
                    err < 0.05,
                    "{name}: err {err} after fitting a constant bias"
                );
            }
        }
    }

    #[test]
    fn degenerate_anchor_sets_stay_finite() {
        // Empty set: identity-ish (ridge-only) fit.
        let empty = Calibration::fit(&[]);
        assert!(empty.coeffs.iter().flatten().all(|c| c.is_finite()));

        // All-identical anchors: collinear basis rows; ridge keeps the
        // system solvable and the coefficients finite.
        let same: Vec<Anchor> = (0..6).map(|_| synthetic_anchor(2, 1.1)).collect();
        let calibration = Calibration::fit(&same);
        assert!(calibration.coeffs.iter().flatten().all(|c| c.is_finite()));
        let anchor = &same[0];
        let corrected = calibration.apply(&anchor.features, &anchor.base);
        assert!(corrected.all_finite());
    }

    #[test]
    fn apply_clamps_fractions_into_range() {
        let mut calibration = Calibration::identity();
        // Force a huge positive correction on hbm_hit_rate (index 4).
        calibration.coeffs[4][0] = 100.0;
        let anchor = synthetic_anchor(1, 1.0);
        let corrected = calibration.apply(&anchor.features, &anchor.base);
        assert!(corrected.get("hbm_hit_rate").unwrap() <= 1.0);
    }
}
