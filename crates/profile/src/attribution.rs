//! Roofline bottleneck attribution per serving phase.
//!
//! The serving pipeline (Figure 9) decomposes a batch into phases —
//! router, DDR→HBM expert switching, expert prefill, decode, and fault
//! recovery. Each phase demands a different resource: prefill raises
//! operational intensity past the machine balance (compute), decode
//! streams weights from HBM at ~2 ops/byte (HBM bandwidth), switching
//! copies weights over the DDR tier (DDR bandwidth), and recovery is
//! re-done movement/work (switching churn). This module quantifies that
//! story: per phase, how much time, which resource binds it, how close the
//! attained FLOP rate comes to the roofline, and how hard each memory
//! tier is driven.

use serde::{Deserialize, Serialize};
use sn_arch::roofline::Roofline;
use sn_arch::{Bandwidth, Bytes, FlopRate, Flops, NodeSpec, TimeSecs};
use sn_trace::{Metric, MetricsReport};

/// The machine model attribution is computed against: a compute ceiling
/// plus the *effective* bandwidth of each off-chip memory tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineProfile {
    /// Peak BF16 throughput (the roofline ceiling).
    pub peak: FlopRate,
    /// Effective HBM streaming bandwidth (the roofline slope for kernel
    /// execution).
    pub hbm_bandwidth: Bandwidth,
    /// Effective DDR bandwidth on the model-switch route (DDR→HBM expert
    /// copies).
    pub ddr_bandwidth: Bandwidth,
}

impl MachineProfile {
    /// Profile of one multi-socket node (aggregate peak, aggregate
    /// effective HBM bandwidth, aggregate model-switch bandwidth).
    pub fn from_node(node: &NodeSpec) -> Self {
        MachineProfile {
            peak: node.peak_bf16(),
            hbm_bandwidth: node.effective_hbm_bandwidth(),
            ddr_bandwidth: node.model_switch_bandwidth(),
        }
    }

    /// Scales every capacity by a factor — a cluster of `n` nodes is the
    /// node profile scaled by `n` (utilization gauges then read as
    /// fraction of whole-cluster capacity).
    pub fn scale(self, factor: f64) -> Self {
        MachineProfile {
            peak: self.peak.scale(factor),
            hbm_bandwidth: self.hbm_bandwidth.scale(factor),
            ddr_bandwidth: self.ddr_bandwidth.scale(factor),
        }
    }

    /// The HBM roofline (ceiling = peak, slope = effective HBM bandwidth).
    pub fn hbm_roofline(&self) -> Roofline {
        Roofline::new(self.peak, self.hbm_bandwidth)
    }
}

/// A serving phase, in pipeline order (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Router prefill plus classification decode steps (§VI-B).
    Router,
    /// Expert weights moving DDR→HBM (§V-B, the Figure 1 bar).
    Switching,
    /// Expert prompt prefill across the batch.
    Prefill,
    /// Expert autoregressive decode across the batch.
    Decode,
    /// Time lost to injected faults: wasted attempts plus backoff (PR 1).
    Recovery,
}

impl PhaseKind {
    /// Every phase, in pipeline order.
    pub const ALL: [PhaseKind; 5] = [
        PhaseKind::Router,
        PhaseKind::Switching,
        PhaseKind::Prefill,
        PhaseKind::Decode,
        PhaseKind::Recovery,
    ];

    /// Snake-case name used in tables and benchmark snapshots.
    pub const fn name(self) -> &'static str {
        match self {
            PhaseKind::Router => "router",
            PhaseKind::Switching => "switching",
            PhaseKind::Prefill => "prefill",
            PhaseKind::Decode => "decode",
            PhaseKind::Recovery => "recovery",
        }
    }
}

/// Raw inputs for one phase: where its time went and what it moved/computed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSample {
    /// Which phase this is.
    pub kind: PhaseKind,
    /// Wall time attributed to the phase.
    pub time: TimeSecs,
    /// Useful FLOPs executed during the phase.
    pub flops: Flops,
    /// Bytes streamed through HBM during the phase.
    pub hbm_bytes: Bytes,
    /// Bytes moved over the DDR tier during the phase.
    pub ddr_bytes: Bytes,
}

/// Which resource binds a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bound {
    /// Compute demand (FLOPs at peak) dominates: the phase sits on the
    /// roofline ceiling (fused prefill, §VI-A).
    Compute,
    /// HBM streaming demand dominates: the phase rides the bandwidth slope
    /// (decode at ~2 ops/byte, §VI-B).
    HbmBandwidth,
    /// DDR-tier movement dominates: the phase is limited by the
    /// model-switch route (expert copies, §V-B).
    DdrBandwidth,
    /// No steady-state resource demand explains the time — it is
    /// model-movement churn: retry/backoff recovery, or a switching phase
    /// that moved nothing (all hits).
    Switching,
}

impl Bound {
    /// Hyphenated name used in tables and benchmark snapshots.
    pub const fn name(self) -> &'static str {
        match self {
            Bound::Compute => "compute-bound",
            Bound::HbmBandwidth => "hbm-bandwidth-bound",
            Bound::DdrBandwidth => "ddr-bandwidth-bound",
            Bound::Switching => "switching-bound",
        }
    }
}

/// One phase's attribution: time share, bottleneck class, roofline
/// position, and per-tier bandwidth utilization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseAttribution {
    /// Which phase this is.
    pub kind: PhaseKind,
    /// Wall time attributed to the phase.
    pub time: TimeSecs,
    /// Share of the batch total in `[0, 1]` (0.0 for a zero-total batch).
    pub fraction: f64,
    /// The resource binding the phase (largest demand-time wins).
    pub bound: Bound,
    /// Operational intensity against HBM traffic, FLOPs/byte (0.0 when the
    /// phase executes no FLOPs).
    pub intensity: f64,
    /// Attained FLOP rate: useful FLOPs over phase time.
    pub attained: FlopRate,
    /// Roofline-attainable FLOP rate at this phase's intensity.
    pub attainable: FlopRate,
    /// Attained over attainable in `[0, 1]` (0.0 for FLOP-free phases).
    pub flop_utilization: f64,
    /// Fraction of the phase spent at full effective HBM bandwidth.
    pub hbm_utilization: f64,
    /// Fraction of the phase spent at full effective DDR bandwidth.
    pub ddr_utilization: f64,
}

impl PhaseAttribution {
    fn from_sample(machine: &MachineProfile, total: TimeSecs, s: &PhaseSample) -> Self {
        let secs = s.time.as_secs();
        let compute_demand = (s.flops / machine.peak).as_secs();
        let hbm_demand = (s.hbm_bytes / machine.hbm_bandwidth).as_secs();
        let ddr_demand = (s.ddr_bytes / machine.ddr_bandwidth).as_secs();
        let bound = if compute_demand == 0.0 && hbm_demand == 0.0 && ddr_demand == 0.0 {
            Bound::Switching
        } else if ddr_demand >= hbm_demand && ddr_demand >= compute_demand {
            Bound::DdrBandwidth
        } else if compute_demand >= hbm_demand {
            Bound::Compute
        } else {
            Bound::HbmBandwidth
        };
        let roofline = machine.hbm_roofline();
        let (intensity, attained, attainable) = if s.flops.as_f64() > 0.0 {
            let intensity = s.flops.intensity(s.hbm_bytes);
            let attained = if secs > 0.0 {
                FlopRate::from_flops_per_s(s.flops.as_f64() / secs)
            } else {
                FlopRate::ZERO
            };
            (intensity, attained, roofline.attainable(intensity))
        } else {
            (0.0, FlopRate::ZERO, FlopRate::ZERO)
        };
        let util = |demand: f64| {
            if secs > 0.0 {
                (demand / secs).clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        PhaseAttribution {
            kind: s.kind,
            time: s.time,
            fraction: if total.as_secs() > 0.0 {
                secs / total.as_secs()
            } else {
                0.0
            },
            bound,
            intensity,
            attained,
            attainable,
            flop_utilization: if s.flops.as_f64() > 0.0 {
                roofline.utilization(attained, intensity)
            } else {
                0.0
            },
            hbm_utilization: util(hbm_demand),
            ddr_utilization: util(ddr_demand),
        }
    }
}

/// Hierarchical time attribution of one served batch: every phase, in
/// pipeline order, measured against one [`MachineProfile`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeAttribution {
    /// The machine the batch was measured against.
    pub machine: MachineProfile,
    /// Total batch time (sum of phase times).
    pub total: TimeSecs,
    /// Per-phase attribution, in the order the samples were given.
    pub phases: Vec<PhaseAttribution>,
}

impl ServeAttribution {
    /// Attributes a batch from raw phase samples. Deterministic: same
    /// samples, same machine — identical attribution.
    pub fn from_samples(machine: MachineProfile, samples: Vec<PhaseSample>) -> Self {
        let total: TimeSecs = samples.iter().map(|s| s.time).sum();
        let phases = samples
            .iter()
            .map(|s| PhaseAttribution::from_sample(&machine, total, s))
            .collect();
        ServeAttribution {
            machine,
            total,
            phases,
        }
    }

    /// The attribution of one phase, if it was sampled.
    pub fn phase(&self, kind: PhaseKind) -> Option<&PhaseAttribution> {
        self.phases.iter().find(|p| p.kind == kind)
    }

    /// Share of total batch time spent in phases classified as `bound`
    /// (0.0 for an empty or zero-time attribution). The placement sweep
    /// uses `bound_fraction(Bound::DdrBandwidth)` +
    /// `bound_fraction(Bound::Switching)` as its "switch-bound" figure:
    /// how much of the serve the DDR expert-switch path dominated.
    pub fn bound_fraction(&self, bound: Bound) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.bound == bound)
            .map(|p| p.fraction)
            .sum()
    }

    /// The phase holding the largest time share (ties to the earlier
    /// phase); `None` for an empty attribution.
    pub fn dominant(&self) -> Option<PhaseKind> {
        self.phases
            .iter()
            .max_by(|a, b| {
                a.fraction
                    .partial_cmp(&b.fraction)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|p| p.kind)
    }

    /// Renders the attribution as an aligned plain-text table (the
    /// `repro --profile` console output).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  machine: peak {} | HBM {} eff | DDR-switch {} eff | balance {:.0} ops/byte\n",
            self.machine.peak,
            self.machine.hbm_bandwidth,
            self.machine.ddr_bandwidth,
            self.machine.hbm_roofline().balance(),
        ));
        out.push_str(&format!(
            "  {:<10} {:>12} {:>7}  {:<20} {:>14} {:>14} {:>7} {:>7}\n",
            "phase", "time", "share", "bound", "attained", "attainable", "hbm-bw", "ddr-bw"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<10} {:>12} {:>6.1}%  {:<20} {:>14} {:>14} {:>6.1}% {:>6.1}%\n",
                p.kind.name(),
                p.time.to_string(),
                100.0 * p.fraction,
                p.bound.name(),
                p.attained.to_string(),
                p.attainable.to_string(),
                100.0 * p.hbm_utilization,
                100.0 * p.ddr_utilization,
            ));
        }
        out.push_str(&format!(
            "  {:<10} {:>12} {:>6.1}%\n",
            "total",
            self.total.to_string(),
            100.0
        ));
        out
    }
}

/// Per-request latency quantiles pulled from a [`MetricsReport`]'s
/// `request_ns` histogram via the public [`sn_trace::Histogram::quantile`]
/// API (conservative power-of-two upper bounds, in nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestQuantiles {
    /// Median request latency (ns, bucket upper bound).
    pub p50_ns: u64,
    /// 95th-percentile request latency (ns, bucket upper bound).
    pub p95_ns: u64,
    /// 99th-percentile request latency (ns, bucket upper bound).
    pub p99_ns: u64,
}

/// Extracts request-latency quantiles from an aggregated metrics report;
/// `None` when no request was ever observed (untraced or empty runs).
pub fn request_latency_quantiles(metrics: &MetricsReport) -> Option<RequestQuantiles> {
    let h = metrics.histogram(Metric::Request)?;
    Some(RequestQuantiles {
        p50_ns: h.quantile(0.5),
        p95_ns: h.quantile(0.95),
        p99_ns: h.quantile(0.99),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_trace::Histogram;

    fn machine() -> MachineProfile {
        MachineProfile::from_node(&NodeSpec::sn40l_node())
    }

    fn sample(kind: PhaseKind, ms: f64, tflops: f64, hbm_gb: f64, ddr_gb: f64) -> PhaseSample {
        PhaseSample {
            kind,
            time: TimeSecs::from_millis(ms),
            flops: Flops::from_tflops(tflops),
            hbm_bytes: Bytes::from_gb(hbm_gb),
            ddr_bytes: Bytes::from_gb(ddr_gb),
        }
    }

    #[test]
    fn classification_matches_the_paper_story() {
        let m = machine();
        // Switching: expert-sized DDR→HBM copies, no FLOPs.
        let switching = sample(PhaseKind::Switching, 13.0, 0.0, 13.5, 13.5);
        // Decode: weight streaming at ~2 ops/byte.
        let decode = sample(PhaseKind::Decode, 20.0, 0.2, 100.0, 0.0);
        // Prefill: fused, intensity far past the ~375 ops/byte balance.
        let prefill = sample(PhaseKind::Prefill, 10.0, 4000.0, 2.0, 0.0);
        // Recovery: pure churn, no steady-state demand.
        let recovery = sample(PhaseKind::Recovery, 1.0, 0.0, 0.0, 0.0);
        let a = ServeAttribution::from_samples(m, vec![switching, decode, prefill, recovery]);
        assert_eq!(
            a.phase(PhaseKind::Switching).unwrap().bound,
            Bound::DdrBandwidth
        );
        assert_eq!(
            a.phase(PhaseKind::Decode).unwrap().bound,
            Bound::HbmBandwidth
        );
        assert_eq!(a.phase(PhaseKind::Prefill).unwrap().bound, Bound::Compute);
        assert_eq!(
            a.phase(PhaseKind::Recovery).unwrap().bound,
            Bound::Switching
        );
    }

    #[test]
    fn fractions_sum_to_one_and_dominant_is_largest() {
        let m = machine();
        let a = ServeAttribution::from_samples(
            m,
            vec![
                sample(PhaseKind::Router, 5.0, 100.0, 1.0, 0.0),
                sample(PhaseKind::Decode, 30.0, 0.2, 100.0, 0.0),
                sample(PhaseKind::Switching, 10.0, 0.0, 10.0, 10.0),
            ],
        );
        let sum: f64 = a.phases.iter().map(|p| p.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(a.dominant(), Some(PhaseKind::Decode));
        assert!((a.total.as_millis() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn bound_fraction_sums_matching_phases() {
        let m = machine();
        let a = ServeAttribution::from_samples(
            m,
            vec![
                sample(PhaseKind::Switching, 10.0, 0.0, 13.5, 13.5),
                sample(PhaseKind::Recovery, 10.0, 0.0, 5.0, 5.0),
                sample(PhaseKind::Decode, 20.0, 0.2, 100.0, 0.0),
            ],
        );
        let ddr = a.bound_fraction(Bound::DdrBandwidth);
        let hbm = a.bound_fraction(Bound::HbmBandwidth);
        assert!((ddr - 0.5).abs() < 1e-12, "switching + recovery: {ddr}");
        assert!((hbm - 0.5).abs() < 1e-12);
        assert_eq!(a.bound_fraction(Bound::Compute), 0.0);
        let empty = ServeAttribution::from_samples(m, vec![]);
        assert_eq!(empty.bound_fraction(Bound::DdrBandwidth), 0.0);
    }

    #[test]
    fn utilizations_stay_in_range_and_zero_total_is_safe() {
        let m = machine();
        // More bytes than the phase time could possibly move: clamps to 1.
        let hot = sample(PhaseKind::Decode, 1.0, 0.1, 1000.0, 1000.0);
        let a = ServeAttribution::from_samples(m, vec![hot]);
        let p = &a.phases[0];
        assert_eq!(p.hbm_utilization, 1.0);
        assert_eq!(p.ddr_utilization, 1.0);
        assert!(p.flop_utilization >= 0.0 && p.flop_utilization <= 1.0);
        // A batch where nothing took time at all: no NaNs anywhere.
        let idle = sample(PhaseKind::Router, 0.0, 0.0, 0.0, 0.0);
        let z = ServeAttribution::from_samples(m, vec![idle]);
        assert_eq!(z.phases[0].fraction, 0.0);
        assert_eq!(z.phases[0].hbm_utilization, 0.0);
        assert!(z.render_table().contains("router"));
    }

    #[test]
    fn attained_never_exceeds_attainable_for_roofline_consistent_samples() {
        let m = machine();
        // A phase whose time is exactly its HBM demand (perfect streaming).
        let bytes = Bytes::from_gb(50.0);
        let time = bytes / m.hbm_bandwidth;
        let s = PhaseSample {
            kind: PhaseKind::Decode,
            time,
            flops: Flops::from_tflops(0.1),
            hbm_bytes: bytes,
            ddr_bytes: Bytes::ZERO,
        };
        let a = ServeAttribution::from_samples(m, vec![s]);
        let p = &a.phases[0];
        assert!(p.attained.as_flops_per_s() <= p.attainable.as_flops_per_s() * (1.0 + 1e-9));
        assert!(
            (p.flop_utilization - 1.0).abs() < 1e-6,
            "perfect streaming attains the slope"
        );
    }

    #[test]
    fn request_quantiles_come_from_the_public_histogram_api() {
        let mut h = Histogram::new();
        for v in [1_000u64, 2_000, 4_000, 1_000_000] {
            h.record(v);
        }
        let metrics = MetricsReport {
            counters: vec![],
            histograms: vec![(Metric::Request, h.clone())],
        };
        let q = request_latency_quantiles(&metrics).expect("recorded");
        assert_eq!(q.p50_ns, h.quantile(0.5));
        assert_eq!(q.p99_ns, h.quantile(0.99));
        assert!(q.p50_ns <= q.p95_ns && q.p95_ns <= q.p99_ns);
        assert!(request_latency_quantiles(&MetricsReport::empty()).is_none());
    }
}
