//! Live serving SLO metrics: sliding-window latency percentiles, TTFT,
//! throughput, and per-tier utilization gauges.
//!
//! A [`SloTracker`] sits inside a serving node (or cluster front-end) and
//! is fed one [`BatchObservation`] per served batch. Its [`snapshot`]
//! summarizes the most recent window — the numbers an operator would put
//! on a dashboard: p50/p95/p99 batch latency, time-to-first-token,
//! tokens/sec, and how hard each memory tier ran. Percentiles are exact
//! nearest-rank over the window (not histogram-bucketed), so they are a
//! deterministic function of the observations.
//!
//! [`snapshot`]: SloTracker::snapshot

use crate::attribution::MachineProfile;
use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, TimeSecs};
use std::collections::VecDeque;

/// Tuning for an [`SloTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloConfig {
    /// How many of the most recent batches the sliding window keeps.
    /// Must be at least 1 (a zero window is promoted to 1).
    pub window: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig { window: 64 }
    }
}

/// One served batch, as the SLO layer sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchObservation {
    /// End-to-end batch latency.
    pub latency: TimeSecs,
    /// Time-to-first-token: routing + expert switching + one prefill.
    pub ttft: TimeSecs,
    /// Prompts served by the batch.
    pub prompts: usize,
    /// Output tokens generated across the batch.
    pub tokens: usize,
    /// Bytes streamed through HBM while serving the batch.
    pub hbm_bytes: Bytes,
    /// Bytes moved over the DDR tier while serving the batch.
    pub ddr_bytes: Bytes,
}

/// Point-in-time summary of the tracker's window: the serving SLO
/// dashboard, attached to `ServeReport`/`ClusterReport` by `sn-coe`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSnapshot {
    /// Batches currently in the window.
    pub window_batches: usize,
    /// Batches observed over the tracker's lifetime.
    pub total_batches: usize,
    /// Median batch latency over the window.
    pub batch_latency_p50: TimeSecs,
    /// 95th-percentile batch latency over the window.
    pub batch_latency_p95: TimeSecs,
    /// 99th-percentile batch latency over the window.
    pub batch_latency_p99: TimeSecs,
    /// Median time-to-first-token over the window.
    pub ttft_p50: TimeSecs,
    /// 95th-percentile time-to-first-token over the window.
    pub ttft_p95: TimeSecs,
    /// 99th-percentile time-to-first-token over the window.
    pub ttft_p99: TimeSecs,
    /// Output tokens per second over the window (tokens / serving time).
    pub tokens_per_sec: f64,
    /// Fraction of window serving time spent at full effective HBM
    /// bandwidth, in `[0, 1]`.
    pub hbm_utilization: f64,
    /// Fraction of window serving time spent at full effective DDR
    /// bandwidth, in `[0, 1]`.
    pub ddr_utilization: f64,
}

impl SloSnapshot {
    /// Renders the snapshot as an aligned plain-text block (the
    /// `repro --profile` console output).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  window {} of {} batches\n",
            self.window_batches, self.total_batches
        ));
        out.push_str(&format!(
            "  {:<16} {:>12} {:>12} {:>12}\n",
            "latency", "p50", "p95", "p99"
        ));
        out.push_str(&format!(
            "  {:<16} {:>12} {:>12} {:>12}\n",
            "batch",
            self.batch_latency_p50.to_string(),
            self.batch_latency_p95.to_string(),
            self.batch_latency_p99.to_string(),
        ));
        out.push_str(&format!(
            "  {:<16} {:>12} {:>12} {:>12}\n",
            "ttft",
            self.ttft_p50.to_string(),
            self.ttft_p95.to_string(),
            self.ttft_p99.to_string(),
        ));
        out.push_str(&format!(
            "  tokens/sec {:.1} | HBM util {:.1}% | DDR util {:.1}%\n",
            self.tokens_per_sec,
            100.0 * self.hbm_utilization,
            100.0 * self.ddr_utilization,
        ));
        out
    }
}

/// Sliding-window SLO accumulator over served batches.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTracker {
    machine: MachineProfile,
    window: usize,
    observations: VecDeque<BatchObservation>,
    total_batches: usize,
}

impl SloTracker {
    /// A tracker measuring utilization against `machine`, keeping the most
    /// recent `config.window` batches.
    pub fn new(machine: MachineProfile, config: SloConfig) -> Self {
        SloTracker {
            machine,
            window: config.window.max(1),
            observations: VecDeque::new(),
            total_batches: 0,
        }
    }

    /// Feeds one served batch into the window, evicting the oldest batch
    /// once the window is full.
    pub fn record(&mut self, obs: BatchObservation) {
        if self.observations.len() == self.window {
            self.observations.pop_front();
        }
        self.observations.push_back(obs);
        self.total_batches += 1;
    }

    /// Summarizes the current window. `None` until at least one batch has
    /// been observed — there is no meaningful percentile of nothing.
    pub fn snapshot(&self) -> Option<SloSnapshot> {
        if self.observations.is_empty() {
            return None;
        }
        let latencies: Vec<TimeSecs> = self.observations.iter().map(|o| o.latency).collect();
        let ttfts: Vec<TimeSecs> = self.observations.iter().map(|o| o.ttft).collect();
        let serving_secs: f64 = latencies.iter().map(|t| t.as_secs()).sum();
        let tokens: usize = self.observations.iter().map(|o| o.tokens).sum();
        let hbm_demand: f64 = self
            .observations
            .iter()
            .map(|o| (o.hbm_bytes / self.machine.hbm_bandwidth).as_secs())
            .sum();
        let ddr_demand: f64 = self
            .observations
            .iter()
            .map(|o| (o.ddr_bytes / self.machine.ddr_bandwidth).as_secs())
            .sum();
        let util = |demand: f64| {
            if serving_secs > 0.0 {
                (demand / serving_secs).clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        Some(SloSnapshot {
            window_batches: self.observations.len(),
            total_batches: self.total_batches,
            batch_latency_p50: percentile(&latencies, 0.50),
            batch_latency_p95: percentile(&latencies, 0.95),
            batch_latency_p99: percentile(&latencies, 0.99),
            ttft_p50: percentile(&ttfts, 0.50),
            ttft_p95: percentile(&ttfts, 0.95),
            ttft_p99: percentile(&ttfts, 0.99),
            tokens_per_sec: if serving_secs > 0.0 {
                tokens as f64 / serving_secs
            } else {
                0.0
            },
            hbm_utilization: util(hbm_demand),
            ddr_utilization: util(ddr_demand),
        })
    }
}

/// Sorts a sample buffer in place for [`nearest_rank_sorted`]. Uses a
/// total order that treats incomparable (NaN) pairs as equal — the
/// comparator every quantile consumer in the workspace must share, so
/// sorted buffers are interchangeable bit-for-bit.
pub fn sort_for_quantiles(values: &mut [f64]) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

/// Exact nearest-rank quantile over an already-sorted sample buffer:
/// the smallest sample such that at least `q` (clamped to `[0, 1]`) of
/// the samples are ≤ it. Yields 0.0 for an empty buffer. This is the
/// single quantile rule for the whole workspace — the SLO window here
/// and `sn-coe`'s per-request percentiles both call it, so the two can
/// never drift.
pub fn nearest_rank_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Exact nearest-rank percentile: the smallest value such that at least
/// `q` of the samples are ≤ it. `values` must be non-empty.
fn percentile(values: &[TimeSecs], q: f64) -> TimeSecs {
    let mut sorted: Vec<f64> = values.iter().map(|t| t.as_secs()).collect();
    sort_for_quantiles(&mut sorted);
    TimeSecs::from_secs(nearest_rank_sorted(&sorted, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_arch::NodeSpec;

    fn machine() -> MachineProfile {
        MachineProfile::from_node(&NodeSpec::sn40l_node())
    }

    fn obs(latency_ms: f64, ttft_ms: f64, tokens: usize) -> BatchObservation {
        BatchObservation {
            latency: TimeSecs::from_millis(latency_ms),
            ttft: TimeSecs::from_millis(ttft_ms),
            prompts: 8,
            tokens,
            hbm_bytes: Bytes::from_gb(10.0),
            ddr_bytes: Bytes::from_gb(1.0),
        }
    }

    #[test]
    fn empty_tracker_has_no_snapshot() {
        let t = SloTracker::new(machine(), SloConfig::default());
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn single_batch_reports_itself_at_every_percentile() {
        let mut t = SloTracker::new(machine(), SloConfig::default());
        t.record(obs(100.0, 30.0, 160));
        let s = t.snapshot().unwrap();
        assert_eq!(s.window_batches, 1);
        assert_eq!(s.total_batches, 1);
        assert_eq!(s.batch_latency_p50, s.batch_latency_p99);
        assert!((s.batch_latency_p50.as_millis() - 100.0).abs() < 1e-9);
        assert!((s.ttft_p95.as_millis() - 30.0).abs() < 1e-9);
        assert!((s.tokens_per_sec - 1600.0).abs() < 1e-6);
    }

    #[test]
    fn percentiles_are_ordered_and_exact_over_known_samples() {
        let mut t = SloTracker::new(machine(), SloConfig { window: 100 });
        for i in 1..=100 {
            t.record(obs(i as f64, i as f64 / 10.0, 160));
        }
        let s = t.snapshot().unwrap();
        assert!((s.batch_latency_p50.as_millis() - 50.0).abs() < 1e-9);
        assert!((s.batch_latency_p95.as_millis() - 95.0).abs() < 1e-9);
        assert!((s.batch_latency_p99.as_millis() - 99.0).abs() < 1e-9);
        assert!(s.batch_latency_p50 <= s.batch_latency_p95);
        assert!(s.batch_latency_p95 <= s.batch_latency_p99);
        assert!(s.ttft_p50 <= s.ttft_p99);
    }

    #[test]
    fn window_evicts_oldest_but_lifetime_count_keeps_growing() {
        let mut t = SloTracker::new(machine(), SloConfig { window: 4 });
        t.record(obs(1000.0, 1.0, 160)); // will be evicted
        for _ in 0..4 {
            t.record(obs(10.0, 1.0, 160));
        }
        let s = t.snapshot().unwrap();
        assert_eq!(s.window_batches, 4);
        assert_eq!(s.total_batches, 5);
        // The 1000 ms outlier left the window: even p99 is the steady 10 ms.
        assert!((s.batch_latency_p99.as_millis() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_window_is_promoted_to_one() {
        let mut t = SloTracker::new(machine(), SloConfig { window: 0 });
        assert!(t.snapshot().is_none(), "still empty before any batch");
        t.record(obs(10.0, 1.0, 160));
        t.record(obs(90.0, 9.0, 160));
        let s = t.snapshot().unwrap();
        // A window of zero would make every snapshot None forever; the
        // tracker promotes it to 1 so the latest batch is always visible.
        assert_eq!(s.window_batches, 1);
        assert_eq!(s.total_batches, 2);
        assert!((s.batch_latency_p50.as_millis() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn window_of_one_tracks_only_the_latest_batch() {
        let mut t = SloTracker::new(machine(), SloConfig { window: 1 });
        for ms in [500.0, 20.0, 80.0] {
            t.record(obs(ms, ms / 10.0, 160));
        }
        let s = t.snapshot().unwrap();
        assert_eq!(s.window_batches, 1);
        assert_eq!(s.total_batches, 3);
        // Every percentile collapses to the single resident sample.
        assert_eq!(s.batch_latency_p50, s.batch_latency_p95);
        assert_eq!(s.batch_latency_p95, s.batch_latency_p99);
        assert!((s.batch_latency_p99.as_millis() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn eviction_boundary_is_exact() {
        let window = 4;
        let mut t = SloTracker::new(machine(), SloConfig { window });
        // Fill to exactly the window: nothing evicted yet, the first
        // batch still dominates the tail.
        t.record(obs(1000.0, 1.0, 160));
        for _ in 0..window - 1 {
            t.record(obs(10.0, 1.0, 160));
        }
        let s = t.snapshot().unwrap();
        assert_eq!(s.window_batches, window);
        assert!((s.batch_latency_p99.as_millis() - 1000.0).abs() < 1e-9);
        // One more batch crosses the boundary: the outlier is the oldest
        // and must be the one evicted, window size stays pinned.
        t.record(obs(10.0, 1.0, 160));
        let s = t.snapshot().unwrap();
        assert_eq!(s.window_batches, window);
        assert_eq!(s.total_batches, window + 1);
        assert!((s.batch_latency_p99.as_millis() - 10.0).abs() < 1e-9);
        assert!((s.batch_latency_p50.as_millis() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_window_yields_zero_gauges_not_nan() {
        // Regression for the empty-window-NaN class of bug (cf. the PR 3
        // LatencyBreakdown guards): a window whose batches all have zero
        // latency divides by a serving time of 0.0 — every gauge must
        // come out 0.0, not NaN/inf.
        let mut t = SloTracker::new(machine(), SloConfig::default());
        t.record(BatchObservation {
            latency: TimeSecs::ZERO,
            ttft: TimeSecs::ZERO,
            prompts: 0,
            tokens: 100, // tokens with no serving time: the worst case
            hbm_bytes: Bytes::from_gb(1.0),
            ddr_bytes: Bytes::from_gb(1.0),
        });
        let s = t.snapshot().unwrap();
        assert_eq!(s.tokens_per_sec, 0.0);
        assert_eq!(s.hbm_utilization, 0.0);
        assert_eq!(s.ddr_utilization, 0.0);
        assert!(s.tokens_per_sec.is_finite());
        assert!(s.batch_latency_p99.as_secs().is_finite());
        // The rendered dashboard carries no NaN either.
        assert!(!s.render_table().contains("NaN"));
    }

    #[test]
    fn quantile_helpers_are_zero_safe_on_empty_input() {
        assert_eq!(nearest_rank_sorted(&[], 0.5), 0.0);
        assert_eq!(nearest_rank_sorted(&[], 0.99), 0.0);
        let mut empty: [f64; 0] = [];
        sort_for_quantiles(&mut empty); // must not panic

        // NaN samples sort without panicking and never poison the rank.
        let mut with_nan = [3.0, f64::NAN, 1.0];
        sort_for_quantiles(&mut with_nan);
        let q = nearest_rank_sorted(&with_nan, 0.0);
        assert!(q.is_finite() || q.is_nan()); // total order held, no panic
    }

    #[test]
    fn utilization_gauges_reflect_demand_over_serving_time() {
        let m = machine();
        let mut t = SloTracker::new(m, SloConfig::default());
        // A batch whose latency is exactly its HBM streaming demand.
        let bytes = Bytes::from_gb(100.0);
        let latency = bytes / m.hbm_bandwidth;
        t.record(BatchObservation {
            latency,
            ttft: latency * 0.1,
            prompts: 8,
            tokens: 160,
            hbm_bytes: bytes,
            ddr_bytes: Bytes::ZERO,
        });
        let s = t.snapshot().unwrap();
        assert!((s.hbm_utilization - 1.0).abs() < 1e-9);
        assert_eq!(s.ddr_utilization, 0.0);
        assert!(s.render_table().contains("tokens/sec"));
    }
}
