//! Analysis layer over the observability stack: turns raw metrics and
//! timings into *"which resource binds this phase"* answers.
//!
//! `sn-trace` (PR 2) records what happened — events, counters, latency
//! histograms. This crate interprets those records against the hardware
//! model in `sn-arch`:
//!
//! - [`attribution`] — hierarchical time attribution per serving phase
//!   (router / switching / prefill / decode / recovery) with attained-vs-
//!   attainable FLOP rate and per-tier bandwidth utilization, classifying
//!   each phase as compute-, HBM-, DDR-, or switching-bound. This is the
//!   quantitative form of the paper's Figures 1/9/12 argument: CoE serving
//!   is memory-wall-bound, and which wall depends on the phase.
//! - [`slo`] — live serving SLO metrics: sliding-window p50/p95/p99 batch
//!   latency, time-to-first-token, tokens/sec, and per-tier utilization
//!   gauges, surfaced on `ServeReport`/`ClusterReport` by `sn-coe`.
//! - [`snapshot`] — machine-readable benchmark snapshots with per-metric
//!   tolerances, the continuous-benchmark harness behind
//!   `repro --bench-json` / `scripts/bench_check.sh`.
//!
//! Everything here is a pure function of deterministic simulator output,
//! so two same-seed runs produce identical attributions, SLO snapshots,
//! and benchmark JSON.
//!
//! # Example
//!
//! ```
//! use sn_arch::prelude::*;
//! use sn_profile::{Bound, MachineProfile, PhaseKind, PhaseSample, ServeAttribution};
//!
//! let machine = MachineProfile::from_node(&NodeSpec::sn40l_node());
//! // A decode-like phase: lots of bytes from HBM, few FLOPs per byte.
//! let decode = PhaseSample {
//!     kind: PhaseKind::Decode,
//!     time: TimeSecs::from_millis(20.0),
//!     flops: Flops::from_tflops(0.1),
//!     hbm_bytes: Bytes::from_gb(100.0),
//!     ddr_bytes: Bytes::ZERO,
//! };
//! let attribution = ServeAttribution::from_samples(machine, vec![decode]);
//! assert_eq!(attribution.phase(PhaseKind::Decode).unwrap().bound, Bound::HbmBandwidth);
//! ```

#![warn(missing_docs)]

pub mod attribution;
pub mod slo;
pub mod snapshot;

pub use attribution::{
    request_latency_quantiles, Bound, MachineProfile, PhaseAttribution, PhaseKind, PhaseSample,
    RequestQuantiles, ServeAttribution,
};
pub use slo::{
    nearest_rank_sorted, sort_for_quantiles, BatchObservation, SloConfig, SloSnapshot, SloTracker,
};
pub use snapshot::{
    BenchMetric, BenchSnapshot, CompareReport, CompareRow, CompareStatus, MetricValue,
};
