//! Machine-readable benchmark snapshots and regression comparison: the
//! continuous-benchmark harness behind `repro --bench-json` and
//! `scripts/bench_check.sh`.
//!
//! A [`BenchSnapshot`] is an ordered list of tracked metrics — key
//! figures, attribution fractions, SLO percentiles — each with a unit and
//! a relative tolerance, plus free-form `info` entries (simulator
//! wall-clock, configuration) that are recorded but never compared.
//! Snapshots serialize to a small hand-rolled JSON document
//! (`sn-bench-snapshot-v1`; the vendored `serde` is a marker stub) and
//! parse back via `sn_trace::json`, so a committed baseline can be
//! diffed against a fresh run: [`BenchSnapshot::compare`] flags any
//! metric whose relative deviation exceeds the *baseline's* tolerance.

use serde::{Deserialize, Serialize};
use sn_trace::json::{self, JsonValue};

/// Schema identifier written into (and required of) every snapshot.
pub const SCHEMA: &str = "sn-bench-snapshot-v1";

/// A tracked metric's value: numeric (compared within tolerance) or text
/// (compared exactly — e.g. a bottleneck classification).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A number; non-finite values are serialized as 0 (matching the
    /// tracer's JSON writers).
    Num(f64),
    /// A label compared for exact equality.
    Text(String),
}

impl std::fmt::Display for MetricValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricValue::Num(n) => write!(f, "{n:?}"),
            MetricValue::Text(s) => write!(f, "{s}"),
        }
    }
}

/// One tracked metric: key, value, display unit, and the relative
/// tolerance future runs are allowed to deviate by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchMetric {
    /// Stable dotted key, e.g. `fig12.bs8.total_ms`.
    pub key: String,
    /// The measured value.
    pub value: MetricValue,
    /// Display unit, e.g. `ms` or `fraction` (empty for text metrics).
    pub unit: String,
    /// Allowed relative deviation (0.0 = exact; 0.02 = ±2%).
    pub tolerance: f64,
}

/// An ordered, machine-readable benchmark snapshot.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Tracked metrics, in insertion order.
    pub metrics: Vec<BenchMetric>,
    /// Informational key/value pairs (never compared), in insertion order.
    pub info: Vec<(String, String)>,
}

impl BenchSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a numeric metric with a relative tolerance.
    pub fn push_num(&mut self, key: &str, value: f64, unit: &str, tolerance: f64) {
        self.metrics.push(BenchMetric {
            key: key.to_string(),
            value: MetricValue::Num(value),
            unit: unit.to_string(),
            tolerance,
        });
    }

    /// Appends a text metric (compared exactly).
    pub fn push_text(&mut self, key: &str, value: &str) {
        self.metrics.push(BenchMetric {
            key: key.to_string(),
            value: MetricValue::Text(value.to_string()),
            unit: String::new(),
            tolerance: 0.0,
        });
    }

    /// Appends an informational entry that comparison ignores (simulator
    /// wall-clock, host details, configuration).
    pub fn push_info(&mut self, key: &str, value: &str) {
        self.info.push((key.to_string(), value.to_string()));
    }

    /// The metric stored under `key`, if any.
    pub fn metric(&self, key: &str) -> Option<&BenchMetric> {
        self.metrics.iter().find(|m| m.key == key)
    }

    /// Serializes to the `sn-bench-snapshot-v1` JSON document. Output is
    /// deterministic: same snapshot, byte-identical JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {},\n", escape(SCHEMA)));
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let value = match &m.value {
                MetricValue::Num(n) => fmt_num(*n),
                MetricValue::Text(s) => escape(s),
            };
            out.push_str(&format!(
                "    {{\"key\": {}, \"value\": {}, \"unit\": {}, \"tolerance\": {}}}{}\n",
                escape(&m.key),
                value,
                escape(&m.unit),
                fmt_num(m.tolerance),
                if i + 1 == self.metrics.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"info\": [\n");
        for (i, (k, v)) in self.info.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"key\": {}, \"value\": {}}}{}\n",
                escape(k),
                escape(v),
                if i + 1 == self.info.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a snapshot serialized by [`BenchSnapshot::to_json`].
    pub fn from_json(input: &str) -> Result<Self, String> {
        let doc = json::parse(input).map_err(|e| e.to_string())?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("unsupported schema {other:?}")),
            None => return Err("missing \"schema\" field".to_string()),
        }
        let mut snap = BenchSnapshot::new();
        for m in doc
            .get("metrics")
            .and_then(JsonValue::as_array)
            .ok_or("missing \"metrics\" array")?
        {
            let key = m
                .get("key")
                .and_then(JsonValue::as_str)
                .ok_or("metric missing \"key\"")?;
            let unit = m.get("unit").and_then(JsonValue::as_str).unwrap_or("");
            let tolerance = m
                .get("tolerance")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            let value = match m.get("value") {
                Some(JsonValue::Number(n)) => MetricValue::Num(*n),
                Some(JsonValue::String(s)) => MetricValue::Text(s.clone()),
                _ => return Err(format!("metric {key:?} has a non-scalar value")),
            };
            snap.metrics.push(BenchMetric {
                key: key.to_string(),
                value,
                unit: unit.to_string(),
                tolerance,
            });
        }
        if let Some(info) = doc.get("info").and_then(JsonValue::as_array) {
            for entry in info {
                let key = entry
                    .get("key")
                    .and_then(JsonValue::as_str)
                    .ok_or("info entry missing \"key\"")?;
                let value = entry.get("value").and_then(JsonValue::as_str).unwrap_or("");
                snap.push_info(key, value);
            }
        }
        Ok(snap)
    }

    /// Compares `current` (a fresh run) against `self` (the committed
    /// baseline). Every baseline metric is checked using the *baseline's*
    /// tolerance; metrics only present in `current` are reported as
    /// [`CompareStatus::New`] and never fail the check.
    pub fn compare(&self, current: &BenchSnapshot) -> CompareReport {
        let mut rows = Vec::new();
        for base in &self.metrics {
            let row = match current.metric(&base.key) {
                None => CompareRow {
                    key: base.key.clone(),
                    baseline: Some(base.value.clone()),
                    current: None,
                    unit: base.unit.clone(),
                    tolerance: base.tolerance,
                    deviation: f64::INFINITY,
                    status: CompareStatus::Missing,
                },
                Some(cur) => {
                    let (deviation, ok) = match (&base.value, &cur.value) {
                        (MetricValue::Num(b), MetricValue::Num(c)) => {
                            let dev = relative_deviation(*b, *c);
                            (dev, dev <= base.tolerance + 1e-12)
                        }
                        (MetricValue::Text(b), MetricValue::Text(c)) => {
                            let same = b == c;
                            (if same { 0.0 } else { f64::INFINITY }, same)
                        }
                        _ => (f64::INFINITY, false),
                    };
                    CompareRow {
                        key: base.key.clone(),
                        baseline: Some(base.value.clone()),
                        current: Some(cur.value.clone()),
                        unit: base.unit.clone(),
                        tolerance: base.tolerance,
                        deviation,
                        status: if ok {
                            CompareStatus::Ok
                        } else {
                            CompareStatus::Regressed
                        },
                    }
                }
            };
            rows.push(row);
        }
        for cur in &current.metrics {
            if self.metric(&cur.key).is_none() {
                rows.push(CompareRow {
                    key: cur.key.clone(),
                    baseline: None,
                    current: Some(cur.value.clone()),
                    unit: cur.unit.clone(),
                    tolerance: 0.0,
                    deviation: 0.0,
                    status: CompareStatus::New,
                });
            }
        }
        CompareReport { rows }
    }
}

/// Outcome of comparing one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareStatus {
    /// Within the baseline's tolerance.
    Ok,
    /// Deviates beyond tolerance, changed text, or changed type.
    Regressed,
    /// Present in the baseline but absent from the current run.
    Missing,
    /// Only in the current run — informational, never a failure.
    New,
}

impl CompareStatus {
    /// Short uppercase tag for table output.
    pub const fn tag(self) -> &'static str {
        match self {
            CompareStatus::Ok => "ok",
            CompareStatus::Regressed => "REGRESSED",
            CompareStatus::Missing => "MISSING",
            CompareStatus::New => "new",
        }
    }
}

/// One metric's comparison outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareRow {
    /// The metric key.
    pub key: String,
    /// Baseline value (`None` for [`CompareStatus::New`]).
    pub baseline: Option<MetricValue>,
    /// Current value (`None` for [`CompareStatus::Missing`]).
    pub current: Option<MetricValue>,
    /// Display unit from the snapshot that defined the row.
    pub unit: String,
    /// The tolerance the check used (the baseline's).
    pub tolerance: f64,
    /// Measured relative deviation (∞ for missing/type-mismatched rows).
    pub deviation: f64,
    /// The verdict.
    pub status: CompareStatus,
}

/// Full result of a baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareReport {
    /// One row per baseline metric, then any new current-only metrics.
    pub rows: Vec<CompareRow>,
}

impl CompareReport {
    /// Number of rows that fail the check (regressed or missing).
    pub fn regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.status, CompareStatus::Regressed | CompareStatus::Missing))
            .count()
    }

    /// Whether every baseline metric is within tolerance.
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }

    /// Renders the comparison as an aligned plain-text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<40} {:>14} {:>14} {:>8} {:>8}  {}\n",
            "metric", "baseline", "current", "tol", "dev", "status"
        ));
        let fmt_opt = |v: &Option<MetricValue>| match v {
            Some(v) => v.to_string(),
            None => "-".to_string(),
        };
        for r in &self.rows {
            let dev = if r.deviation.is_finite() {
                format!("{:.4}", r.deviation)
            } else {
                "inf".to_string()
            };
            out.push_str(&format!(
                "  {:<40} {:>14} {:>14} {:>8} {:>8}  {}\n",
                r.key,
                fmt_opt(&r.baseline),
                fmt_opt(&r.current),
                format!("{:.4}", r.tolerance),
                dev,
                r.status.tag(),
            ));
        }
        out
    }
}

/// Relative deviation of `current` from `baseline`; absolute when the
/// baseline is zero (so `0 → 0` passes a zero tolerance and `0 → x`
/// fails it).
fn relative_deviation(baseline: f64, current: f64) -> f64 {
    let diff = (current - baseline).abs();
    if baseline == 0.0 {
        diff
    } else {
        diff / baseline.abs()
    }
}

/// Shortest-roundtrip float formatting, matching the tracer's JSON
/// writers: `{:?}` on f64, with non-finite values written as 0.
fn fmt_num(n: f64) -> String {
    if n.is_finite() {
        format!("{n:?}")
    } else {
        "0".to_string()
    }
}

/// JSON string escaping (quotes, backslash, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSnapshot {
        let mut s = BenchSnapshot::new();
        s.push_num("fig12.bs8.total_ms", 123.456, "ms", 0.02);
        s.push_num("counters.expert_misses", 150.0, "count", 0.0);
        s.push_text("attribution.switching.bound", "ddr-bandwidth-bound");
        s.push_info("sim_wall_clock_ms", "42");
        s
    }

    #[test]
    fn json_roundtrip_is_lossless_and_ordered() {
        let s = sample();
        let parsed = BenchSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(s, parsed);
        // Deterministic bytes: serialize → parse → serialize is a fixpoint.
        assert_eq!(s.to_json(), parsed.to_json());
        let keys: Vec<&str> = parsed.metrics.iter().map(|m| m.key.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "fig12.bs8.total_ms",
                "counters.expert_misses",
                "attribution.switching.bound"
            ]
        );
    }

    #[test]
    fn self_compare_is_clean() {
        let s = sample();
        let report = s.compare(&s);
        assert!(report.passed());
        assert!(report.rows.iter().all(|r| r.status == CompareStatus::Ok));
    }

    #[test]
    fn deviation_beyond_tolerance_regresses() {
        let base = sample();
        let mut cur = sample();
        // 5% off a 2%-tolerance metric.
        cur.metrics[0].value = MetricValue::Num(123.456 * 1.05);
        let report = base.compare(&cur);
        assert_eq!(report.regressions(), 1);
        assert_eq!(report.rows[0].status, CompareStatus::Regressed);
        // Within tolerance passes.
        cur.metrics[0].value = MetricValue::Num(123.456 * 1.01);
        assert!(base.compare(&cur).passed());
    }

    #[test]
    fn zero_tolerance_counters_must_match_exactly() {
        let base = sample();
        let mut cur = sample();
        cur.metrics[1].value = MetricValue::Num(151.0);
        assert_eq!(base.compare(&cur).regressions(), 1);
    }

    #[test]
    fn text_metrics_compare_exactly() {
        let base = sample();
        let mut cur = sample();
        cur.metrics[2].value = MetricValue::Text("hbm-bandwidth-bound".to_string());
        let report = base.compare(&cur);
        assert_eq!(report.regressions(), 1);
        assert!(report.render_table().contains("REGRESSED"));
    }

    #[test]
    fn missing_fails_and_new_does_not() {
        let base = sample();
        let mut cur = sample();
        cur.metrics.remove(1);
        cur.push_num("fig12.bs16.total_ms", 99.0, "ms", 0.02);
        let report = base.compare(&cur);
        assert_eq!(report.regressions(), 1);
        let missing = report
            .rows
            .iter()
            .find(|r| r.key == "counters.expert_misses")
            .unwrap();
        assert_eq!(missing.status, CompareStatus::Missing);
        let new = report
            .rows
            .iter()
            .find(|r| r.key == "fig12.bs16.total_ms")
            .unwrap();
        assert_eq!(new.status, CompareStatus::New);
    }

    #[test]
    fn info_is_recorded_but_never_compared() {
        let base = sample();
        let mut cur = sample();
        cur.info[0].1 = "9999".to_string();
        assert!(base.compare(&cur).passed());
        let parsed = BenchSnapshot::from_json(&cur.to_json()).unwrap();
        assert_eq!(
            parsed.info[0],
            ("sim_wall_clock_ms".to_string(), "9999".to_string())
        );
    }

    #[test]
    fn zero_baseline_uses_absolute_deviation() {
        let mut base = BenchSnapshot::new();
        base.push_num("recovery_s", 0.0, "s", 0.0);
        let mut cur = BenchSnapshot::new();
        cur.push_num("recovery_s", 0.0, "s", 0.0);
        assert!(base.compare(&cur).passed());
        cur.metrics[0].value = MetricValue::Num(0.5);
        assert!(!base.compare(&cur).passed());
    }

    #[test]
    fn rejects_wrong_schema_and_garbage() {
        assert!(BenchSnapshot::from_json("{}").is_err());
        assert!(BenchSnapshot::from_json("not json").is_err());
        let wrong = sample().to_json().replace(SCHEMA, "other-schema-v9");
        assert!(BenchSnapshot::from_json(&wrong).is_err());
    }

    #[test]
    fn escaping_survives_hostile_strings() {
        let mut s = BenchSnapshot::new();
        s.push_text("weird.\"key\"", "tab\there\nand \\slash");
        let parsed = BenchSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(s, parsed);
    }
}
