//! Multi-node CoE serving: scale a composition past one node's DDR.
//!
//! The paper deploys 150 experts on one SN40L node and shows a single node
//! holds up to 850; beyond that (or for throughput), a deployment shards
//! the expert library across nodes. Each expert lives on exactly one node
//! (its DDR home); requests are routed to the owning node, and nodes serve
//! their shares concurrently — batch latency is the busiest node's time.

use crate::expert::ExpertLibrary;
use crate::lanes::{ParMode, RouteTable};
use crate::router::{Prompt, Router};
use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, Calibration, NodeSpec, Orchestration, TimeSecs};
use sn_compiler::{Compiler, Executable, FusionPolicy};
use sn_faults::{FaultDecision, FaultPlan, FaultSite, RetryPolicy};
use sn_memsim::dma::{DmaEngine, Route};
use sn_models::{build, Phase};
use sn_profile::{BatchObservation, MachineProfile, SloConfig, SloSnapshot, SloTracker};
use sn_runtime::coe::{CoeError, CoeRuntime, CoeRuntimeConfig, ModelBinary};
use sn_runtime::executor::NodeExecutor;
use sn_trace::{ArgValue, Counter, MetricsReport, Tracer, Track};
use std::sync::Arc;

/// Result of one batch served by the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Wall time of the batch: the busiest node (nodes run concurrently).
    pub latency: TimeSecs,
    /// Per-node busy time (router + switching + execution).
    pub per_node: Vec<TimeSecs>,
    /// Prompts served per node.
    pub prompts_per_node: Vec<usize>,
    /// Total expert misses across nodes.
    pub expert_misses: usize,
    /// Nodes that were down while this batch was served.
    pub failed_nodes: Vec<usize>,
    /// Experts re-registered onto survivors because their home node
    /// failed (counted once per expert, at first failover).
    pub rehomed_experts: usize,
    /// Latency charged to survivors for re-homing expert weights over
    /// DDR (part of `per_node` / `latency` already; broken out here).
    pub failover_penalty: TimeSecs,
    /// Retry and backoff time absorbed by injected expert-load faults on
    /// the serving nodes (also already inside `latency`).
    pub recovery: TimeSecs,
    /// Prompts no survivor could serve (DDR exhausted or persistent load
    /// faults) — the availability loss of the batch.
    pub dropped_prompts: usize,
    /// Aggregated trace metrics, present when a [`Tracer`] was attached
    /// via [`CoeCluster::with_tracer`]; `None` on untraced runs.
    pub metrics: Option<MetricsReport>,
    /// Sliding-window serving SLO snapshot over whole-cluster capacity,
    /// present when a tracker was attached via [`CoeCluster::with_slo`];
    /// `None` otherwise.
    pub slo: Option<SloSnapshot>,
}

impl ClusterReport {
    /// Load imbalance: busiest node time over the mean time of nodes that
    /// actually served prompts (1.0 is perfectly balanced).
    ///
    /// Failed nodes and legitimately idle nodes (no prompts routed to
    /// them) are both excluded from the mean: an idle node is not
    /// imbalance among the working set, and a dead node's zero busy time
    /// would drag the mean down and overstate imbalance. Returns 1.0 when
    /// nothing was served at all.
    pub fn imbalance(&self) -> f64 {
        let busy: Vec<f64> = self
            .per_node
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.prompts_per_node[i] > 0 && !self.failed_nodes.contains(&i))
            .map(|(_, t)| t.as_secs())
            .collect();
        if busy.is_empty() {
            return 1.0;
        }
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        self.latency.as_secs() / mean
    }

    /// Fraction of prompts that completed (1.0 when nothing dropped).
    pub fn availability(&self) -> f64 {
        let served: usize = self.prompts_per_node.iter().sum();
        let offered = served + self.dropped_prompts;
        if offered == 0 {
            1.0
        } else {
            served as f64 / offered as f64
        }
    }
}

/// One request's slice of a serving wave (see [`CoeCluster::serve_wave`]).
#[derive(Debug, Clone)]
pub struct WaveSlot {
    /// The prompt to route (its expert decides the serving node).
    pub prompt: Prompt,
    /// True when this is the request's first chunk: the wave charges its
    /// prefill. Continuing chunks decode against the cached context.
    pub prefill: bool,
}

/// Where one wave slot ended up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WavePlacement {
    /// The slot executed on `node`; offsets are from the wave start.
    Served {
        /// Serving node index.
        node: usize,
        /// Offset at which the slot's first token lands (end of its
        /// prefill; for a continuing chunk this is its slot start).
        first_token: TimeSecs,
        /// Offset at which the slot's chunk finishes.
        done: TimeSecs,
    },
    /// No survivor could host the slot's expert (DDR exhausted or the
    /// weights never loaded intact): capacity loss, not a silent drop.
    Dropped,
}

/// Result of one wave served by [`CoeCluster::serve_wave`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveOutcome {
    /// Wall time of the wave: the busiest node.
    pub latency: TimeSecs,
    /// Per-node busy time.
    pub per_node: Vec<TimeSecs>,
    /// Slots served per node.
    pub prompts_per_node: Vec<usize>,
    /// Outcome per input slot, index-aligned.
    pub placements: Vec<WavePlacement>,
    /// Cold expert activations in this wave.
    pub expert_misses: usize,
    /// Warm expert activations in this wave (already HBM-resident).
    pub expert_hits: usize,
    /// DDR→HBM switch time charged inside `latency` for this wave's
    /// cold activations, summed across nodes.
    pub switch_time: TimeSecs,
    /// Experts re-homed onto survivors during this wave.
    pub rehomed_experts: usize,
    /// Re-homing transfer time charged inside `latency`.
    pub failover_penalty: TimeSecs,
    /// Retry/backoff time absorbed by injected faults inside `latency`.
    pub recovery: TimeSecs,
    /// Nodes down while the wave was served.
    pub failed_nodes: Vec<usize>,
}

/// Result of a topology change ([`CoeCluster::drain_node`] or
/// [`CoeCluster::rebalance_experts`]): how many experts moved and the
/// DDR transfer time the moves cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebalanceReport {
    /// Experts whose DDR home changed (weights copied to the new home).
    pub moved_experts: usize,
    /// Experts that could not move (every candidate's DDR was full) and
    /// stayed behind; zero outside pathological capacity squeezes.
    pub stranded_experts: usize,
    /// Total weight-transfer time for the moves, in model time.
    pub transfer_time: TimeSecs,
}

/// A CoE deployment sharded across several SN40L nodes.
#[derive(Debug)]
pub struct CoeCluster {
    library: ExpertLibrary,
    router: Router,
    runtimes: Vec<CoeRuntime>,
    executor: NodeExecutor,
    prefill_exe: Executable,
    decode_exe: Executable,
    router_steps: f64,
    /// Current DDR home of each expert; starts round-robin and moves to a
    /// survivor when the home node fails.
    homes: Vec<usize>,
    /// Extra nodes holding a DDR replica of each expert's weights,
    /// created by stats-driven placement (PR 7). Empty (the reactive
    /// single-home deployment) until [`CoeCluster::apply_placement`]
    /// replicates something — the serving arithmetic is then
    /// bit-identical to the pre-placement path.
    replicas: Vec<Vec<usize>>,
    /// Experts staged into HBM speculatively and not yet claimed by a
    /// demand activation; unclaimed entries expire (as wasted bytes) at
    /// the next prefetch boundary.
    prefetched: std::collections::BTreeSet<usize>,
    /// Running totals for the prefetch policy loop.
    prefetch_hits: u64,
    prefetch_wasted: Bytes,
    /// DMA model that charges prefetch and replication traffic at real
    /// DDR→HBM bandwidth (rides the memsim ledger and counters).
    dma: DmaEngine,
    /// Nodes currently down (forced via [`CoeCluster::fail_node`] or drawn
    /// from the fault plan).
    failed: Vec<bool>,
    faults: Option<Arc<FaultPlan>>,
    retry: RetryPolicy,
    tracer: Tracer,
    slo: Option<SloTracker>,
    /// Intra-run execution mode (PR 9): [`ParMode::Sequential`] keeps
    /// the legacy single-threaded wave loop; [`ParMode::Threads`] runs
    /// per-node lanes on a persistent worker pool, byte-identically.
    par: ParMode,
    /// Memoized routing decisions, built lazily on the first laned wave
    /// (`None` in sequential mode, where the live router runs instead).
    route_table: Option<RouteTable>,
    /// Persistent blocked worker threads for the lane engine; spawned
    /// lazily so sequential clusters never start a thread.
    lanes: Option<crossbeam::pool::Pool>,
}

impl CoeCluster {
    /// Builds a cluster of `nodes` SN40L nodes and registers the library
    /// round-robin across them.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`CoeError`] when a node's DDR cannot hold
    /// its shard (the cluster is undersized).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(
        node: NodeSpec,
        nodes: usize,
        library: ExpertLibrary,
        prompt_tokens: usize,
    ) -> Result<Self, CoeError> {
        assert!(nodes >= 1, "a cluster needs at least one node");
        let calib = Calibration::baseline();
        let compiler = Compiler::new(node.socket.clone(), calib.clone());
        let cfg = library.config().clone();
        let prefill_graph =
            build(&cfg, Phase::Prefill { prompt_tokens }, 1, node.sockets).expect("prefill builds");
        let decode_graph = build(
            &cfg,
            Phase::Decode {
                past_tokens: prompt_tokens,
            },
            1,
            node.sockets,
        )
        .expect("decode builds");
        let prefill_exe = compiler
            .compile(&prefill_graph, FusionPolicy::Spatial)
            .expect("prefill compiles");
        let decode_exe = compiler
            .compile(&decode_graph, FusionPolicy::Spatial)
            .expect("decode compiles");
        let mut runtimes: Vec<CoeRuntime> = (0..nodes)
            .map(|_| CoeRuntime::new(&node, CoeRuntimeConfig::default()))
            .collect();
        for (i, e) in library.experts().iter().enumerate() {
            runtimes[i % nodes].register(ModelBinary::weights_only(
                e.name.clone(),
                library.expert_bytes(),
            ))?;
        }
        let dma = DmaEngine::new(&node.socket);
        let n_experts = library.len();
        let executor = NodeExecutor::new(node, calib.clone());
        let homes = (0..library.len()).map(|e| e % nodes).collect();
        Ok(CoeCluster {
            library,
            router: Router::new(0xc1a5fe2),
            runtimes,
            executor,
            prefill_exe,
            decode_exe,
            router_steps: calib.router_equiv_decode_steps,
            homes,
            replicas: vec![Vec::new(); n_experts],
            prefetched: std::collections::BTreeSet::new(),
            prefetch_hits: 0,
            prefetch_wasted: Bytes::ZERO,
            dma,
            failed: vec![false; nodes],
            faults: None,
            retry: RetryPolicy::standard(),
            tracer: Tracer::disabled(),
            slo: None,
            par: ParMode::Sequential,
            route_table: None,
            lanes: None,
        })
    }

    /// Selects the intra-run execution mode: `jobs <= 1` keeps the
    /// legacy sequential wave loop (the differential reference path);
    /// `jobs > 1` fans per-node wave lanes across that many persistent
    /// worker threads with a conservative barrier at wave boundaries.
    /// Every report, trace counter, and export is byte-identical for
    /// any value — enforced by `crates/bench/tests/intra_diff.rs`.
    #[must_use]
    pub fn with_intra_jobs(mut self, jobs: usize) -> Self {
        self.par = ParMode::from_jobs(jobs);
        // Lazily rebuilt for the new mode on the next wave.
        self.route_table = None;
        self.lanes = None;
        self
    }

    /// The configured intra-run worker count (1 in sequential mode).
    pub fn intra_jobs(&self) -> usize {
        self.par.jobs()
    }

    /// Attaches a fault plan and retry budget: every node's runtime then
    /// consults the plan on expert loads, and
    /// [`CoeCluster::try_serve_batch`] draws per-batch node failures at
    /// [`FaultSite::NodeFailure`].
    pub fn with_faults(mut self, plan: Arc<FaultPlan>, retry: RetryPolicy) -> Self {
        self.runtimes = self
            .runtimes
            .into_iter()
            .map(|rt| rt.with_faults(Arc::clone(&plan), retry))
            .collect();
        self.faults = Some(plan);
        self.retry = retry;
        self
    }

    /// Attaches a [`Tracer`] shared by every node's [`CoeRuntime`] (expert
    /// hit/switch events) and the [`NodeExecutor`] (kernel-launch spans).
    /// Batches then emit one concurrent span per busy node on
    /// [`Track::Cluster`] (tid = node index) and every [`ClusterReport`]
    /// carries an aggregated [`MetricsReport`]. Timing arithmetic is
    /// unchanged: traces are recorded after the fact.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.runtimes = self
            .runtimes
            .into_iter()
            .map(|rt| rt.with_tracer(tracer.clone()))
            .collect();
        self.executor = self.executor.with_tracer(tracer.clone());
        self.dma = self.dma.with_tracer(tracer.clone());
        self.tracer = tracer;
        self
    }

    /// Attaches a serving-SLO tracker measuring against whole-cluster
    /// capacity (the node profile scaled by node count): every serve call
    /// then feeds the batch into a sliding window and stamps the refreshed
    /// [`SloSnapshot`] onto its [`ClusterReport`]. Pure bookkeeping over
    /// already-computed timings.
    #[must_use]
    pub fn with_slo(mut self, config: SloConfig) -> Self {
        let nodes = self.runtimes.len() as f64;
        self.slo = Some(SloTracker::new(
            MachineProfile::from_node(self.executor.node()).scale(nodes),
            config,
        ));
        self
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.runtimes.len()
    }

    /// The node currently owning an expert (round-robin until failover
    /// re-homes it).
    pub fn owner(&self, expert: usize) -> usize {
        self.homes[expert]
    }

    /// Replica nodes (beyond the home) currently holding an expert's
    /// weights in DDR.
    pub fn replica_nodes(&self, expert: usize) -> &[usize] {
        &self.replicas[expert]
    }

    /// The expert a prompt routes to (the router is pure, so observing a
    /// route does not change any serving outcome).
    pub fn routed_expert(&self, prompt: &Prompt) -> usize {
        self.router.route(prompt, self.library.len())
    }

    /// [`CoeCluster::routed_expert`] through the memoized route table
    /// when the lane engine has built one (bit-identical by
    /// construction: every table entry came from the live router). In
    /// sequential mode the table is never built and this *is* the live
    /// route call.
    pub(crate) fn routed_expert_cached(&self, prompt: &Prompt) -> usize {
        match &self.route_table {
            Some(table) => table.route(prompt),
            None => self.routed_expert(prompt),
        }
    }

    /// Builds the route table and worker pool the lane engine needs, if
    /// missing or stale (after [`CoeCluster::with_intra_jobs`] changed
    /// the mode). Lazy so sequential clusters pay nothing.
    fn ensure_lane_engine(&mut self, jobs: usize) {
        if self
            .route_table
            .as_ref()
            .is_none_or(|t| t.n_experts() != self.library.len())
        {
            self.route_table = Some(RouteTable::build(&self.router, self.library.len()));
        }
        if self.lanes.as_ref().is_none_or(|p| p.workers() != jobs) {
            self.lanes = Some(crossbeam::pool::Pool::new(jobs));
        }
    }

    /// Number of experts in the deployed library.
    pub fn n_experts(&self) -> usize {
        self.library.len()
    }

    /// Bytes of one expert's weights.
    pub fn expert_bytes(&self) -> Bytes {
        self.library.expert_bytes()
    }

    /// Picks the healthy node to serve an expert: the home when no
    /// replicas exist (the exact pre-placement arithmetic), otherwise
    /// the least-loaded healthy holder (ties to the lowest index).
    /// `None` when neither the home nor any replica is healthy.
    fn serving_node(&self, expert: usize, loads: &[usize]) -> Option<usize> {
        let home = self.homes[expert];
        if self.replicas[expert].is_empty() {
            return (!self.failed[home]).then_some(home);
        }
        let mut holders: Vec<usize> = std::iter::once(home)
            .chain(self.replicas[expert].iter().copied())
            .filter(|&n| !self.failed[n])
            .collect();
        holders.sort_unstable();
        holders.dedup();
        // Prefer a holder whose HBM is already warm: bouncing a
        // replicated expert between holders on load ties would re-pay
        // the switch on every bounce. Residency is a pure query, so
        // this cannot perturb LRU state.
        let name = &self.library.expert(expert).name;
        holders
            .into_iter()
            .min_by_key(|&n| (!self.runtimes[n].is_resident(name), loads[n], n))
    }

    /// Forces a node down: its prompts re-route to survivors on the next
    /// [`CoeCluster::try_serve_batch`].
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node index.
    pub fn fail_node(&mut self, node: usize) {
        self.failed[node] = true;
    }

    /// Brings a failed node back (already re-homed experts stay on their
    /// survivors; the restored node serves what still lives on it).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node index.
    pub fn restore_node(&mut self, node: usize) {
        self.failed[node] = false;
    }

    /// Indices of currently failed nodes.
    pub fn failed_nodes(&self) -> Vec<usize> {
        self.failed
            .iter()
            .enumerate()
            .filter(|&(_, &down)| down)
            .map(|(i, _)| i)
            .collect()
    }

    fn router_time(&self) -> TimeSecs {
        let prefill = self
            .executor
            .run(&self.prefill_exe, Orchestration::Hardware)
            .total;
        let step = self
            .executor
            .run(&self.decode_exe, Orchestration::Hardware)
            .total;
        prefill + step * self.router_steps
    }

    /// Unit timings for one model run: (prefill, `output_tokens`-step
    /// decode loop).
    fn unit_run_times(&self, output_tokens: usize) -> (TimeSecs, TimeSecs) {
        let prefill = self
            .executor
            .run(&self.prefill_exe, Orchestration::Hardware)
            .total;
        let decode = self
            .executor
            .run_decode_loop(
                &self.decode_exe,
                Orchestration::Hardware,
                output_tokens.max(1),
            )
            .total;
        (prefill, decode)
    }

    /// Feeds one served batch into the SLO tracker (when attached) and
    /// stamps the report with the refreshed window snapshot. TTFT is the
    /// router pass plus one prefill (the first prompt on a warm node);
    /// tier traffic counts model runs on every busy node plus DDR
    /// movement from cold switches and failover re-homing. Runs after all
    /// timing arithmetic; a no-op without a tracker.
    fn observe_slo(
        &mut self,
        report: &mut ClusterReport,
        router: TimeSecs,
        prefill_unit: TimeSecs,
        output_tokens: usize,
    ) {
        if self.slo.is_none() {
            return;
        }
        let steps = output_tokens.max(1) as f64;
        let served: usize = report.prompts_per_node.iter().sum();
        let busy = report.prompts_per_node.iter().filter(|&&n| n > 0).count() as f64;
        let run_traffic =
            self.prefill_exe.total_traffic() + self.decode_exe.total_traffic().scale(steps);
        let router_traffic = self.prefill_exe.total_traffic()
            + self.decode_exe.total_traffic().scale(self.router_steps);
        let hbm_bytes = run_traffic.scale(served as f64) + router_traffic.scale(busy);
        let moved_experts = report.expert_misses + report.rehomed_experts;
        let ddr_bytes: Bytes = self.library.expert_bytes().scale(moved_experts as f64);
        let tracker = self.slo.as_mut().expect("checked above");
        tracker.record(BatchObservation {
            latency: report.latency,
            ttft: router + prefill_unit,
            prompts: served,
            tokens: served * output_tokens,
            hbm_bytes,
            ddr_bytes,
        });
        report.slo = tracker.snapshot();
    }

    /// Records the cluster-level view of a batch: one span per busy node
    /// on [`Track::Cluster`] (tid = node index), all starting at the track
    /// cursor since nodes run concurrently, with the cursor advanced past
    /// the busiest node. Runs after the timing arithmetic so traced and
    /// untraced results stay identical.
    fn trace_cluster_batch(
        &self,
        label: &str,
        prompts: usize,
        per_node: &[TimeSecs],
        per_node_prompts: &[usize],
        latency: TimeSecs,
    ) {
        if !self.tracer.is_enabled() {
            return;
        }
        let served: usize = per_node_prompts.iter().sum();
        self.tracer.count(Counter::RouterDecisions, prompts as u64);
        self.tracer.count(Counter::PromptsServed, served as u64);
        let start_us = self.tracer.cursor_us(Track::Cluster);
        let start = TimeSecs::from_micros(start_us);
        for (i, (&busy, &n)) in per_node.iter().zip(per_node_prompts).enumerate() {
            if n == 0 {
                continue;
            }
            self.tracer.span_at(
                Track::Cluster,
                i as u32,
                format!("node{i}:{label}"),
                start,
                busy,
                &[("prompts", ArgValue::from(n))],
            );
        }
        self.tracer
            .advance_cursor_us(Track::Cluster, start_us + latency.as_micros());
    }

    /// Serves a batch: the router runs once (replicated on every node);
    /// prompts then fan out to their experts' home nodes, which execute
    /// concurrently.
    pub fn serve_batch(&mut self, prompts: &[Prompt], output_tokens: usize) -> ClusterReport {
        assert!(!prompts.is_empty(), "empty batch");
        let nodes = self.runtimes.len();
        let n_experts = self.library.len();
        let mut per_node_prompts = vec![0usize; nodes];
        let mut per_node_switch = vec![TimeSecs::ZERO; nodes];
        let mut misses = 0;
        // Each expert serves on one node per batch: its home, or (with
        // placement replicas) the least-loaded healthy holder, pinned at
        // first activation so later prompts reuse the warmed node.
        // Indexed by expert — a dense memo has no iteration order for
        // lane-partitioned execution to observe differently (the old
        // HashMap was lookup-only, but the audit converts it anyway).
        let mut chosen: Vec<Option<usize>> = vec![None; n_experts];
        for p in prompts {
            let e = self.router.route(p, n_experts);
            let owner = match chosen[e] {
                Some(n) => n,
                None => {
                    let n = self
                        .serving_node(e, &per_node_prompts)
                        .unwrap_or_else(|| self.owner(e));
                    let name = self.library.expert(e).name.as_str();
                    let outcome = self.runtimes[n]
                        .activate(name)
                        .expect("expert registered on serving node");
                    if !outcome.hit {
                        misses += 1;
                    }
                    self.claim_prefetch(e, outcome.hit);
                    per_node_switch[n] += outcome.switch_time;
                    chosen[e] = Some(n);
                    n
                }
            };
            per_node_prompts[owner] += 1;
        }
        let router = self.router_time();
        let (prefill_unit, decode_unit) = self.unit_run_times(output_tokens);
        let run = prefill_unit + decode_unit;
        let per_node: Vec<TimeSecs> = (0..nodes)
            .map(|i| {
                if per_node_prompts[i] == 0 {
                    TimeSecs::ZERO
                } else {
                    router + per_node_switch[i] + run * per_node_prompts[i] as f64
                }
            })
            .collect();
        let latency = per_node.iter().copied().fold(TimeSecs::ZERO, TimeSecs::max);
        self.trace_cluster_batch(
            "batch",
            prompts.len(),
            &per_node,
            &per_node_prompts,
            latency,
        );
        let mut report = ClusterReport {
            latency,
            per_node,
            prompts_per_node: per_node_prompts,
            expert_misses: misses,
            failed_nodes: Vec::new(),
            rehomed_experts: 0,
            failover_penalty: TimeSecs::ZERO,
            recovery: TimeSecs::ZERO,
            dropped_prompts: 0,
            metrics: self.tracer.metrics_opt(),
            slo: None,
        };
        self.observe_slo(&mut report, router, prefill_unit, output_tokens);
        report
    }

    /// Picks the survivor to adopt a re-homed expert: the healthy node
    /// with the fewest prompts assigned so far (ties to the lowest
    /// index), skipping nodes whose DDR is already full.
    fn adopt_expert(
        &mut self,
        expert: usize,
        loads: &[usize],
    ) -> Result<Option<(usize, bool)>, CoeError> {
        let name = self.library.expert(expert).name.clone();
        let bytes = self.library.expert_bytes();
        let mut survivors: Vec<usize> = (0..self.runtimes.len())
            .filter(|&i| !self.failed[i])
            .collect();
        survivors.sort_by_key(|&i| (loads[i], i));
        for s in survivors {
            match self.runtimes[s].register(ModelBinary::weights_only(name.clone(), bytes)) {
                Ok(()) => {
                    self.homes[expert] = s;
                    return Ok(Some((s, true)));
                }
                // Already adopted by this survivor in an earlier batch —
                // the weights are there, no new transfer needed.
                Err(CoeError::Duplicate(_)) => {
                    self.homes[expert] = s;
                    return Ok(Some((s, false)));
                }
                Err(CoeError::DdrFull(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Degraded-mode serving: like [`CoeCluster::serve_batch`], but nodes
    /// can be down — forced via [`CoeCluster::fail_node`] or drawn from
    /// the attached fault plan at [`FaultSite::NodeFailure`] (one draw per
    /// healthy node per batch; a `Fail` crashes the node persistently).
    ///
    /// Prompts routed to a dead node fail over: the expert re-homes onto
    /// the least-loaded survivor (a DDR registration plus a weight
    /// transfer charged to that survivor and to `failover_penalty`), and
    /// the prompt executes there. Prompts nobody can adopt (survivor DDR
    /// exhausted) or whose expert never loads intact are dropped and
    /// counted in `dropped_prompts`. Expert-load faults on survivors are
    /// retried through each runtime's policy, with retry time in
    /// `recovery`.
    ///
    /// With no plan attached and no failed nodes this delegates to
    /// [`CoeCluster::serve_batch`] — reports come out bit-identical.
    ///
    /// # Errors
    ///
    /// [`CoeError::NoHealthyNodes`] when every node is down.
    pub fn try_serve_batch(
        &mut self,
        prompts: &[Prompt],
        output_tokens: usize,
    ) -> Result<ClusterReport, CoeError> {
        assert!(!prompts.is_empty(), "empty batch");
        if let Some(plan) = self.faults.clone() {
            // Per-batch crash draws for nodes still standing.
            for i in 0..self.runtimes.len() {
                if !self.failed[i]
                    && matches!(plan.decide(FaultSite::NodeFailure), FaultDecision::Fail)
                {
                    self.failed[i] = true;
                }
            }
        }
        let zero_plan = self.faults.as_ref().map(|p| p.is_zero()).unwrap_or(true);
        if zero_plan && !self.failed.iter().any(|&down| down) {
            // Nothing can inject and nothing is down: take the exact
            // fault-free arithmetic path so reports stay bit-identical.
            return Ok(self.serve_batch(prompts, output_tokens));
        }
        self.serve_batch_degraded(prompts, output_tokens)
    }

    /// The failover serving path; assumes at least one fault source is
    /// live (failed nodes or a nonzero plan).
    fn serve_batch_degraded(
        &mut self,
        prompts: &[Prompt],
        output_tokens: usize,
    ) -> Result<ClusterReport, CoeError> {
        let nodes = self.runtimes.len();
        let n_experts = self.library.len();
        if self.failed.iter().all(|&down| down) {
            return Err(CoeError::NoHealthyNodes);
        }
        let rehome_time =
            self.library.expert_bytes() / self.executor.node().model_switch_bandwidth();
        let mut per_node_prompts = vec![0usize; nodes];
        let mut per_node_switch = vec![TimeSecs::ZERO; nodes];
        let mut per_node_recovery = vec![TimeSecs::ZERO; nodes];
        let mut per_node_penalty = vec![TimeSecs::ZERO; nodes];
        let mut misses = 0;
        let mut hits = 0;
        let mut rehomed = 0;
        let mut dropped = 0;
        // Expert -> node it is serving on this batch (`Some(None)` when
        // its load is irrecoverably faulted / nobody could adopt it).
        // Dense per-expert memo: no iteration order to depend on.
        let mut placed: Vec<Option<Option<usize>>> = vec![None; n_experts];
        for p in prompts {
            let e = self.router.route(p, n_experts);
            let target = match placed[e] {
                Some(t) => t,
                None => {
                    let t = self.place_expert(
                        e,
                        &per_node_prompts,
                        rehome_time,
                        &mut per_node_switch,
                        &mut per_node_recovery,
                        &mut per_node_penalty,
                        &mut misses,
                        &mut hits,
                        &mut rehomed,
                    )?;
                    placed[e] = Some(t);
                    t
                }
            };
            match target {
                Some(node) => per_node_prompts[node] += 1,
                None => dropped += 1,
            }
        }
        let router = self.router_time();
        let (prefill_unit, decode_unit) = self.unit_run_times(output_tokens);
        let run = prefill_unit + decode_unit;
        let per_node: Vec<TimeSecs> = (0..nodes)
            .map(|i| {
                if per_node_prompts[i] == 0 {
                    TimeSecs::ZERO
                } else {
                    router
                        + per_node_switch[i]
                        + run * per_node_prompts[i] as f64
                        + per_node_recovery[i]
                        + per_node_penalty[i]
                }
            })
            .collect();
        let latency = per_node.iter().copied().fold(TimeSecs::ZERO, TimeSecs::max);
        if self.tracer.is_enabled() {
            self.tracer.count(Counter::ExpertsRehomed, rehomed as u64);
            self.tracer.count(Counter::PromptsDropped, dropped as u64);
            for i in self.failed_nodes() {
                self.tracer
                    .instant(Track::Cluster, format!("node{i}:down"), &[]);
            }
        }
        self.trace_cluster_batch(
            "degraded",
            prompts.len(),
            &per_node,
            &per_node_prompts,
            latency,
        );
        let mut report = ClusterReport {
            latency,
            per_node,
            prompts_per_node: per_node_prompts,
            expert_misses: misses,
            failed_nodes: self.failed_nodes(),
            rehomed_experts: rehomed,
            failover_penalty: per_node_penalty.iter().copied().sum(),
            recovery: per_node_recovery.iter().copied().sum(),
            dropped_prompts: dropped,
            metrics: self.tracer.metrics_opt(),
            slo: None,
        };
        self.observe_slo(&mut report, router, prefill_unit, output_tokens);
        Ok(report)
    }

    /// Finds (re-homing if needed) and activates `expert` for this batch,
    /// charging switch, recovery, and failover costs to the serving node.
    /// Returns the serving node, or `None` when the prompt set for this
    /// expert must drop.
    ///
    /// With placement replicas, a healthy replica both spreads load (the
    /// least-loaded healthy holder serves) and makes failover free: a
    /// dead home whose weights already live on a healthy replica skips
    /// the adoption transfer entirely.
    #[allow(clippy::too_many_arguments)]
    fn place_expert(
        &mut self,
        expert: usize,
        loads: &[usize],
        rehome_time: TimeSecs,
        per_node_switch: &mut [TimeSecs],
        per_node_recovery: &mut [TimeSecs],
        per_node_penalty: &mut [TimeSecs],
        misses: &mut usize,
        hits: &mut usize,
        rehomed: &mut usize,
    ) -> Result<Option<usize>, CoeError> {
        let serving = match self.serving_node(expert, loads) {
            Some(node) => node,
            // Neither the home nor any replica is healthy: classic
            // adoption onto a survivor, with the re-homing transfer.
            None => match self.adopt_expert(expert, loads)? {
                Some((survivor, newly_homed)) => {
                    if newly_homed {
                        *rehomed += 1;
                        per_node_penalty[survivor] += rehome_time;
                    }
                    survivor
                }
                None => return Ok(None),
            },
        };
        let name = self.library.expert(expert).name.as_str();
        match self.runtimes[serving].activate_with_recovery(name) {
            Ok((outcome, recovery)) => {
                if outcome.hit {
                    *hits += 1;
                } else {
                    *misses += 1;
                }
                self.claim_prefetch(expert, outcome.hit);
                per_node_switch[serving] += outcome.switch_time;
                per_node_recovery[serving] += recovery.time;
                Ok(Some(serving))
            }
            // The expert never loaded intact: every prompt routed to it
            // this batch drops (the weights in DDR are suspect).
            Err(CoeError::LoadFault { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Settles a prefetched expert against its demand outcome: a hit
    /// means the speculation paid off; a miss means the staged weights
    /// left HBM before the router arrived and the transfer was wasted.
    /// A no-op while the prefetch set is empty, so runs without a
    /// prefetch policy are untouched.
    fn claim_prefetch(&mut self, expert: usize, hit: bool) {
        if !self.prefetched.remove(&expert) {
            return;
        }
        if hit {
            self.prefetch_hits += 1;
            if self.tracer.is_enabled() {
                self.tracer.count(Counter::PrefetchHits, 1);
            }
        } else {
            let bytes = self.library.expert_bytes();
            self.prefetch_wasted += bytes;
            if self.tracer.is_enabled() {
                self.tracer
                    .count(Counter::PrefetchWastedBytes, bytes.as_u64());
            }
        }
    }

    /// The node specification every cluster node shares.
    pub fn node_spec(&self) -> &NodeSpec {
        self.executor.node()
    }

    /// The tracer shared by the cluster (disabled unless attached via
    /// [`CoeCluster::with_tracer`]); lets same-crate serving layers emit
    /// counters into the same stream.
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Number of healthy (not failed) nodes.
    pub fn healthy_nodes(&self) -> usize {
        self.failed.iter().filter(|&&down| !down).count()
    }

    /// Per-node expert counts by current DDR home (including homes on
    /// failed nodes — those experts re-home reactively when served).
    pub fn expert_homes(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.runtimes.len()];
        for &h in &self.homes {
            counts[h] += 1;
        }
        counts
    }

    /// Weight-transfer time for moving one expert's DDR image between
    /// nodes — the unit cost of re-homing and rebalancing.
    fn rehome_time(&self) -> TimeSecs {
        self.library.expert_bytes() / self.executor.node().model_switch_bandwidth()
    }

    /// Grows the cluster by one empty node (same spec as the rest, with
    /// the cluster's fault plan and tracer attached) and returns its
    /// index. The new node owns no experts until
    /// [`CoeCluster::rebalance_experts`] moves some over — capacity
    /// without placement serves nothing.
    pub fn add_node(&mut self) -> usize {
        let spec = self.executor.node().clone();
        let mut rt = CoeRuntime::new(&spec, CoeRuntimeConfig::default());
        if let Some(plan) = &self.faults {
            rt = rt.with_faults(Arc::clone(plan), self.retry);
        }
        if self.tracer.is_enabled() {
            rt = rt.with_tracer(self.tracer.clone());
        }
        self.runtimes.push(rt);
        self.failed.push(false);
        self.runtimes.len() - 1
    }

    /// Evens out expert placement across healthy nodes: experts move,
    /// one at a time in ascending index order, from the most-loaded home
    /// to the least-loaded healthy node until no move closes a gap of
    /// two or more. Each move charges one DDR weight transfer. Experts
    /// homed on failed nodes are left for reactive failover.
    pub fn rebalance_experts(&mut self) -> RebalanceReport {
        let rehome_time = self.rehome_time();
        let mut counts = self.expert_homes();
        let mut report = RebalanceReport {
            moved_experts: 0,
            stranded_experts: 0,
            transfer_time: TimeSecs::ZERO,
        };
        for e in 0..self.homes.len() {
            let h = self.homes[e];
            if self.failed[h] {
                continue;
            }
            // The least-loaded healthy destination this move would still
            // improve on (ties to the lowest index).
            let dest = (0..self.runtimes.len())
                .filter(|&d| d != h && !self.failed[d] && counts[d] + 2 <= counts[h])
                .min_by_key(|&d| (counts[d], d));
            let Some(dest) = dest else { continue };
            let name = self.library.expert(e).name.clone();
            let bytes = self.library.expert_bytes();
            match self.runtimes[dest].register(ModelBinary::weights_only(name, bytes)) {
                Ok(()) => {
                    self.homes[e] = dest;
                    counts[h] -= 1;
                    counts[dest] += 1;
                    report.moved_experts += 1;
                    report.transfer_time += rehome_time;
                }
                // The destination already holds the weights from an
                // earlier adoption: the move is free.
                Err(CoeError::Duplicate(_)) => {
                    self.homes[e] = dest;
                    counts[h] -= 1;
                    counts[dest] += 1;
                    report.moved_experts += 1;
                }
                Err(CoeError::DdrFull(_)) => continue,
                Err(_) => continue,
            }
        }
        report
    }

    /// Proactively drains a node for scale-down: every expert homed on
    /// it moves to the least-loaded other healthy node first (a planned
    /// DDR transfer each, unlike crash failover there is no serving-path
    /// penalty), then the node is taken out of service. Restore it later
    /// with [`CoeCluster::restore_node`] — it keeps whatever weights its
    /// DDR already held.
    ///
    /// # Errors
    ///
    /// [`CoeError::NoHealthyNodes`] when no *other* healthy node exists
    /// to take the experts — a cluster cannot drain its last node.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node index.
    pub fn drain_node(&mut self, node: usize) -> Result<RebalanceReport, CoeError> {
        assert!(node < self.runtimes.len(), "no such node");
        if !(0..self.runtimes.len()).any(|i| i != node && !self.failed[i]) {
            return Err(CoeError::NoHealthyNodes);
        }
        let rehome_time = self.rehome_time();
        let mut counts = self.expert_homes();
        let mut report = RebalanceReport {
            moved_experts: 0,
            stranded_experts: 0,
            transfer_time: TimeSecs::ZERO,
        };
        for e in 0..self.homes.len() {
            if self.homes[e] != node {
                continue;
            }
            let name = self.library.expert(e).name.clone();
            let bytes = self.library.expert_bytes();
            let mut candidates: Vec<usize> = (0..self.runtimes.len())
                .filter(|&i| i != node && !self.failed[i])
                .collect();
            candidates.sort_by_key(|&i| (counts[i], i));
            let mut placed = false;
            for dest in candidates {
                match self.runtimes[dest].register(ModelBinary::weights_only(name.clone(), bytes)) {
                    Ok(()) => {
                        self.homes[e] = dest;
                        counts[node] -= 1;
                        counts[dest] += 1;
                        report.moved_experts += 1;
                        report.transfer_time += rehome_time;
                        placed = true;
                        break;
                    }
                    Err(CoeError::Duplicate(_)) => {
                        self.homes[e] = dest;
                        counts[node] -= 1;
                        counts[dest] += 1;
                        report.moved_experts += 1;
                        placed = true;
                        break;
                    }
                    Err(CoeError::DdrFull(_)) => continue,
                    Err(err) => return Err(err),
                }
            }
            if !placed {
                report.stranded_experts += 1;
            }
        }
        self.failed[node] = true;
        Ok(report)
    }

    /// Serves one wave of a continuous-batching engine: each slot is one
    /// request's chunk (prefill + `wave_tokens` decode steps for a first
    /// chunk, decode only for a continuing chunk). Routing, failover,
    /// and fault handling follow [`CoeCluster::try_serve_batch`] — a
    /// per-wave [`FaultSite::NodeFailure`] draw per healthy node, dead
    /// homes re-homed onto survivors, unplaceable slots reported as
    /// [`WavePlacement::Dropped`]. Unlike the batch path, the outcome
    /// carries per-slot placement with first-token and completion
    /// offsets, so an engine can keep per-request records across waves.
    ///
    /// # Errors
    ///
    /// [`CoeError::NoHealthyNodes`] when every node is down.
    ///
    /// # Panics
    ///
    /// Panics on an empty wave.
    pub fn serve_wave(
        &mut self,
        slots: &[WaveSlot],
        wave_tokens: usize,
    ) -> Result<WaveOutcome, CoeError> {
        assert!(!slots.is_empty(), "empty wave");
        // Per-wave crash draws happen before the mode split so both
        // engines consume the fault plan's RNG stream identically.
        if let Some(plan) = self.faults.clone() {
            for i in 0..self.runtimes.len() {
                if !self.failed[i]
                    && matches!(plan.decide(FaultSite::NodeFailure), FaultDecision::Fail)
                {
                    self.failed[i] = true;
                }
            }
        }
        if self.failed.iter().all(|&down| down) {
            return Err(CoeError::NoHealthyNodes);
        }
        match self.par {
            ParMode::Sequential => self.serve_wave_seq(slots, wave_tokens),
            ParMode::Threads(jobs) => self.serve_wave_lanes(slots, wave_tokens, jobs),
        }
    }

    /// The legacy sequential wave engine — the differential reference
    /// path for [`CoeCluster::serve_wave_lanes`].
    fn serve_wave_seq(
        &mut self,
        slots: &[WaveSlot],
        wave_tokens: usize,
    ) -> Result<WaveOutcome, CoeError> {
        let nodes = self.runtimes.len();
        let n_experts = self.library.len();
        let rehome_time = self.rehome_time();
        let mut per_node_prompts = vec![0usize; nodes];
        let mut per_node_switch = vec![TimeSecs::ZERO; nodes];
        let mut per_node_recovery = vec![TimeSecs::ZERO; nodes];
        let mut per_node_penalty = vec![TimeSecs::ZERO; nodes];
        let mut misses = 0;
        let mut hits = 0;
        let mut rehomed = 0;
        // Dense per-expert memo (`Some(None)` = every slot on this
        // expert drops): indexed, never iterated, so lane-partitioned
        // execution cannot observe a different order than this loop.
        let mut placed: Vec<Option<Option<usize>>> = vec![None; n_experts];
        let mut slot_nodes: Vec<Option<usize>> = Vec::with_capacity(slots.len());
        for slot in slots {
            let e = self.router.route(&slot.prompt, n_experts);
            let target = match placed[e] {
                Some(t) => t,
                None => {
                    let t = self.place_expert(
                        e,
                        &per_node_prompts,
                        rehome_time,
                        &mut per_node_switch,
                        &mut per_node_recovery,
                        &mut per_node_penalty,
                        &mut misses,
                        &mut hits,
                        &mut rehomed,
                    )?;
                    placed[e] = Some(t);
                    t
                }
            };
            if let Some(node) = target {
                per_node_prompts[node] += 1;
            }
            slot_nodes.push(target);
        }
        let router = self.router_time();
        let (prefill_unit, decode_unit) = self.unit_run_times(wave_tokens);
        // Shared per-node preamble (router pass, switching, recovery,
        // re-homing), then slots run back-to-back on their node: each
        // slot's completion offset is the node's running cursor.
        let mut cursor: Vec<TimeSecs> = (0..nodes)
            .map(|i| {
                if per_node_prompts[i] == 0 {
                    TimeSecs::ZERO
                } else {
                    router + per_node_switch[i] + per_node_recovery[i] + per_node_penalty[i]
                }
            })
            .collect();
        let mut placements = Vec::with_capacity(slots.len());
        let mut dropped = 0usize;
        for (slot, &target) in slots.iter().zip(&slot_nodes) {
            match target {
                None => {
                    dropped += 1;
                    placements.push(WavePlacement::Dropped);
                }
                Some(node) => {
                    let start = cursor[node];
                    let (first_token, done) = if slot.prefill {
                        (start + prefill_unit, start + prefill_unit + decode_unit)
                    } else {
                        (start, start + decode_unit)
                    };
                    cursor[node] = done;
                    placements.push(WavePlacement::Served {
                        node,
                        first_token,
                        done,
                    });
                }
            }
        }
        let per_node = cursor;
        let latency = per_node.iter().copied().fold(TimeSecs::ZERO, TimeSecs::max);
        if self.tracer.is_enabled() {
            self.tracer.count(Counter::ExpertsRehomed, rehomed as u64);
            self.tracer.count(Counter::PromptsDropped, dropped as u64);
        }
        self.trace_cluster_batch("wave", slots.len(), &per_node, &per_node_prompts, latency);
        Ok(WaveOutcome {
            latency,
            per_node,
            prompts_per_node: per_node_prompts,
            placements,
            expert_misses: misses,
            expert_hits: hits,
            switch_time: per_node_switch.iter().copied().sum(),
            rehomed_experts: rehomed,
            failover_penalty: per_node_penalty.iter().copied().sum(),
            recovery: per_node_recovery.iter().copied().sum(),
            failed_nodes: self.failed_nodes(),
        })
    }

    /// The per-node lane engine ([`ParMode::Threads`]): byte-identical
    /// to [`CoeCluster::serve_wave_seq`] at any worker count.
    ///
    /// Phase structure, and why bit-identity holds:
    ///
    /// 1. **Route pass** — through the [`RouteTable`] memo, whose
    ///    entries were produced by the live router (pure, so the values
    ///    are the sequential loop's values).
    /// 2. **Placement walk** — sequential, on the coordinator, in slot
    ///    order: expert activation mutates per-node HBM LRU state and
    ///    draws from the fault plan's RNG stream, so its order *is* the
    ///    contract. Identical calls in identical order to the reference
    ///    path.
    /// 3. **Unit timings** — the four traced executor runs, on the
    ///    coordinator, exactly where the reference path runs them.
    /// 4. **Lanes** — nodes partition across workers by `node % jobs`;
    ///    each lane walks the slot list in order, handling only its
    ///    nodes' slots, and writes each result straight into the shared
    ///    placements vector (disjoint indices — a slot belongs to
    ///    exactly one node, a node to exactly one lane). Pure float
    ///    arithmetic: each node's operation chain is exactly the
    ///    subsequence the sequential loop executes for that node.
    /// 5. **Barrier + merge** — the pool joins every lane before any
    ///    result is read; only the 16-odd per-node cursors need an
    ///    explicit merge, then tracing/aggregation run exactly as in
    ///    the reference path.
    fn serve_wave_lanes(
        &mut self,
        slots: &[WaveSlot],
        wave_tokens: usize,
        jobs: usize,
    ) -> Result<WaveOutcome, CoeError> {
        /// `slot_nodes` sentinel for a dropped slot (no node fits its
        /// expert under load faults).
        const DROPPED_SLOT: u32 = u32::MAX;
        let nodes = self.runtimes.len();
        let n_experts = self.library.len();
        let rehome_time = self.rehome_time();
        self.ensure_lane_engine(jobs);
        // The table is ~1.3 KiB; cloning it per wave costs nothing and
        // frees `self` for the `place_expert` calls inside the walk.
        let table = self.route_table.clone().expect("ensure_lane_engine");
        let mut per_node_prompts = vec![0usize; nodes];
        let mut per_node_switch = vec![TimeSecs::ZERO; nodes];
        let mut per_node_recovery = vec![TimeSecs::ZERO; nodes];
        let mut per_node_penalty = vec![TimeSecs::ZERO; nodes];
        let mut misses = 0;
        let mut hits = 0;
        let mut rehomed = 0;
        let mut placed: Vec<Option<Option<usize>>> = vec![None; n_experts];
        let mut slot_nodes: Vec<u32> = Vec::with_capacity(slots.len());
        let mut dropped = 0usize;
        for slot in slots {
            let e = table.route(&slot.prompt);
            let target = match placed[e] {
                Some(t) => t,
                None => {
                    let t = self.place_expert(
                        e,
                        &per_node_prompts,
                        rehome_time,
                        &mut per_node_switch,
                        &mut per_node_recovery,
                        &mut per_node_penalty,
                        &mut misses,
                        &mut hits,
                        &mut rehomed,
                    )?;
                    placed[e] = Some(t);
                    t
                }
            };
            match target {
                Some(node) => {
                    per_node_prompts[node] += 1;
                    slot_nodes.push(node as u32);
                }
                None => {
                    dropped += 1;
                    slot_nodes.push(DROPPED_SLOT);
                }
            }
        }
        let router = self.router_time();
        let (prefill_unit, decode_unit) = self.unit_run_times(wave_tokens);
        let cursor_base: Vec<TimeSecs> = (0..nodes)
            .map(|i| {
                if per_node_prompts[i] == 0 {
                    TimeSecs::ZERO
                } else {
                    router + per_node_switch[i] + per_node_recovery[i] + per_node_penalty[i]
                }
            })
            .collect();
        // Bucket served slots by node (counting sort, stable in slot
        // order) so each lane walks only its own nodes' slots instead
        // of scanning the whole wave — the lane fan-out does no
        // duplicated work at any job count.
        let mut offsets = vec![0usize; nodes + 1];
        for i in 0..nodes {
            offsets[i + 1] = offsets[i] + per_node_prompts[i];
        }
        let mut fill = offsets[..nodes].to_vec();
        let mut by_node = vec![0u32; offsets[nodes]];
        for (i, &target) in slot_nodes.iter().enumerate() {
            if target != DROPPED_SLOT {
                let node = target as usize;
                by_node[fill[node]] = i as u32;
                fill[node] += 1;
            }
        }
        let mut placements = vec![WavePlacement::Dropped; slots.len()];
        let mut lane_cursors: Vec<Vec<(u32, TimeSecs)>> = (0..jobs).map(|_| Vec::new()).collect();
        {
            let pool = self.lanes.as_mut().expect("ensure_lane_engine");
            let writer = crate::lanes::SharedWrites::new(&mut placements);
            let writer = &writer;
            let offsets = &offsets;
            let by_node = &by_node;
            let cursor_base = &cursor_base;
            pool.scoped(
                lane_cursors
                    .iter_mut()
                    .enumerate()
                    .map(|(w, out)| {
                        move || {
                            for node in (w..nodes).step_by(jobs) {
                                let mut cursor = cursor_base[node];
                                for &idx in &by_node[offsets[node]..offsets[node + 1]] {
                                    let i = idx as usize;
                                    let (first_token, done) = if slots[i].prefill {
                                        (cursor + prefill_unit, cursor + prefill_unit + decode_unit)
                                    } else {
                                        (cursor, cursor + decode_unit)
                                    };
                                    cursor = done;
                                    // SAFETY: slot i belongs to exactly
                                    // one node bucket, and each node to
                                    // exactly one lane stripe, so no
                                    // other thread touches index i, and
                                    // nothing reads placements until the
                                    // pool's completion barrier.
                                    unsafe {
                                        writer.write(
                                            i,
                                            WavePlacement::Served {
                                                node,
                                                first_token,
                                                done,
                                            },
                                        );
                                    }
                                }
                                out.push((node as u32, cursor));
                            }
                        }
                    })
                    .collect(),
            );
        }
        // Merge at the wave barrier: placements were written in place
        // at disjoint indices, so only the per-node cursors (one owner
        // lane each) need folding back.
        let mut per_node = cursor_base;
        for out in &lane_cursors {
            for &(node, cursor) in out {
                per_node[node as usize] = cursor;
            }
        }
        let latency = per_node.iter().copied().fold(TimeSecs::ZERO, TimeSecs::max);
        if self.tracer.is_enabled() {
            self.tracer.count(Counter::ExpertsRehomed, rehomed as u64);
            self.tracer.count(Counter::PromptsDropped, dropped as u64);
        }
        self.trace_cluster_batch("wave", slots.len(), &per_node, &per_node_prompts, latency);
        Ok(WaveOutcome {
            latency,
            per_node,
            prompts_per_node: per_node_prompts,
            placements,
            expert_misses: misses,
            expert_hits: hits,
            switch_time: per_node_switch.iter().copied().sum(),
            rehomed_experts: rehomed,
            failover_penalty: per_node_penalty.iter().copied().sum(),
            recovery: per_node_recovery.iter().copied().sum(),
            failed_nodes: self.failed_nodes(),
        })
    }

    /// Snapshot of the placement topology for
    /// [`crate::placement::PlacementPolicy::plan`].
    pub fn placement_view(&self) -> crate::placement::PlacementView {
        crate::placement::PlacementView {
            homes: self.homes.clone(),
            replicas: self.replicas.clone(),
            healthy: self.failed.iter().map(|&down| !down).collect(),
        }
    }

    /// Expires all still-pending prefetches as mispredictions: their
    /// DDR→HBM transfers moved bytes the router never asked for. Called
    /// at end of serve; boundaries instead keep speculations the policy
    /// re-proposes. Returns how many expired.
    pub fn expire_prefetches(&mut self) -> u64 {
        self.expire_prefetches_except(&[])
    }

    /// Expires pending prefetches *not* in `keep`: a speculation the
    /// policy still believes in stays live (its transfer already
    /// happened; expiring and re-staging it would double-charge the
    /// DMA model for weights that never left HBM).
    fn expire_prefetches_except(&mut self, keep: &[usize]) -> u64 {
        let stale: Vec<usize> = self
            .prefetched
            .iter()
            .copied()
            .filter(|e| !keep.contains(e))
            .collect();
        let expired = stale.len() as u64;
        if expired > 0 {
            let bytes = self.library.expert_bytes() * expired;
            self.prefetch_wasted += bytes;
            if self.tracer.is_enabled() {
                self.tracer
                    .count(Counter::PrefetchWastedBytes, bytes.as_u64());
            }
            for e in stale {
                self.prefetched.remove(&e);
            }
        }
        expired
    }

    /// Issues speculative DDR→HBM loads for `experts` on their serving
    /// nodes. Speculation from the previous boundary that is no longer
    /// in `experts` expires first (still-predicted pending speculations
    /// stay live). Each staged expert is a real transfer: charged through
    /// the memsim DMA model at DDR bandwidth, counted under
    /// [`Counter::PrefetchIssued`], and returned as `transfer_time` for
    /// the caller to overlap with (or expose beyond) the next wave.
    /// Already-resident experts cost nothing and do not consume the
    /// `max_issues` budget — the walk stops once that many transfers
    /// have actually been staged. `loads` breaks replica ties the same
    /// way serving does.
    pub fn prefetch_experts(
        &mut self,
        experts: &[usize],
        loads: &[usize],
        max_issues: usize,
    ) -> PrefetchOutcome {
        let expired = self.expire_prefetches_except(experts);
        let mut outcome = PrefetchOutcome {
            issued: 0,
            bytes: Bytes::ZERO,
            transfer_time: TimeSecs::ZERO,
            expired,
        };
        for &e in experts {
            if outcome.issued as usize >= max_issues {
                break;
            }
            let Some(node) = self.serving_node(e, loads) else {
                continue;
            };
            let name = self.library.expert(e).name.as_str();
            let staged = self.runtimes[node]
                .prefetch(name)
                .expect("expert registered on serving node");
            let Some(load) = staged else {
                continue; // already resident: prediction already paid off
            };
            let moved = load.copied_in + load.copied_back;
            self.dma.transfer(Route::DDR_TO_HBM, moved);
            outcome.issued += 1;
            outcome.bytes += moved;
            outcome.transfer_time += load.switch_time;
            self.prefetched.insert(e);
            if self.tracer.is_enabled() {
                self.tracer.count(Counter::PrefetchIssued, 1);
            }
        }
        outcome
    }

    /// Applies a stats-driven [`crate::placement::PlacementPlan`]:
    /// replicates hot experts onto additional healthy nodes and re-homes
    /// cold experts off overloaded ones. Weight movement is charged at
    /// DDR bandwidth into `transfer_time`; a destination that already
    /// holds the weights (an earlier adoption or replica) makes the
    /// action free, exactly like [`CoeCluster::rebalance_experts`].
    /// Replications ride [`Counter::ExpertsReplicated`].
    pub fn apply_placement(&mut self, plan: &crate::placement::PlacementPlan) -> PlacementOutcome {
        let rehome_time = self.rehome_time();
        let mut outcome = PlacementOutcome {
            replicated: 0,
            moves: 0,
            transfer_time: TimeSecs::ZERO,
        };
        let bytes = self.library.expert_bytes();
        for &(e, node) in &plan.replicate {
            if self.failed[node] || self.homes[e] == node || self.replicas[e].contains(&node) {
                continue;
            }
            let name = self.library.expert(e).name.clone();
            match self.runtimes[node].register(ModelBinary::weights_only(name, bytes)) {
                Ok(()) => {
                    outcome.transfer_time += rehome_time;
                }
                // The node already holds the weights from an earlier
                // adoption or move: the replica is free.
                Err(CoeError::Duplicate(_)) => {}
                Err(_) => continue,
            }
            self.replicas[e].push(node);
            self.replicas[e].sort_unstable();
            outcome.replicated += 1;
            if self.tracer.is_enabled() {
                self.tracer.count(Counter::ExpertsReplicated, 1);
            }
        }
        for &(e, node) in &plan.moves {
            if self.failed[node] || self.homes[e] == node {
                continue;
            }
            let name = self.library.expert(e).name.clone();
            match self.runtimes[node].register(ModelBinary::weights_only(name.clone(), bytes)) {
                Ok(()) => {
                    outcome.transfer_time += rehome_time;
                }
                Err(CoeError::Duplicate(_)) => {}
                Err(_) => continue,
            }
            let source = self.homes[e];
            self.homes[e] = node;
            self.replicas[e].retain(|&n| n != node);
            // The source no longer serves this expert (it is neither its
            // home nor a replica holder), so a copy left resident there
            // is dead weight. Releasing it is what opens HBM headroom for
            // the prefetcher: placement evicts cold state, prefetch
            // refills the freed capacity with predicted-hot experts.
            if !self.replicas[e].contains(&source) {
                if let Ok(copy_back) = self.runtimes[source].deactivate(&name) {
                    outcome.transfer_time += copy_back;
                }
            }
            outcome.moves += 1;
        }
        outcome
    }

    /// Running totals of the prefetch loop: `(hits, wasted_bytes)` —
    /// speculations claimed by demand activations vs transfers that
    /// expired (or were evicted) unused.
    pub fn prefetch_totals(&self) -> (u64, Bytes) {
        (self.prefetch_hits, self.prefetch_wasted)
    }
}

/// Result of one prefetch boundary ([`CoeCluster::prefetch_experts`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchOutcome {
    /// Speculative loads actually issued (non-resident candidates).
    pub issued: u64,
    /// Bytes moved DDR→HBM (plus any eviction copy-back) for them.
    pub bytes: Bytes,
    /// Transfer time at model-switch bandwidth; overlappable with the
    /// next wave's compute.
    pub transfer_time: TimeSecs,
    /// Stale speculations from the previous boundary that expired.
    pub expired: u64,
}

/// Result of applying a placement plan ([`CoeCluster::apply_placement`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementOutcome {
    /// Hot-expert replicas created.
    pub replicated: u64,
    /// Cold experts re-homed.
    pub moves: u64,
    /// Weight-transfer time the actions cost (backgroundable).
    pub transfer_time: TimeSecs,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::PromptGenerator;
    use sn_runtime::coe::CoeError;

    #[test]
    fn cluster_hosts_experts_beyond_one_node() {
        // 2000 experts (> 979 per node) across three nodes.
        let cluster = CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(2000), 512);
        assert!(cluster.is_ok());
    }

    #[test]
    fn undersized_cluster_errors() {
        let err = CoeCluster::new(NodeSpec::sn40l_node(), 2, ExpertLibrary::new(2000), 512);
        assert!(
            matches!(err, Err(CoeError::DdrFull(_))),
            "1000 experts/node exceeds DDR"
        );
    }

    #[test]
    fn batches_fan_out_and_run_concurrently() {
        let mut cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 4, ExpertLibrary::new(400), 512).expect("fits");
        let mut generator = PromptGenerator::new(17, 512);
        let batch = generator.batch(16);
        let report = cluster.serve_batch(&batch, 10);
        let used_nodes = report.prompts_per_node.iter().filter(|&&n| n > 0).count();
        assert!(used_nodes >= 2, "16 prompts should spread over nodes");
        assert_eq!(report.prompts_per_node.iter().sum::<usize>(), 16);
        // Concurrency: wall latency is below the serial sum of node times.
        let serial: TimeSecs = report.per_node.iter().copied().sum();
        assert!(report.latency < serial);
    }

    #[test]
    fn more_nodes_cut_batch_latency() {
        let mut one =
            CoeCluster::new(NodeSpec::sn40l_node(), 1, ExpertLibrary::new(400), 512).expect("fits");
        let mut four =
            CoeCluster::new(NodeSpec::sn40l_node(), 4, ExpertLibrary::new(400), 512).expect("fits");
        let batch = PromptGenerator::new(23, 512).batch(16);
        let t1 = one.serve_batch(&batch, 10).latency;
        let t4 = four.serve_batch(&batch, 10).latency;
        let speedup = t1 / t4;
        assert!(speedup > 1.5, "4 nodes should beat 1: {speedup:.2}x");
    }

    #[test]
    fn try_serve_without_faults_matches_serve_batch_exactly() {
        let mut plain =
            CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512).unwrap();
        let mut aware =
            CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512).unwrap();
        let batch = PromptGenerator::new(31, 512).batch(12);
        let want = plain.serve_batch(&batch, 10);
        let got = aware.try_serve_batch(&batch, 10).unwrap();
        assert_eq!(want, got, "no faults: bit-identical reports");
        assert_eq!(got.availability(), 1.0);
    }

    #[test]
    fn zero_rate_plan_keeps_cluster_reports_bit_identical() {
        use sn_faults::FaultPlan;
        use std::sync::Arc;
        let mut plain =
            CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512).unwrap();
        let mut aware = CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512)
            .unwrap()
            .with_faults(Arc::new(FaultPlan::new(77)), RetryPolicy::standard());
        let batch = PromptGenerator::new(31, 512).batch(12);
        let want = plain.serve_batch(&batch, 10);
        let got = aware.try_serve_batch(&batch, 10).unwrap();
        assert_eq!(want, got, "zero-rate plan: bit-identical reports");
    }

    #[test]
    fn failed_node_fails_over_and_every_prompt_completes() {
        let mut cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512).unwrap();
        let batch = PromptGenerator::new(31, 512).batch(24);
        let healthy = cluster.try_serve_batch(&batch, 10).unwrap();
        assert_eq!(healthy.prompts_per_node.iter().sum::<usize>(), 24);

        cluster.fail_node(1);
        let degraded = cluster.try_serve_batch(&batch, 10).unwrap();
        assert_eq!(degraded.failed_nodes, vec![1]);
        assert_eq!(degraded.prompts_per_node[1], 0, "dead node serves nothing");
        assert_eq!(
            degraded.prompts_per_node.iter().sum::<usize>(),
            24,
            "all prompts complete on survivors"
        );
        assert_eq!(degraded.dropped_prompts, 0);
        assert!(degraded.rehomed_experts > 0, "node 1's experts re-home");
        assert!(
            degraded.failover_penalty.as_secs() > 0.0,
            "re-homing costs transfer time"
        );
        assert!(
            degraded.latency > healthy.latency,
            "failover costs latency: {} vs {}",
            degraded.latency,
            healthy.latency
        );

        // The next batch reuses the adopted experts: no second re-homing
        // of the same experts, and availability stays perfect.
        let settled = cluster.try_serve_batch(&batch, 10).unwrap();
        assert_eq!(settled.rehomed_experts, 0, "already re-homed");
        assert_eq!(settled.dropped_prompts, 0);
        assert!(settled.latency < degraded.latency);
    }

    #[test]
    fn all_nodes_down_is_an_error() {
        let mut cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 2, ExpertLibrary::new(100), 512).unwrap();
        cluster.fail_node(0);
        cluster.fail_node(1);
        let batch = PromptGenerator::new(31, 512).batch(4);
        assert!(matches!(
            cluster.try_serve_batch(&batch, 10),
            Err(CoeError::NoHealthyNodes)
        ));
        cluster.restore_node(0);
        assert!(cluster.try_serve_batch(&batch, 10).is_ok());
    }

    #[test]
    fn plan_drawn_node_failures_crash_nodes() {
        use sn_faults::{FaultPlan, FaultSite, FaultSpec};
        use std::sync::Arc;
        let plan =
            Arc::new(FaultPlan::new(3).with_site(FaultSite::NodeFailure, FaultSpec::failing(0.5)));
        let mut cluster = CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512)
            .unwrap()
            .with_faults(plan, RetryPolicy::standard());
        let batch = PromptGenerator::new(31, 512).batch(12);
        // At 50% per node per batch, a few batches kill at least one node
        // deterministically under this seed.
        let mut saw_failure = false;
        for _ in 0..4 {
            match cluster.try_serve_batch(&batch, 10) {
                Ok(report) => {
                    if !report.failed_nodes.is_empty() {
                        saw_failure = true;
                        assert_eq!(
                            report.prompts_per_node.iter().sum::<usize>() + report.dropped_prompts,
                            12
                        );
                    }
                }
                Err(CoeError::NoHealthyNodes) => {
                    saw_failure = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(
            saw_failure,
            "seed 3 at 50% should down a node within 4 batches"
        );
    }

    #[test]
    fn imbalance_ignores_idle_and_failed_nodes() {
        let report = ClusterReport {
            latency: TimeSecs::from_millis(30.0),
            per_node: vec![
                TimeSecs::from_millis(30.0),
                TimeSecs::from_millis(20.0),
                TimeSecs::ZERO, // idle: no prompts routed
                TimeSecs::ZERO, // failed
            ],
            prompts_per_node: vec![3, 2, 0, 0],
            expert_misses: 0,
            failed_nodes: vec![3],
            rehomed_experts: 0,
            failover_penalty: TimeSecs::ZERO,
            recovery: TimeSecs::ZERO,
            dropped_prompts: 0,
            metrics: None,
            slo: None,
        };
        // Mean over the two working nodes only: 25 ms -> 30/25 = 1.2.
        assert!((report.imbalance() - 1.2).abs() < 1e-12);
        // Nothing served at all: defined as balanced.
        let empty = ClusterReport {
            latency: TimeSecs::ZERO,
            per_node: vec![TimeSecs::ZERO; 2],
            prompts_per_node: vec![0, 0],
            expert_misses: 0,
            failed_nodes: vec![0, 1],
            rehomed_experts: 0,
            failover_penalty: TimeSecs::ZERO,
            recovery: TimeSecs::ZERO,
            dropped_prompts: 4,
            metrics: None,
            slo: None,
        };
        assert_eq!(empty.imbalance(), 1.0);
        assert_eq!(empty.availability(), 0.0);
    }

    #[test]
    fn traced_cluster_matches_untraced_and_spans_run_concurrently() {
        let mut plain =
            CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512).unwrap();
        let mut traced = CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512)
            .unwrap()
            .with_tracer(Tracer::enabled());
        let batch = PromptGenerator::new(31, 512).batch(12);
        let want = plain.serve_batch(&batch, 10);
        let got = traced.serve_batch(&batch, 10);
        assert_eq!(want.latency, got.latency, "tracing must not perturb timing");
        assert_eq!(want.per_node, got.per_node);
        assert!(want.metrics.is_none());
        let metrics = got.metrics.as_ref().expect("tracer attached");
        assert_eq!(metrics.counter(Counter::PromptsServed), 12);
        assert_eq!(metrics.counter(Counter::RouterDecisions), 12);
        // One span per busy node on the cluster track, all starting at the
        // same instant (nodes run concurrently), tid = node index.
        let busy = want.prompts_per_node.iter().filter(|&&n| n > 0).count();
        let node_spans: Vec<_> = traced
            .tracer
            .events()
            .into_iter()
            .filter(|e| e.track == Track::Cluster)
            .collect();
        assert_eq!(node_spans.len(), busy);
        assert!(node_spans.iter().all(|e| e.ts_us == node_spans[0].ts_us));
    }

    #[test]
    fn traced_failover_counts_rehomed_experts() {
        let mut cluster = CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512)
            .unwrap()
            .with_tracer(Tracer::enabled());
        let batch = PromptGenerator::new(31, 512).batch(24);
        cluster.fail_node(1);
        let degraded = cluster.try_serve_batch(&batch, 10).unwrap();
        let metrics = degraded.metrics.as_ref().expect("tracer attached");
        assert_eq!(
            metrics.counter(Counter::ExpertsRehomed),
            degraded.rehomed_experts as u64
        );
        assert_eq!(metrics.counter(Counter::PromptsDropped), 0);
    }

    #[test]
    fn cluster_slo_snapshot_rides_along_without_perturbing_timing() {
        let mut plain =
            CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512).unwrap();
        let mut tracked = CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512)
            .unwrap()
            .with_slo(SloConfig::default());
        let mut gen_a = PromptGenerator::new(31, 512);
        let mut gen_b = PromptGenerator::new(31, 512);
        let mut last = None;
        for _ in 0..3 {
            let want = plain.serve_batch(&gen_a.batch(12), 10);
            let got = tracked.serve_batch(&gen_b.batch(12), 10);
            assert_eq!(
                want.latency, got.latency,
                "SLO tracking is pure bookkeeping"
            );
            assert!(want.slo.is_none());
            last = got.slo;
        }
        let slo = last.expect("tracker attached");
        assert_eq!(slo.window_batches, 3);
        assert!(slo.batch_latency_p50 <= slo.batch_latency_p99);
        assert!(
            slo.ttft_p99 <= slo.batch_latency_p50,
            "first token lands early"
        );
        assert!(slo.tokens_per_sec > 0.0);
        assert!(slo.hbm_utilization > 0.0 && slo.hbm_utilization <= 1.0);

        // Degraded serving keeps feeding the same window.
        tracked.fail_node(1);
        let degraded = tracked.try_serve_batch(&gen_b.batch(12), 10).unwrap();
        let slo = degraded.slo.expect("tracker still attached");
        assert_eq!(slo.total_batches, 4);
    }

    #[test]
    fn serve_wave_places_every_slot_and_orders_offsets() {
        let mut cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512).unwrap();
        let batch = PromptGenerator::new(7, 512).batch(12);
        let slots: Vec<WaveSlot> = batch
            .iter()
            .map(|p| WaveSlot {
                prompt: p.clone(),
                prefill: true,
            })
            .collect();
        let outcome = cluster.serve_wave(&slots, 8).unwrap();
        assert_eq!(outcome.placements.len(), 12);
        assert_eq!(outcome.prompts_per_node.iter().sum::<usize>(), 12);
        for placement in &outcome.placements {
            let WavePlacement::Served {
                node,
                first_token,
                done,
            } = *placement
            else {
                panic!("healthy cluster drops nothing");
            };
            assert!(first_token > TimeSecs::ZERO);
            assert!(first_token < done);
            assert!(done <= outcome.per_node[node]);
        }
        assert_eq!(
            outcome.latency,
            outcome
                .per_node
                .iter()
                .copied()
                .fold(TimeSecs::ZERO, TimeSecs::max)
        );
        // The last slot on the busiest node finishes exactly at its
        // node's busy time.
        assert!(outcome
            .placements
            .iter()
            .any(|p| matches!(p, WavePlacement::Served { done, .. } if *done == outcome.latency)));
    }

    #[test]
    fn continuing_chunks_skip_the_prefill_charge() {
        let mut a =
            CoeCluster::new(NodeSpec::sn40l_node(), 2, ExpertLibrary::new(100), 512).unwrap();
        let mut b =
            CoeCluster::new(NodeSpec::sn40l_node(), 2, ExpertLibrary::new(100), 512).unwrap();
        let prompt = PromptGenerator::new(5, 512).batch(1).remove(0);
        let first = a
            .serve_wave(
                &[WaveSlot {
                    prompt: prompt.clone(),
                    prefill: true,
                }],
                8,
            )
            .unwrap();
        // Same expert already activated: isolate the prefill difference.
        let warm_prefill = a
            .serve_wave(
                &[WaveSlot {
                    prompt: prompt.clone(),
                    prefill: true,
                }],
                8,
            )
            .unwrap();
        let _ = b.serve_wave(
            &[WaveSlot {
                prompt: prompt.clone(),
                prefill: true,
            }],
            8,
        );
        let continuing = b
            .serve_wave(
                &[WaveSlot {
                    prompt,
                    prefill: false,
                }],
                8,
            )
            .unwrap();
        assert!(first.expert_misses > 0, "cold first wave");
        assert!(
            continuing.latency < warm_prefill.latency,
            "a decode-only chunk must be cheaper than prefill + decode"
        );
    }

    #[test]
    fn added_node_starts_empty_and_rebalance_fills_it() {
        let mut cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512).unwrap();
        let new = cluster.add_node();
        assert_eq!(new, 3);
        assert_eq!(cluster.nodes(), 4);
        assert_eq!(cluster.healthy_nodes(), 4);
        assert_eq!(cluster.expert_homes(), vec![100, 100, 100, 0]);
        let report = cluster.rebalance_experts();
        assert!(report.moved_experts >= 70, "gap of 100 must mostly close");
        assert_eq!(report.stranded_experts, 0);
        assert!(report.transfer_time.as_secs() > 0.0, "moves cost DDR time");
        let homes = cluster.expert_homes();
        let (min, max) = (homes.iter().min().unwrap(), homes.iter().max().unwrap());
        assert!(max - min <= 1, "balanced within one expert: {homes:?}");
        // A second pass finds nothing left to move.
        let settled = cluster.rebalance_experts();
        assert_eq!(settled.moved_experts, 0);
    }

    #[test]
    fn drained_node_hands_off_experts_before_leaving() {
        let mut cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(300), 512).unwrap();
        let report = cluster.drain_node(1).unwrap();
        assert_eq!(report.moved_experts, 100);
        assert_eq!(report.stranded_experts, 0);
        assert!(report.transfer_time.as_secs() > 0.0);
        assert_eq!(cluster.expert_homes()[1], 0);
        assert_eq!(cluster.failed_nodes(), vec![1]);
        // Serving after a drain is clean: planned handoff means no
        // reactive re-homing and nothing dropped.
        let batch = PromptGenerator::new(31, 512).batch(24);
        let degraded = cluster.try_serve_batch(&batch, 10).unwrap();
        assert_eq!(degraded.rehomed_experts, 0, "handoff already happened");
        assert_eq!(degraded.dropped_prompts, 0);
        assert_eq!(degraded.prompts_per_node[1], 0);
    }

    #[test]
    fn last_healthy_node_cannot_be_drained() {
        let mut cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 2, ExpertLibrary::new(100), 512).unwrap();
        cluster.fail_node(0);
        assert!(matches!(
            cluster.drain_node(1),
            Err(CoeError::NoHealthyNodes)
        ));
        cluster.restore_node(0);
        assert!(cluster.drain_node(1).is_ok());
    }

    #[test]
    fn experts_are_owned_round_robin() {
        let cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(30), 512).expect("fits");
        assert_eq!(cluster.owner(0), 0);
        assert_eq!(cluster.owner(1), 1);
        assert_eq!(cluster.owner(5), 2);
        assert_eq!(cluster.nodes(), 3);
    }

    #[test]
    fn prefetch_issues_for_cold_experts_and_respects_the_cap() {
        let mut cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 2, ExpertLibrary::new(100), 512).unwrap();
        let loads = vec![0usize; 2];
        // Nothing is resident yet: every candidate is cold, but only
        // `max_issues` transfers may be staged.
        let out = cluster.prefetch_experts(&[0, 2, 4, 6, 8], &loads, 3);
        assert_eq!(out.issued, 3);
        assert_eq!(out.expired, 0);
        assert!(out.bytes > Bytes::ZERO);
        assert!(out.transfer_time.as_secs() > 0.0);
        // Re-proposing the staged set is free: they are resident now, so
        // the walk skips them and issues the remaining cold candidates.
        let again = cluster.prefetch_experts(&[0, 2, 4, 6, 8], &loads, 8);
        assert_eq!(again.issued, 2, "only 6 and 8 were still cold");
        assert_eq!(again.expired, 0, "pending speculation re-proposed");
    }

    #[test]
    fn unused_prefetches_expire_as_wasted_bytes() {
        let mut cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 2, ExpertLibrary::new(100), 512).unwrap();
        let loads = vec![0usize; 2];
        cluster.prefetch_experts(&[0, 2], &loads, 8);
        let expired = cluster.expire_prefetches();
        assert_eq!(expired, 2);
        let (hits, wasted) = cluster.prefetch_totals();
        assert_eq!(hits, 0);
        assert_eq!(wasted, cluster.expert_bytes() * 2);
    }

    #[test]
    fn demand_activation_claims_a_prefetch_as_a_hit() {
        let mut cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 2, ExpertLibrary::new(100), 512).unwrap();
        let batch = PromptGenerator::new(31, 512).batch(4);
        let experts: Vec<usize> = batch.iter().map(|p| cluster.routed_expert(p)).collect();
        let loads = vec![0usize; 2];
        cluster.prefetch_experts(&experts, &loads, 8);
        let report = cluster.serve_batch(&batch, 10);
        assert_eq!(report.expert_misses, 0, "every routed expert was staged");
        let (hits, wasted) = cluster.prefetch_totals();
        assert!(hits > 0);
        assert_eq!(wasted, Bytes::ZERO);
    }

    #[test]
    fn applied_replicas_split_load_and_survive_home_failure() {
        let mut cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 2, ExpertLibrary::new(100), 512).unwrap();
        // Expert 0 is homed on node 0; replicate it onto node 1.
        let plan = crate::placement::PlacementPlan {
            replicate: vec![(0, 1)],
            moves: Vec::new(),
        };
        let out = cluster.apply_placement(&plan);
        assert_eq!(out.replicated, 1);
        assert!(out.transfer_time.as_secs() > 0.0);
        assert_eq!(cluster.replica_nodes(0), &[1]);
        // Re-applying is a no-op (already a replica).
        let again = cluster.apply_placement(&plan);
        assert_eq!(again.replicated, 0);
        // With the home dead, serving falls over to the replica without
        // a reactive re-home.
        cluster.fail_node(0);
        let batch = PromptGenerator::new(31, 512).batch(8);
        let report = cluster.try_serve_batch(&batch, 10).unwrap();
        assert_eq!(report.dropped_prompts, 0);
        assert_eq!(report.prompts_per_node[0], 0, "dead node serves nothing");
    }

    #[test]
    fn cold_moves_rehome_and_drop_redundant_replicas() {
        let mut cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 2, ExpertLibrary::new(100), 512).unwrap();
        let plan = crate::placement::PlacementPlan {
            replicate: vec![(0, 1)],
            moves: Vec::new(),
        };
        cluster.apply_placement(&plan);
        // Moving expert 0 to node 1 promotes the replica to home — the
        // transfer is free (weights already there) and the replica entry
        // collapses into the new home.
        let move_plan = crate::placement::PlacementPlan {
            replicate: Vec::new(),
            moves: vec![(0, 1)],
        };
        let out = cluster.apply_placement(&move_plan);
        assert_eq!(out.moves, 1);
        assert!(out.transfer_time.is_zero(), "weights were already there");
        assert_eq!(cluster.owner(0), 1);
        assert!(cluster.replica_nodes(0).is_empty());
    }
}
