//! Multi-node CoE serving: scale a composition past one node's DDR.
//!
//! The paper deploys 150 experts on one SN40L node and shows a single node
//! holds up to 850; beyond that (or for throughput), a deployment shards
//! the expert library across nodes. Each expert lives on exactly one node
//! (its DDR home); requests are routed to the owning node, and nodes serve
//! their shares concurrently — batch latency is the busiest node's time.

use crate::expert::ExpertLibrary;
use crate::router::{Prompt, Router};
use serde::{Deserialize, Serialize};
use sn_arch::{Calibration, NodeSpec, Orchestration, TimeSecs};
use sn_compiler::{Compiler, Executable, FusionPolicy};
use sn_models::{build, Phase};
use sn_runtime::coe::{CoeError, CoeRuntime, CoeRuntimeConfig, ModelBinary};
use sn_runtime::executor::NodeExecutor;

/// Result of one batch served by the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Wall time of the batch: the busiest node (nodes run concurrently).
    pub latency: TimeSecs,
    /// Per-node busy time (router + switching + execution).
    pub per_node: Vec<TimeSecs>,
    /// Prompts served per node.
    pub prompts_per_node: Vec<usize>,
    /// Total expert misses across nodes.
    pub expert_misses: usize,
}

impl ClusterReport {
    /// Load imbalance: busiest node time over mean node time (1.0 is
    /// perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let busy: Vec<f64> =
            self.per_node.iter().map(|t| t.as_secs()).filter(|&t| t > 0.0).collect();
        if busy.is_empty() {
            return 1.0;
        }
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        self.latency.as_secs() / mean
    }
}

/// A CoE deployment sharded across several SN40L nodes.
#[derive(Debug)]
pub struct CoeCluster {
    library: ExpertLibrary,
    router: Router,
    runtimes: Vec<CoeRuntime>,
    executor: NodeExecutor,
    prefill_exe: Executable,
    decode_exe: Executable,
    router_steps: f64,
}

impl CoeCluster {
    /// Builds a cluster of `nodes` SN40L nodes and registers the library
    /// round-robin across them.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`CoeError`] when a node's DDR cannot hold
    /// its shard (the cluster is undersized).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(
        node: NodeSpec,
        nodes: usize,
        library: ExpertLibrary,
        prompt_tokens: usize,
    ) -> Result<Self, CoeError> {
        assert!(nodes >= 1, "a cluster needs at least one node");
        let calib = Calibration::baseline();
        let compiler = Compiler::new(node.socket.clone(), calib.clone());
        let cfg = library.config().clone();
        let prefill_graph = build(&cfg, Phase::Prefill { prompt_tokens }, 1, node.sockets)
            .expect("prefill builds");
        let decode_graph =
            build(&cfg, Phase::Decode { past_tokens: prompt_tokens }, 1, node.sockets)
                .expect("decode builds");
        let prefill_exe =
            compiler.compile(&prefill_graph, FusionPolicy::Spatial).expect("prefill compiles");
        let decode_exe =
            compiler.compile(&decode_graph, FusionPolicy::Spatial).expect("decode compiles");
        let mut runtimes: Vec<CoeRuntime> =
            (0..nodes).map(|_| CoeRuntime::new(&node, CoeRuntimeConfig::default())).collect();
        for (i, e) in library.experts().iter().enumerate() {
            runtimes[i % nodes]
                .register(ModelBinary::weights_only(e.name.clone(), library.expert_bytes()))?;
        }
        let executor = NodeExecutor::new(node, calib.clone());
        Ok(CoeCluster {
            library,
            router: Router::new(0xc1a5fe2),
            runtimes,
            executor,
            prefill_exe,
            decode_exe,
            router_steps: calib.router_equiv_decode_steps,
        })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.runtimes.len()
    }

    /// The node owning an expert.
    pub fn owner(&self, expert: usize) -> usize {
        expert % self.runtimes.len()
    }

    fn router_time(&self) -> TimeSecs {
        let prefill = self.executor.run(&self.prefill_exe, Orchestration::Hardware).total;
        let step = self.executor.run(&self.decode_exe, Orchestration::Hardware).total;
        prefill + step * self.router_steps
    }

    fn model_run_time(&self, output_tokens: usize) -> TimeSecs {
        let prefill = self.executor.run(&self.prefill_exe, Orchestration::Hardware).total;
        let decode = self
            .executor
            .run_decode_loop(&self.decode_exe, Orchestration::Hardware, output_tokens.max(1))
            .total;
        prefill + decode
    }

    /// Serves a batch: the router runs once (replicated on every node);
    /// prompts then fan out to their experts' home nodes, which execute
    /// concurrently.
    pub fn serve_batch(&mut self, prompts: &[Prompt], output_tokens: usize) -> ClusterReport {
        assert!(!prompts.is_empty(), "empty batch");
        let nodes = self.runtimes.len();
        let n_experts = self.library.len();
        let mut per_node_prompts = vec![0usize; nodes];
        let mut per_node_switch = vec![TimeSecs::ZERO; nodes];
        let mut misses = 0;
        let mut seen = std::collections::HashSet::new();
        for p in prompts {
            let e = self.router.route(p, n_experts);
            let owner = self.owner(e);
            per_node_prompts[owner] += 1;
            if seen.insert(e) {
                let name = self.library.expert(e).name.clone();
                let outcome =
                    self.runtimes[owner].activate(&name).expect("expert registered on owner");
                if !outcome.hit {
                    misses += 1;
                }
                per_node_switch[owner] += outcome.switch_time;
            }
        }
        let router = self.router_time();
        let run = self.model_run_time(output_tokens);
        let per_node: Vec<TimeSecs> = (0..nodes)
            .map(|i| {
                if per_node_prompts[i] == 0 {
                    TimeSecs::ZERO
                } else {
                    router + per_node_switch[i] + run * per_node_prompts[i] as f64
                }
            })
            .collect();
        let latency = per_node.iter().copied().fold(TimeSecs::ZERO, TimeSecs::max);
        ClusterReport { latency, per_node, prompts_per_node: per_node_prompts, expert_misses: misses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::PromptGenerator;
    use sn_runtime::coe::CoeError;

    #[test]
    fn cluster_hosts_experts_beyond_one_node() {
        // 2000 experts (> 979 per node) across three nodes.
        let cluster = CoeCluster::new(
            NodeSpec::sn40l_node(),
            3,
            ExpertLibrary::new(2000),
            512,
        );
        assert!(cluster.is_ok());
    }

    #[test]
    fn undersized_cluster_errors() {
        let err = CoeCluster::new(
            NodeSpec::sn40l_node(),
            2,
            ExpertLibrary::new(2000),
            512,
        );
        assert!(matches!(err, Err(CoeError::DdrFull(_))), "1000 experts/node exceeds DDR");
    }

    #[test]
    fn batches_fan_out_and_run_concurrently() {
        let mut cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 4, ExpertLibrary::new(400), 512)
                .expect("fits");
        let mut generator = PromptGenerator::new(17, 512);
        let batch = generator.batch(16);
        let report = cluster.serve_batch(&batch, 10);
        let used_nodes = report.prompts_per_node.iter().filter(|&&n| n > 0).count();
        assert!(used_nodes >= 2, "16 prompts should spread over nodes");
        assert_eq!(report.prompts_per_node.iter().sum::<usize>(), 16);
        // Concurrency: wall latency is below the serial sum of node times.
        let serial: TimeSecs = report.per_node.iter().copied().sum();
        assert!(report.latency < serial);
    }

    #[test]
    fn more_nodes_cut_batch_latency() {
        let mut one =
            CoeCluster::new(NodeSpec::sn40l_node(), 1, ExpertLibrary::new(400), 512)
                .expect("fits");
        let mut four =
            CoeCluster::new(NodeSpec::sn40l_node(), 4, ExpertLibrary::new(400), 512)
                .expect("fits");
        let batch = PromptGenerator::new(23, 512).batch(16);
        let t1 = one.serve_batch(&batch, 10).latency;
        let t4 = four.serve_batch(&batch, 10).latency;
        let speedup = t1 / t4;
        assert!(speedup > 1.5, "4 nodes should beat 1: {speedup:.2}x");
    }

    #[test]
    fn experts_are_owned_round_robin() {
        let cluster =
            CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(30), 512)
                .expect("fits");
        assert_eq!(cluster.owner(0), 0);
        assert_eq!(cluster.owner(1), 1);
        assert_eq!(cluster.owner(5), 2);
        assert_eq!(cluster.nodes(), 3);
    }
}
