//! The Samba-CoE expert library (§II).
//!
//! Each expert is an independently fine-tuned Llama2-7B-class model. The
//! library is synthetic — expert *identities* and domains matter to the
//! systems evaluation (routing, switching, capacity), their weights do
//! not.

use crate::router::Domain;
use serde::{Deserialize, Serialize};
use sn_arch::Bytes;
use sn_models::TransformerConfig;

/// One expert's metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertInfo {
    pub name: String,
    pub domain: Domain,
}

/// The library of experts behind a CoE deployment.
#[derive(Debug, Clone)]
pub struct ExpertLibrary {
    experts: Vec<ExpertInfo>,
    config: TransformerConfig,
}

impl ExpertLibrary {
    /// Builds a library of `n` experts cycling through the domains.
    pub fn new(n: usize) -> Self {
        Self::with_config(n, TransformerConfig::llama2_7b())
    }

    /// Builds a library of `n` experts of an arbitrary shared architecture
    /// (e.g. INT8-quantized or MoE-internal experts).
    pub fn with_config(n: usize, config: TransformerConfig) -> Self {
        let domains = Domain::ALL;
        let experts = (0..n)
            .map(|i| {
                let domain = domains[i % domains.len()];
                ExpertInfo {
                    name: format!("{}-expert-{i}", domain.tag()),
                    domain,
                }
            })
            .collect();
        ExpertLibrary { experts, config }
    }

    /// The deployed Samba-CoE: 150 experts (§I, §V).
    pub fn samba_coe_150() -> Self {
        ExpertLibrary::new(150)
    }

    pub fn len(&self) -> usize {
        self.experts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.experts.is_empty()
    }

    pub fn experts(&self) -> &[ExpertInfo] {
        &self.experts
    }

    pub fn expert(&self, i: usize) -> &ExpertInfo {
        &self.experts[i]
    }

    /// The (shared) expert architecture.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// Total parameters across experts plus the router.
    pub fn total_params(&self) -> u64 {
        self.config.param_count() * (self.experts.len() as u64 + 1)
    }

    /// BF16 bytes of one expert.
    pub fn expert_bytes(&self) -> Bytes {
        self.config.param_bytes()
    }

    /// BF16 bytes of the whole library in DDR.
    pub fn library_bytes(&self) -> Bytes {
        self.expert_bytes() * self.experts.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samba_coe_exceeds_a_trillion_parameters() {
        let lib = ExpertLibrary::samba_coe_150();
        assert!(
            lib.total_params() > 1_000_000_000_000,
            "got {}",
            lib.total_params()
        );
    }

    #[test]
    fn library_fits_node_ddr() {
        // §V: "Weights for all 150 experts are held in high capacity DDR".
        let lib = ExpertLibrary::samba_coe_150();
        let node = sn_arch::NodeSpec::sn40l_node();
        assert!(lib.library_bytes() < node.ddr_capacity());
    }

    #[test]
    fn domains_cycle() {
        let lib = ExpertLibrary::new(Domain::ALL.len() + 2);
        assert_ne!(lib.expert(0).domain, lib.expert(1).domain);
        assert_eq!(lib.expert(0).domain, lib.expert(Domain::ALL.len()).domain);
    }

    #[test]
    fn names_are_unique() {
        let lib = ExpertLibrary::samba_coe_150();
        let mut names: Vec<&str> = lib.experts().iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 150);
    }
}
