//! Router-statistics-driven expert placement and predictive prefetch.
//!
//! The cluster's switch model ([`crate::cluster`]) is *reactive*: a cold
//! expert pays the full DDR→HBM penalty the moment the router lands on
//! it. This module closes the loop the SN40L paper leaves to the serving
//! stack: observe where the router actually goes, then act *before* the
//! next wave —
//!
//! - [`ExpertStats`] accumulates per-expert hit counts, a presence EWMA
//!   (the probability the expert appears in a wave), inter-arrival gaps,
//!   and co-activation pair counts from each wave's routed experts.
//! - [`PrefetchPolicy`] turns those statistics into speculative DDR→HBM
//!   loads at wave boundaries: experts whose predicted-hit probability
//!   clears a threshold are staged into HBM ahead of demand. Prefetch
//!   traffic is charged through the memsim DMA model, so mispredictions
//!   cost real bandwidth (counted as `prefetch_wasted_bytes`).
//! - [`PlacementPolicy`] replicates hot experts onto additional nodes
//!   (router bursts then split across sockets, and failover re-homing
//!   becomes free when a replica already holds the weights) and spreads
//!   cold experts off overloaded nodes.
//! - [`ServingPolicies`] bundles the above plus a [`crate::kv`] paged KV
//!   cache for [`crate::CoeCluster::serve_tenants_with_policies`].
//!
//! All decisions are pure functions of accumulated statistics over
//! ordered containers — two runs observing the same waves produce the
//! same plans, which is what keeps the `repro placement` sweep
//! byte-identical at any `--jobs` count.
//!
//! # Examples
//!
//! ```
//! use sn_coe::placement::{ExpertStats, PrefetchPolicy};
//!
//! let mut stats = ExpertStats::new(8, 0.3);
//! // Expert 2 shows up every wave, expert 5 once: 2 becomes "hot".
//! for _ in 0..6 {
//!     stats.observe_wave(&[2]);
//! }
//! stats.observe_wave(&[2, 5]);
//! assert!(stats.rate(2) > 0.9);
//! assert!(stats.rate(5) < 0.5);
//!
//! let policy = PrefetchPolicy { threshold: 0.5, max_per_wave: 4 };
//! assert_eq!(policy.candidates(&stats), vec![2]);
//! ```

use crate::kv::{KvStats, PagedKvCache, PagedKvConfig};
use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, TimeSecs};
use std::collections::BTreeMap;

/// Online router statistics, observed once per served wave.
///
/// Everything downstream — prefetch candidates and placement plans — is
/// derived from this accumulator, so its update rule is the policy
/// layer's only coupling to the serving loop.
#[derive(Debug, Clone)]
pub struct ExpertStats {
    alpha: f64,
    hits: Vec<u64>,
    rate: Vec<f64>,
    gap_ewma: Vec<f64>,
    last_wave: Vec<Option<u64>>,
    co: BTreeMap<(usize, usize), u64>,
    waves: u64,
}

impl ExpertStats {
    /// Builds an accumulator for `n_experts` experts with EWMA smoothing
    /// factor `alpha` (weight of the newest wave; higher = faster
    /// adaptation to bursts).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < alpha <= 1.0`.
    pub fn new(n_experts: usize, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        ExpertStats {
            alpha,
            hits: vec![0; n_experts],
            rate: vec![0.0; n_experts],
            gap_ewma: vec![0.0; n_experts],
            last_wave: vec![None; n_experts],
            co: BTreeMap::new(),
            waves: 0,
        }
    }

    /// Number of experts tracked.
    pub fn n_experts(&self) -> usize {
        self.hits.len()
    }

    /// Waves observed so far.
    pub fn waves(&self) -> u64 {
        self.waves
    }

    /// Feeds one wave's routed experts (duplicates are fine; each expert
    /// counts once per wave). Updates hit counts, the presence EWMA for
    /// *every* expert (absent experts decay), inter-arrival gaps, and
    /// co-activation pairs.
    pub fn observe_wave(&mut self, active: &[usize]) {
        self.waves += 1;
        let mut unique: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&e| e < self.hits.len())
            .collect();
        unique.sort_unstable();
        unique.dedup();
        let mut cursor = 0;
        for e in 0..self.hits.len() {
            let present = cursor < unique.len() && unique[cursor] == e;
            if present {
                cursor += 1;
                self.hits[e] += 1;
                if let Some(last) = self.last_wave[e] {
                    let gap = (self.waves - last) as f64;
                    self.gap_ewma[e] = if self.gap_ewma[e] == 0.0 {
                        gap
                    } else {
                        self.alpha * gap + (1.0 - self.alpha) * self.gap_ewma[e]
                    };
                }
                self.last_wave[e] = Some(self.waves);
            }
            let x = if present { 1.0 } else { 0.0 };
            self.rate[e] = self.alpha * x + (1.0 - self.alpha) * self.rate[e];
        }
        for (i, &a) in unique.iter().enumerate() {
            for &b in &unique[i + 1..] {
                *self.co.entry((a, b)).or_insert(0) += 1;
            }
        }
    }

    /// Total hits recorded for an expert.
    pub fn hit_count(&self, expert: usize) -> u64 {
        self.hits[expert]
    }

    /// Presence EWMA: the smoothed probability that `expert` appears in
    /// a wave.
    pub fn rate(&self, expert: usize) -> f64 {
        self.rate[expert]
    }

    /// Smoothed inter-arrival gap in waves (0 until the expert has been
    /// seen twice).
    pub fn interarrival(&self, expert: usize) -> f64 {
        self.gap_ewma[expert]
    }

    /// Times `a` and `b` were routed in the same wave.
    pub fn co_activations(&self, a: usize, b: usize) -> u64 {
        let key = (a.min(b), a.max(b));
        self.co.get(&key).copied().unwrap_or(0)
    }

    /// Predicted probability that `expert` is routed next wave: its own
    /// presence EWMA, lifted by the strongest co-activation signal —
    /// `P(e | partner) · rate(partner)` over all partners it has fired
    /// with.
    pub fn predicted_probability(&self, expert: usize) -> f64 {
        let mut p = self.rate[expert];
        for (&(a, b), &count) in &self.co {
            let partner = if a == expert {
                b
            } else if b == expert {
                a
            } else {
                continue;
            };
            if self.hits[partner] > 0 {
                let conditional = count as f64 / self.hits[partner] as f64;
                p = p.max(conditional * self.rate[partner]);
            }
        }
        p.min(1.0)
    }

    /// Experts sorted hottest-first by presence EWMA (ties: lower index
    /// first).
    pub fn by_heat(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.hits.len()).collect();
        order.sort_by(|&a, &b| {
            self.rate[b]
                .partial_cmp(&self.rate[a])
                .expect("rates are finite")
                .then(a.cmp(&b))
        });
        order
    }
}

/// Issues speculative DDR→HBM loads at wave boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchPolicy {
    /// Minimum predicted-hit probability before a prefetch is worth its
    /// bandwidth. Set above 1.0 to force every prediction cold (the
    /// property harness uses this to prove prefetch never changes served
    /// outputs).
    pub threshold: f64,
    /// At most this many speculative loads *issued* per wave boundary,
    /// so a burst of candidates cannot flood the switch path. The
    /// candidate list itself is uncapped: the cluster walks it
    /// hottest-first, skips experts already resident, and stops once
    /// this many transfers have actually been staged.
    pub max_per_wave: usize,
}

impl Default for PrefetchPolicy {
    fn default() -> Self {
        PrefetchPolicy {
            threshold: 0.35,
            max_per_wave: 4,
        }
    }
}

impl PrefetchPolicy {
    /// Experts worth prefetching right now, hottest-first. Deliberately
    /// uncapped: the policy cannot see HBM residency, so it proposes the
    /// whole predicted-hot set and the cluster stages the first
    /// `max_per_wave` that are actually missing (already-resident
    /// candidates are free skips, not wasted slots).
    pub fn candidates(&self, stats: &ExpertStats) -> Vec<usize> {
        let mut picks: Vec<(usize, f64)> = (0..stats.n_experts())
            .map(|e| (e, stats.predicted_probability(e)))
            .filter(|&(_, p)| p >= self.threshold)
            .collect();
        picks.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("probabilities are finite")
                .then(a.0.cmp(&b.0))
        });
        picks.into_iter().map(|(e, _)| e).collect()
    }
}

/// Cluster topology the placement policy plans against (plain data so
/// the policy stays decoupled from [`crate::CoeCluster`] internals).
#[derive(Debug, Clone)]
pub struct PlacementView {
    /// Home node per expert.
    pub homes: Vec<usize>,
    /// Extra nodes holding a replica, per expert.
    pub replicas: Vec<Vec<usize>>,
    /// Liveness per node.
    pub healthy: Vec<bool>,
}

impl PlacementView {
    fn holds(&self, expert: usize, node: usize) -> bool {
        self.homes[expert] == node || self.replicas[expert].contains(&node)
    }

    /// Aggregate heat a node carries: Σ rate over experts homed there.
    fn node_heat(&self, stats: &ExpertStats, node: usize) -> f64 {
        (0..self.homes.len())
            .filter(|&e| self.homes[e] == node)
            .map(|e| stats.rate(e))
            .sum()
    }
}

/// What the placement policy wants the cluster to do.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementPlan {
    /// `(expert, node)`: create a replica of a hot expert on `node`.
    pub replicate: Vec<(usize, usize)>,
    /// `(expert, node)`: re-home a cold expert onto `node` to relieve a
    /// hot node.
    pub moves: Vec<(usize, usize)>,
}

impl PlacementPlan {
    /// True when the plan asks for nothing.
    pub fn is_empty(&self) -> bool {
        self.replicate.is_empty() && self.moves.is_empty()
    }
}

/// Replicates hot experts across nodes and spreads cold ones, driven by
/// observed router statistics instead of the cluster's uniform
/// round-robin heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementPolicy {
    /// Presence EWMA above which an expert is "hot" enough to replicate.
    pub hot_threshold: f64,
    /// At most this many new replicas per evaluation.
    pub max_replicas_per_eval: usize,
    /// At most this many cold-expert moves per evaluation.
    pub max_cold_moves: usize,
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        PlacementPolicy {
            hot_threshold: 0.6,
            max_replicas_per_eval: 2,
            max_cold_moves: 2,
        }
    }
}

impl PlacementPolicy {
    /// Plans replications and cold moves against the current topology.
    ///
    /// Hot experts (presence EWMA ≥ `hot_threshold`, hottest first) each
    /// gain one replica on the coolest healthy node not already holding
    /// them. Then the hottest node sheds its coldest experts to the
    /// coolest healthy node, up to `max_cold_moves` (only when the heat
    /// spread is meaningful, so a balanced cluster plans nothing).
    pub fn plan(&self, stats: &ExpertStats, view: &PlacementView) -> PlacementPlan {
        let mut plan = PlacementPlan::default();
        let healthy: Vec<usize> = (0..view.healthy.len())
            .filter(|&n| view.healthy[n])
            .collect();
        if healthy.len() < 2 {
            return plan;
        }
        let mut heat: Vec<f64> = (0..view.healthy.len())
            .map(|n| view.node_heat(stats, n))
            .collect();

        // Hot replication: hottest experts first, one new replica each.
        for e in stats.by_heat() {
            if plan.replicate.len() >= self.max_replicas_per_eval {
                break;
            }
            if stats.rate(e) < self.hot_threshold {
                break; // hottest-first order: everything after is colder
            }
            let target = healthy
                .iter()
                .copied()
                .filter(|&n| !view.holds(e, n))
                .filter(|&n| !plan.replicate.iter().any(|&(pe, pn)| pe == e && pn == n))
                .min_by(|&a, &b| {
                    heat[a]
                        .partial_cmp(&heat[b])
                        .expect("heat is finite")
                        .then(a.cmp(&b))
                });
            if let Some(node) = target {
                heat[node] += stats.rate(e);
                plan.replicate.push((e, node));
            }
        }

        // Cold spreading: relieve the hottest node with its coldest
        // experts, provided there is a real imbalance to fix.
        let hottest = healthy
            .iter()
            .copied()
            .max_by(|&a, &b| {
                heat[a]
                    .partial_cmp(&heat[b])
                    .expect("heat is finite")
                    .then(b.cmp(&a))
            })
            .expect("at least two healthy nodes");
        let coolest = healthy
            .iter()
            .copied()
            .min_by(|&a, &b| {
                heat[a]
                    .partial_cmp(&heat[b])
                    .expect("heat is finite")
                    .then(a.cmp(&b))
            })
            .expect("at least two healthy nodes");
        if hottest != coolest && heat[hottest] > 2.0 * heat[coolest].max(f64::EPSILON) {
            let mut cold: Vec<usize> = (0..view.homes.len())
                .filter(|&e| view.homes[e] == hottest)
                .collect();
            cold.sort_by(|&a, &b| {
                stats
                    .rate(a)
                    .partial_cmp(&stats.rate(b))
                    .expect("rates are finite")
                    .then(a.cmp(&b))
            });
            for e in cold.into_iter().take(self.max_cold_moves) {
                plan.moves.push((e, coolest));
            }
        }
        plan
    }
}

/// Knobs for a [`ServingPolicies`] bundle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// EWMA smoothing factor for [`ExpertStats`].
    pub ewma_alpha: f64,
    /// Speculative prefetch, or `None` to serve reactively.
    pub prefetch: Option<PrefetchPolicy>,
    /// Stats-driven placement, or `None` to keep homes static.
    pub placement: Option<PlacementPolicy>,
    /// Waves between placement evaluations (placement is heavyweight —
    /// it moves weights — so it runs on a cadence, not every wave).
    pub placement_cadence: u64,
    /// Paged KV cache under the shared HBM budget, or `None` to leave KV
    /// unmodelled.
    pub kv: Option<PagedKvConfig>,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            ewma_alpha: 0.25,
            prefetch: Some(PrefetchPolicy::default()),
            placement: Some(PlacementPolicy::default()),
            placement_cadence: 8,
            kv: Some(PagedKvConfig::default()),
        }
    }
}

/// Everything the policy layer did during a serve, for reports and
/// sweeps. Conservation: `kv_pages_in == resident + kv_pages_evicted`
/// (see [`crate::kv`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicyReport {
    /// Speculative loads issued.
    pub prefetch_issued: u64,
    /// Prefetched experts the router actually landed on next.
    pub prefetch_hits: u64,
    /// Bytes staged for experts that were never used before expiring.
    pub prefetch_wasted: Bytes,
    /// Background-transfer time the waves could not hide.
    pub transfer_exposed: TimeSecs,
    /// Hot-expert replicas created.
    pub experts_replicated: u64,
    /// Cold experts re-homed off hot nodes.
    pub cold_moves: u64,
    /// KV pages that entered HBM.
    pub kv_pages_in: u64,
    /// KV pages evicted under budget pressure.
    pub kv_pages_evicted: u64,
    /// Evicted live KV pages that had to refill DDR→HBM.
    pub kv_refaults: u64,
}

impl PolicyReport {
    /// Fraction of issued prefetches that became demand hits.
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetch_issued == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetch_issued as f64
        }
    }

    /// Folds a KV cache's final statistics into the report.
    pub fn absorb_kv(&mut self, stats: KvStats) {
        self.kv_pages_in = stats.pages_in;
        self.kv_pages_evicted = stats.pages_evicted;
        self.kv_refaults = stats.refaults;
    }
}

/// The policy bundle a serving loop drives: statistics in, prefetch
/// candidates and placement plans out, plus the paged KV cache and the
/// accumulated [`PolicyReport`].
#[derive(Debug, Clone)]
pub struct ServingPolicies {
    /// Router statistics, fed once per wave.
    pub stats: ExpertStats,
    /// Speculative prefetch policy, if enabled.
    pub prefetch: Option<PrefetchPolicy>,
    /// Placement policy, if enabled.
    pub placement: Option<PlacementPolicy>,
    /// Waves between placement evaluations.
    pub placement_cadence: u64,
    /// Paged KV cache, if enabled.
    pub kv: Option<PagedKvCache>,
    /// Running totals.
    pub report: PolicyReport,
}

impl ServingPolicies {
    /// Builds a bundle for `n_experts` experts from `config`.
    pub fn new(n_experts: usize, config: PolicyConfig) -> Self {
        ServingPolicies {
            stats: ExpertStats::new(n_experts, config.ewma_alpha),
            prefetch: config.prefetch,
            placement: config.placement,
            placement_cadence: config.placement_cadence.max(1),
            kv: config.kv.map(PagedKvCache::new),
            report: PolicyReport::default(),
        }
    }

    /// Prefetch candidates for the next wave (empty when prefetch is
    /// off — the caller's loop then does nothing, preserving
    /// bit-identity with the reactive path).
    pub fn prefetch_candidates(&self) -> Vec<usize> {
        self.prefetch
            .as_ref()
            .map(|p| p.candidates(&self.stats))
            .unwrap_or_default()
    }

    /// Cap on speculative loads issued per wave boundary (0 when
    /// prefetch is off).
    pub fn max_prefetch_per_wave(&self) -> usize {
        self.prefetch.as_ref().map(|p| p.max_per_wave).unwrap_or(0)
    }

    /// True when a placement evaluation is due after `wave` waves.
    pub fn placement_due(&self, wave: u64) -> bool {
        self.placement.is_some() && wave > 0 && wave.is_multiple_of(self.placement_cadence)
    }

    /// Plans placement actions against `view`, or `None` when placement
    /// is off.
    pub fn plan_placement(&self, view: &PlacementView) -> Option<PlacementPlan> {
        self.placement.as_ref().map(|p| p.plan(&self.stats, view))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(homes: &[usize], nodes: usize) -> PlacementView {
        PlacementView {
            homes: homes.to_vec(),
            replicas: vec![Vec::new(); homes.len()],
            healthy: vec![true; nodes],
        }
    }

    #[test]
    fn presence_ewma_tracks_hot_and_decays_cold() {
        let mut stats = ExpertStats::new(4, 0.5);
        for _ in 0..5 {
            stats.observe_wave(&[1]);
        }
        assert!(stats.rate(1) > 0.9);
        assert_eq!(stats.hit_count(1), 5);
        for _ in 0..5 {
            stats.observe_wave(&[2]);
        }
        assert!(stats.rate(1) < 0.1, "absent experts decay");
        assert!(stats.rate(2) > 0.9);
    }

    #[test]
    fn interarrival_and_coactivation_accumulate() {
        let mut stats = ExpertStats::new(4, 0.5);
        stats.observe_wave(&[0, 3]);
        stats.observe_wave(&[1]);
        stats.observe_wave(&[0, 3]);
        assert_eq!(stats.co_activations(0, 3), 2);
        assert_eq!(stats.co_activations(3, 0), 2);
        assert_eq!(stats.co_activations(0, 1), 0);
        assert!((stats.interarrival(0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_expert_in_one_wave_counts_once() {
        // A wave that routes every slot to the same expert (one hot
        // domain) must count that expert once — presence is per wave,
        // not per slot — and must not record a self co-activation.
        let mut stats = ExpertStats::new(4, 0.5);
        stats.observe_wave(&[2, 2, 2, 2]);
        assert_eq!(stats.waves(), 1);
        assert_eq!(stats.hit_count(2), 1, "duplicates collapse per wave");
        assert_eq!(stats.co_activations(2, 2), 0, "no self co-activation");
        // The EWMA saw one wave with the expert present, nothing more.
        assert!((stats.rate(2) - 0.5).abs() < 1e-9);
        stats.observe_wave(&[2, 2]);
        assert_eq!(stats.hit_count(2), 2);
        assert_eq!(stats.co_activations(2, 2), 0);
    }

    #[test]
    fn coactivation_lifts_predicted_probability() {
        let mut stats = ExpertStats::new(4, 0.5);
        // 0 and 3 always fire together; 3 alone would predict itself,
        // and 0's partnership with 3 keeps its prediction high even
        // after a wave without it.
        for _ in 0..6 {
            stats.observe_wave(&[0, 3]);
        }
        stats.observe_wave(&[3]);
        let solo = stats.rate(0);
        let predicted = stats.predicted_probability(0);
        assert!(predicted > solo, "co-activation with hot partner lifts 0");
    }

    #[test]
    fn prefetch_candidates_are_hot_first_and_threshold_filtered() {
        let mut stats = ExpertStats::new(6, 0.5);
        for _ in 0..6 {
            stats.observe_wave(&[1, 4]);
        }
        stats.observe_wave(&[2]);
        // After the [2] wave: rate(2) = 0.5 while 1 and 4 decayed to
        // ~0.49, so the freshest expert leads; the co-activated pair
        // follows (tie → lower index). The list is uncapped —
        // `max_per_wave` limits issued transfers, not candidates.
        let policy = PrefetchPolicy {
            threshold: 0.3,
            max_per_wave: 1,
        };
        assert_eq!(policy.candidates(&stats), vec![2, 1, 4]);
        let strict = PrefetchPolicy {
            threshold: 0.499,
            max_per_wave: 8,
        };
        assert_eq!(strict.candidates(&stats), vec![2]);
    }

    #[test]
    fn impossible_threshold_forces_every_prediction_cold() {
        let mut stats = ExpertStats::new(4, 0.5);
        for _ in 0..8 {
            stats.observe_wave(&[0, 1, 2, 3]);
        }
        let cold = PrefetchPolicy {
            threshold: 2.0,
            max_per_wave: 8,
        };
        assert!(cold.candidates(&stats).is_empty());
    }

    #[test]
    fn hot_experts_replicate_onto_coolest_non_holder() {
        let mut stats = ExpertStats::new(4, 0.5);
        for _ in 0..8 {
            stats.observe_wave(&[0]);
        }
        // Expert 0 homed on node 0; nodes 1 and 2 idle → replica lands
        // on node 1 (coolest, lowest index).
        let v = view(&[0, 0, 1, 2], 3);
        let plan = PlacementPolicy::default().plan(&stats, &v);
        assert_eq!(plan.replicate, vec![(0, 1)]);
    }

    #[test]
    fn balanced_cluster_plans_nothing() {
        let mut stats = ExpertStats::new(4, 0.5);
        for _ in 0..4 {
            stats.observe_wave(&[0, 1, 2, 3]);
        }
        let v = view(&[0, 1, 0, 1], 2);
        let plan = PlacementPolicy {
            hot_threshold: 2.0, // no expert clears it → no replication
            ..PlacementPolicy::default()
        }
        .plan(&stats, &v);
        assert!(plan.is_empty(), "equal heat → no cold moves either");
    }

    #[test]
    fn imbalance_triggers_cold_moves_to_coolest_node() {
        let mut stats = ExpertStats::new(4, 0.5);
        for _ in 0..8 {
            stats.observe_wave(&[0, 1]);
        }
        // Everything homed on node 0, node 1 empty → hottest node sheds
        // its coldest experts (never-routed 2 and 3) to node 1.
        let v = view(&[0, 0, 0, 0], 2);
        let plan = PlacementPolicy {
            hot_threshold: 2.0,
            max_replicas_per_eval: 0,
            max_cold_moves: 2,
        }
        .plan(&stats, &v);
        assert_eq!(plan.moves, vec![(2, 1), (3, 1)]);
    }

    #[test]
    fn single_healthy_node_plans_nothing() {
        let mut stats = ExpertStats::new(2, 0.5);
        for _ in 0..8 {
            stats.observe_wave(&[0, 1]);
        }
        let v = PlacementView {
            homes: vec![0, 0],
            replicas: vec![Vec::new(), Vec::new()],
            healthy: vec![true, false],
        };
        assert!(PlacementPolicy::default().plan(&stats, &v).is_empty());
    }

    #[test]
    fn serving_policies_cadence_and_disabled_paths() {
        let bundle = ServingPolicies::new(
            8,
            PolicyConfig {
                placement_cadence: 4,
                ..PolicyConfig::default()
            },
        );
        assert!(!bundle.placement_due(0));
        assert!(!bundle.placement_due(3));
        assert!(bundle.placement_due(4));
        assert!(bundle.placement_due(8));

        let off = ServingPolicies::new(
            8,
            PolicyConfig {
                prefetch: None,
                placement: None,
                kv: None,
                ..PolicyConfig::default()
            },
        );
        assert!(off.prefetch_candidates().is_empty());
        assert!(!off.placement_due(4));
        assert!(off.kv.is_none());
    }
}
