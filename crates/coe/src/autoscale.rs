//! SLO-driven capacity control with hysteresis.
//!
//! The controller closes the loop the paper leaves to operations: watch
//! the interactive-class latency distribution through the existing
//! sliding-window [`SloTracker`], grow the cluster when the p99 breaches
//! the high watermark, shrink it when the p99 sits comfortably below the
//! low watermark. Two guards stop it from flapping:
//!
//! - **patience** — a watermark must be breached on that many
//!   *consecutive* evaluations before the controller acts (one outlier
//!   window is noise, not a trend);
//! - **cooldown** — after acting it holds for a number of evaluations,
//!   long enough for the topology change (and the expert rebalancing it
//!   triggers) to show up in the window it watches.
//!
//! The controller only *decides*; the serving engine applies decisions
//! via [`CoeCluster::add_node`](crate::CoeCluster::add_node) /
//! [`CoeCluster::drain_node`](crate::CoeCluster::drain_node) and records
//! each action as a [`ScaleEvent`]. Everything runs in model time and is
//! deterministic: same observations, same decisions.
//!
//! # Examples
//!
//! Feed slow interactive completions into the controller until its
//! patience runs out and it asks for a node:
//!
//! ```
//! use sn_arch::{Bytes, NodeSpec, TimeSecs};
//! use sn_coe::autoscale::{AutoscaleConfig, AutoscaleController, ScaleDecision};
//! use sn_profile::{BatchObservation, MachineProfile};
//!
//! let mut ctl = AutoscaleController::new(
//!     MachineProfile::from_node(&NodeSpec::sn40l_node()),
//!     AutoscaleConfig {
//!         min_nodes: 1,
//!         max_nodes: 4,
//!         latency_high: TimeSecs::from_secs(0.5),
//!         latency_low: TimeSecs::from_secs(0.1),
//!         patience: 2,
//!         cooldown: 2,
//!         window: 8,
//!     },
//! );
//! let slow = BatchObservation {
//!     latency: TimeSecs::from_secs(1.0),
//!     ttft: TimeSecs::from_secs(0.2),
//!     prompts: 8,
//!     tokens: 160,
//!     hbm_bytes: Bytes::from_gib(64),
//!     ddr_bytes: Bytes::ZERO,
//! };
//! ctl.observe(slow);
//! assert_eq!(ctl.evaluate(2), ScaleDecision::Hold); // 1st breach: patience
//! ctl.observe(slow);
//! assert_eq!(ctl.evaluate(2), ScaleDecision::Up); // 2nd consecutive breach
//! assert_eq!(ctl.evaluate(3), ScaleDecision::Hold); // cooldown holds
//! ```

use serde::{Deserialize, Serialize};
use sn_arch::TimeSecs;
use sn_profile::{BatchObservation, MachineProfile, SloConfig, SloSnapshot, SloTracker};

/// Watermarks and damping for the capacity controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// The cluster never shrinks below this many healthy nodes.
    pub min_nodes: usize,
    /// The cluster never grows beyond this many nodes in total.
    pub max_nodes: usize,
    /// Scale up when the window p99 latency exceeds this.
    pub latency_high: TimeSecs,
    /// Scale down when the window p99 latency is below this.
    pub latency_low: TimeSecs,
    /// Consecutive breaching evaluations required before acting.
    pub patience: usize,
    /// Evaluations to hold after an action before reconsidering.
    pub cooldown: usize,
    /// Sliding-window size of the underlying [`SloTracker`].
    pub window: usize,
}

/// What the controller wants done to the cluster right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDecision {
    /// Capacity is fine (or the controller is in cooldown / undecided).
    Hold,
    /// Add a node and rebalance experts onto it.
    Up,
    /// Drain a node and take it out of service.
    Down,
}

/// One applied capacity action, recorded by the serving engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Wave index at which the action was applied.
    pub wave: usize,
    /// Model time of the action.
    pub at: TimeSecs,
    /// Which way capacity moved.
    pub decision: ScaleDecision,
    /// Healthy node count before the action.
    pub from_nodes: usize,
    /// Healthy node count after the action.
    pub to_nodes: usize,
    /// Experts re-homed by the accompanying rebalance or drain.
    pub moved_experts: usize,
    /// DDR transfer time those moves cost (control-plane background
    /// work, not on the serving critical path).
    pub transfer_time: TimeSecs,
}

/// Hysteretic p99-watching capacity controller.
#[derive(Debug)]
pub struct AutoscaleController {
    config: AutoscaleConfig,
    tracker: SloTracker,
    above: usize,
    below: usize,
    hold: usize,
}

impl AutoscaleController {
    /// Builds a controller watching a fresh sliding window measured
    /// against `profile` (a single node's profile is fine — the
    /// controller only consumes the latency quantiles).
    ///
    /// # Panics
    ///
    /// Panics on an inverted configuration: `min_nodes` of zero,
    /// `max_nodes < min_nodes`, watermarks out of order, or zero
    /// patience (a controller acting on a single sample is noise-driven
    /// by construction).
    pub fn new(profile: MachineProfile, config: AutoscaleConfig) -> Self {
        assert!(config.min_nodes >= 1, "a cluster keeps at least one node");
        assert!(
            config.max_nodes >= config.min_nodes,
            "max_nodes below min_nodes"
        );
        assert!(
            config.latency_low < config.latency_high,
            "watermarks inverted: low {} >= high {}",
            config.latency_low,
            config.latency_high,
        );
        assert!(config.patience >= 1, "patience must be at least 1");
        let tracker = SloTracker::new(
            profile,
            SloConfig {
                window: config.window,
            },
        );
        AutoscaleController {
            config,
            tracker,
            above: 0,
            below: 0,
            hold: 0,
        }
    }

    /// The configured watermarks and damping.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.config
    }

    /// Feeds one completed-request observation into the window.
    pub fn observe(&mut self, observation: BatchObservation) {
        self.tracker.record(observation);
    }

    /// The current window snapshot (`None` before any observation).
    pub fn snapshot(&self) -> Option<SloSnapshot> {
        self.tracker.snapshot()
    }

    /// One control-loop tick, called at a wave boundary with the current
    /// healthy-node count. Applies cooldown, updates the consecutive
    /// breach counters from the window p99, and returns the decision.
    /// Bounds are enforced here: at `max_nodes` a breach keeps counting
    /// but never returns `Up` (and symmetrically for `Down`).
    pub fn evaluate(&mut self, healthy_nodes: usize) -> ScaleDecision {
        if self.hold > 0 {
            self.hold -= 1;
            return ScaleDecision::Hold;
        }
        let Some(snapshot) = self.tracker.snapshot() else {
            return ScaleDecision::Hold;
        };
        let p99 = snapshot.batch_latency_p99;
        if p99 > self.config.latency_high {
            self.above += 1;
            self.below = 0;
        } else if p99 < self.config.latency_low {
            self.below += 1;
            self.above = 0;
        } else {
            self.above = 0;
            self.below = 0;
        }
        if self.above >= self.config.patience && healthy_nodes < self.config.max_nodes {
            self.above = 0;
            self.hold = self.config.cooldown;
            ScaleDecision::Up
        } else if self.below >= self.config.patience && healthy_nodes > self.config.min_nodes {
            self.below = 0;
            self.hold = self.config.cooldown;
            ScaleDecision::Down
        } else {
            ScaleDecision::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_arch::{Bytes, NodeSpec};

    fn config() -> AutoscaleConfig {
        AutoscaleConfig {
            min_nodes: 2,
            max_nodes: 4,
            latency_high: TimeSecs::from_millis(100.0),
            latency_low: TimeSecs::from_millis(20.0),
            patience: 2,
            cooldown: 3,
            window: 8,
        }
    }

    fn controller() -> AutoscaleController {
        AutoscaleController::new(MachineProfile::from_node(&NodeSpec::sn40l_node()), config())
    }

    fn obs(latency_ms: f64) -> BatchObservation {
        BatchObservation {
            latency: TimeSecs::from_millis(latency_ms),
            ttft: TimeSecs::from_millis(latency_ms / 2.0),
            prompts: 1,
            tokens: 10,
            hbm_bytes: Bytes::ZERO,
            ddr_bytes: Bytes::ZERO,
        }
    }

    #[test]
    fn empty_window_holds() {
        let mut ctl = controller();
        assert_eq!(ctl.evaluate(2), ScaleDecision::Hold);
    }

    #[test]
    fn patience_requires_consecutive_breaches() {
        let mut ctl = controller();
        ctl.observe(obs(500.0));
        assert_eq!(ctl.evaluate(2), ScaleDecision::Hold, "first breach waits");
        // A healthy window in between resets the streak.
        for _ in 0..8 {
            ctl.observe(obs(50.0));
        }
        assert_eq!(ctl.evaluate(2), ScaleDecision::Hold);
        ctl.observe(obs(5000.0));
        for _ in 0..7 {
            ctl.observe(obs(5000.0));
        }
        assert_eq!(ctl.evaluate(2), ScaleDecision::Hold, "streak restarted");
        assert_eq!(ctl.evaluate(2), ScaleDecision::Up, "second in a row acts");
    }

    #[test]
    fn cooldown_suppresses_back_to_back_actions() {
        let mut ctl = controller();
        for _ in 0..8 {
            ctl.observe(obs(5000.0));
        }
        assert_eq!(ctl.evaluate(2), ScaleDecision::Hold);
        assert_eq!(ctl.evaluate(2), ScaleDecision::Up);
        // Still breached, but the controller holds through cooldown.
        for _ in 0..3 {
            assert_eq!(ctl.evaluate(3), ScaleDecision::Hold, "cooldown");
        }
        assert_eq!(ctl.evaluate(3), ScaleDecision::Hold, "patience restarts");
        assert_eq!(ctl.evaluate(3), ScaleDecision::Up);
    }

    #[test]
    fn bounds_clamp_decisions() {
        let mut ctl = controller();
        for _ in 0..8 {
            ctl.observe(obs(5000.0));
        }
        ctl.evaluate(4);
        assert_eq!(ctl.evaluate(4), ScaleDecision::Hold, "already at max");
        let mut ctl = controller();
        for _ in 0..8 {
            ctl.observe(obs(1.0));
        }
        ctl.evaluate(2);
        assert_eq!(ctl.evaluate(2), ScaleDecision::Hold, "already at min");
        assert_eq!(ctl.evaluate(3), ScaleDecision::Down, "room to shrink");
    }

    #[test]
    fn quiet_mid_band_window_never_moves() {
        let mut ctl = controller();
        for _ in 0..32 {
            ctl.observe(obs(50.0));
        }
        for _ in 0..16 {
            assert_eq!(ctl.evaluate(3), ScaleDecision::Hold);
        }
    }

    #[test]
    #[should_panic(expected = "watermarks inverted")]
    fn inverted_watermarks_are_rejected() {
        let mut cfg = config();
        cfg.latency_low = cfg.latency_high;
        let _ = AutoscaleController::new(MachineProfile::from_node(&NodeSpec::sn40l_node()), cfg);
    }
}
