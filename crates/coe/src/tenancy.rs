//! Multi-tenant serving: admission control, load shedding, preemption,
//! and SLO-driven autoscaling over the cluster, proven under chaos.
//!
//! The paper's serving story assumes a cooperative single stream; a
//! production Samba-CoE deployment faces *named tenants* with different
//! service classes misbehaving together. This module layers that
//! frontend over [`CoeCluster::serve_wave`]:
//!
//! - **Tenants and classes.** Each [`TenantSpec`] carries an SLO class
//!   ([`SloClass::Interactive`] or [`SloClass::Batch`]), a seeded
//!   arrival process, and a token-bucket rate limit. Per-tenant streams
//!   merge into one deterministic arrival sequence ordered by
//!   `(arrival, tenant, index)`.
//! - **Admission and shedding.** Requests pass the tenant's token
//!   bucket, then a bounded per-class queue. Every loss is a first-class
//!   [`ShedRecord`] with a [`ShedReason`] — rate-limited, queue-full,
//!   timed out, or capacity lost — never a silent drop, and the
//!   conservation identity `admitted = completed + shed + pending` is
//!   checkable on every report.
//! - **Priority and preemption.** Waves fill interactive-first; when
//!   interactive demand saturates a wave, in-flight batch chunks are
//!   preempted at the wave boundary (progress kept, resumed later).
//! - **Autoscaling.** An optional [`AutoscaleController`] watches
//!   interactive completions; its decisions apply as
//!   [`CoeCluster::add_node`] + [`CoeCluster::rebalance_experts`] or
//!   [`CoeCluster::drain_node`], each recorded as a `ScaleEvent`.
//! - **Chaos.** An optional [`ChaosSchedule`] crashes/restores
//!   correlated node sets at model-time instants and degrades the wave
//!   fabric inside fault windows — so the degradation modes above are
//!   exercised exactly when capacity matters most.
//!
//! Everything is model time and seed-deterministic: two runs of the same
//! scenario produce byte-identical reports.
//!
//! # Examples
//!
//! Merge two tenants' seeded arrival streams into the deterministic
//! submission order the serving engine consumes:
//!
//! ```
//! use sn_coe::scheduler::ArrivalPattern;
//! use sn_coe::tenancy::{merged_stream, TenancyConfig, TenantSpec};
//! use sn_coe::{RateLimit, SloClass};
//!
//! let tenants = [
//!     TenantSpec {
//!         name: "chat".into(),
//!         class: SloClass::Interactive,
//!         pattern: ArrivalPattern::Poisson { rate_rps: 100.0 },
//!         requests: 4,
//!         rate_limit: RateLimit::unlimited(),
//!     },
//!     TenantSpec {
//!         name: "lab".into(),
//!         class: SloClass::Batch,
//!         pattern: ArrivalPattern::Burst,
//!         requests: 2,
//!         rate_limit: RateLimit::unlimited(),
//!     },
//! ];
//! let stream = merged_stream(&tenants, &TenancyConfig::default());
//! assert_eq!(stream.len(), 6);
//! // Global submission indices follow (arrival, tenant, index) order,
//! // so the t = 0 batch burst lands ahead of the Poisson arrivals.
//! assert!(stream.windows(2).all(|w| w[0].arrival <= w[1].arrival));
//! assert_eq!(stream[0].submit, 0);
//! ```

use crate::autoscale::{AutoscaleController, ScaleDecision, ScaleEvent};
use crate::cluster::{CoeCluster, WavePlacement, WaveSlot};
use crate::router::Prompt;
use crate::scheduler::{ArrivalPattern, ArrivalProcess};
use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, TimeSecs};
use sn_faults::{ChaosEventKind, ChaosSchedule, FaultDecision, FaultSite};
use sn_obs::Obs;
use sn_profile::BatchObservation;
use sn_runtime::coe::CoeError;
use sn_trace::Counter;
use std::collections::VecDeque;

/// Service class a tenant's traffic belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SloClass {
    /// Latency-sensitive: admitted first, preempts batch, short chunks.
    Interactive,
    /// Throughput traffic: best-effort, preemptible, longer decodes.
    Batch,
}

impl SloClass {
    /// Human-readable class name for tables.
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Batch => "batch",
        }
    }
}

/// Token-bucket rate limit for one tenant, in requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateLimit {
    /// Bucket capacity: the burst a tenant may land at once.
    pub burst: f64,
    /// Sustained refill rate, requests per second of model time.
    pub refill_per_sec: f64,
}

impl RateLimit {
    /// No rate limiting for this tenant.
    pub fn unlimited() -> Self {
        RateLimit {
            burst: f64::INFINITY,
            refill_per_sec: 0.0,
        }
    }

    /// A sustained rate with a burst allowance.
    pub fn per_sec(refill_per_sec: f64, burst: f64) -> Self {
        RateLimit {
            burst,
            refill_per_sec,
        }
    }
}

/// One named tenant: class, traffic shape, and rate limit.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name (reports key summaries by it).
    pub name: String,
    /// Service class of every request this tenant submits.
    pub class: SloClass,
    /// Seeded arrival process shape.
    pub pattern: ArrivalPattern,
    /// Requests the tenant submits over the run.
    pub requests: usize,
    /// Token-bucket admission limit.
    pub rate_limit: RateLimit,
}

/// Per-class queueing and SLO policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassPolicy {
    /// Bounded queue depth; arrivals beyond it shed as
    /// [`ShedReason::QueueFull`] (backpressure).
    pub queue_cap: usize,
    /// A request still queued this long after arrival sheds as
    /// [`ShedReason::TimedOut`].
    pub deadline: TimeSecs,
    /// End-to-end latency bound for goodput accounting (and, for
    /// interactive, the p99 target the autoscaler defends).
    pub slo_bound: TimeSecs,
    /// Decode chunks a request needs: its output is
    /// `chunks * wave_tokens` tokens, one chunk per wave.
    pub chunks: usize,
}

/// Tenancy-engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenancyConfig {
    /// Seed for every per-tenant arrival/prompt stream.
    pub seed: u64,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Decode tokens served per wave chunk.
    pub wave_tokens: usize,
    /// Wave admission slots per healthy node.
    pub per_node_slots: usize,
    /// Interactive-class policy.
    pub interactive: ClassPolicy,
    /// Batch-class policy.
    pub batch: ClassPolicy,
    /// Safety valve: after this many waves the run sheds whatever is
    /// left as capacity loss instead of looping forever.
    pub max_waves: usize,
}

impl TenancyConfig {
    /// The policy governing `class`.
    pub fn policy(&self, class: SloClass) -> &ClassPolicy {
        match class {
            SloClass::Interactive => &self.interactive,
            SloClass::Batch => &self.batch,
        }
    }
}

impl Default for TenancyConfig {
    fn default() -> Self {
        TenancyConfig {
            seed: 0x007e_4a47,
            prompt_tokens: 512,
            wave_tokens: 8,
            per_node_slots: 4,
            interactive: ClassPolicy {
                queue_cap: 32,
                deadline: TimeSecs::from_millis(500.0),
                slo_bound: TimeSecs::from_millis(250.0),
                chunks: 1,
            },
            batch: ClassPolicy {
                queue_cap: 128,
                deadline: TimeSecs::from_secs(30.0),
                slo_bound: TimeSecs::from_secs(10.0),
                chunks: 4,
            },
            max_waves: 100_000,
        }
    }
}

/// One request of the merged multi-tenant arrival stream.
#[derive(Debug, Clone)]
pub struct TenantRequest {
    /// Index into the scenario's tenant slice.
    pub tenant: usize,
    /// The tenant's class.
    pub class: SloClass,
    /// Global submission index (merged-stream order).
    pub submit: usize,
    /// The prompt to serve.
    pub prompt: Prompt,
    /// Arrival in model time.
    pub arrival: TimeSecs,
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShedReason {
    /// The tenant's token bucket was empty at arrival.
    RateLimited,
    /// The class queue was at capacity (backpressure).
    QueueFull,
    /// Queued past the class deadline.
    TimedOut,
    /// Lost to capacity: no survivor could host the expert, or the run
    /// ended (total outage / wave budget) with the request unserved.
    CapacityLost,
}

impl ShedReason {
    /// Snake-case reason name for tables.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::RateLimited => "rate_limited",
            ShedReason::QueueFull => "queue_full",
            ShedReason::TimedOut => "timed_out",
            ShedReason::CapacityLost => "capacity_lost",
        }
    }
}

/// A shed request: a first-class outcome, not a silent drop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedRecord {
    /// Tenant index.
    pub tenant: usize,
    /// The tenant's class.
    pub class: SloClass,
    /// Global submission index.
    pub submit: usize,
    /// When the request arrived.
    pub arrival: TimeSecs,
    /// When it was shed.
    pub at: TimeSecs,
    /// Why it was shed.
    pub reason: ShedReason,
    /// True when the request had been admitted past ingress (queue entry)
    /// before being shed — the flag the conservation identity sorts by.
    pub was_admitted: bool,
}

/// A completed request's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantRecord {
    /// Tenant index.
    pub tenant: usize,
    /// The tenant's class.
    pub class: SloClass,
    /// Global submission index.
    pub submit: usize,
    /// Arrival in model time.
    pub arrival: TimeSecs,
    /// When the request first entered a serving wave.
    pub admitted: TimeSecs,
    /// When its first token landed (end of its prefill chunk).
    pub first_token: TimeSecs,
    /// When its last chunk finished.
    pub completed: TimeSecs,
    /// Tokens produced.
    pub output_tokens: usize,
    /// Times the request was bumped from a wave by interactive traffic.
    pub preemptions: u32,
}

impl TenantRecord {
    /// Arrival to first wave entry.
    pub fn queue_delay(&self) -> TimeSecs {
        self.admitted - self.arrival
    }

    /// Arrival to first token.
    pub fn ttft(&self) -> TimeSecs {
        self.first_token - self.arrival
    }

    /// Arrival to completion.
    pub fn latency(&self) -> TimeSecs {
        self.completed - self.arrival
    }
}

/// Per-tenant roll-up for tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSummary {
    /// Tenant name.
    pub name: String,
    /// Tenant class.
    pub class: SloClass,
    /// Requests the tenant submitted.
    pub submitted: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests shed (all reasons).
    pub shed: usize,
    /// End-to-end p99 latency over completions (zero when none).
    pub latency_p99: TimeSecs,
}

/// Per-wave phase/occupancy snapshot recorded at every wave boundary
/// of [`CoeCluster::serve_tenants`]-family runs. Pure readers of loop
/// state — collecting them never perturbs the serving timeline, so the
/// tracked report fields stay bit-identical with or without consumers.
/// Downstream, `sn-surrogate` rolls these up into anchor features.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveFeature {
    /// Wave index (0-based).
    pub wave: usize,
    /// Model time the wave started serving.
    pub start: TimeSecs,
    /// Wave latency after chaos stretching.
    pub latency: TimeSecs,
    /// Occupied slots this wave served.
    pub slots: usize,
    /// Slot capacity at composition time (`per_node_slots × healthy`).
    pub capacity: usize,
    /// Occupied slots holding interactive-class requests.
    pub interactive_slots: usize,
    /// Occupied slots holding batch-class requests.
    pub batch_slots: usize,
    /// Occupied slots running prefill (first chunk) vs pure decode.
    pub prefill_slots: usize,
    /// Interactive queue depth after composition.
    pub queue_interactive: usize,
    /// Batch queue depth after composition.
    pub queue_batch: usize,
    /// Healthy nodes when the wave completed.
    pub healthy_nodes: usize,
    /// Warm expert activations in this wave.
    pub expert_hits: usize,
    /// Cold expert activations in this wave.
    pub expert_misses: usize,
    /// Chaos fabric factor applied to the wave (1.0 = clean).
    pub chaos_factor: f64,
}

/// Result of a multi-tenant serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenancyReport {
    /// Completed requests, in completion order.
    pub records: Vec<TenantRecord>,
    /// Shed requests, in shed order.
    pub shed: Vec<ShedRecord>,
    /// Applied capacity actions, in order.
    pub scale_events: Vec<ScaleEvent>,
    /// Serving waves executed.
    pub waves: usize,
    /// Model time from t = 0 to the last wave's completion.
    pub makespan: TimeSecs,
    /// Requests submitted across all tenants.
    pub submitted: usize,
    /// Requests admitted past ingress (token bucket + queue bound).
    pub admitted: usize,
    /// Requests still in the system when the run returned (always zero:
    /// every exit path completes or sheds what remains; kept explicit so
    /// the conservation identity reads in full).
    pub pending: usize,
    /// Preemption events (one per bumped chunk).
    pub preemptions: usize,
    /// Experts re-homed by reactive failover during waves.
    pub rehomed_experts: usize,
    /// Warm expert activations across all waves (HBM-resident on
    /// demand — including activations a prefetch staged).
    pub expert_hits: usize,
    /// Cold expert activations across all waves (each paid a DDR→HBM
    /// switch on the serving path).
    pub expert_misses: usize,
    /// Total DDR→HBM switch time charged on serving paths.
    pub switch_time: TimeSecs,
    /// Waves retransmitted due to a chaos fault-window `Fail` draw on
    /// the socket fabric (each doubled its wave's latency).
    pub chaos_retransmits: usize,
    /// Waves stretched by a chaos fault-window `Slow` draw on the
    /// socket fabric.
    pub chaos_slowdowns: usize,
    /// Healthy nodes when the run returned.
    pub final_nodes: usize,
    /// Per-wave phase/occupancy snapshots, one per executed wave (in
    /// wave order). Collected unconditionally from loop state the run
    /// already computes, so tracked metrics are unaffected.
    pub wave_features: Vec<WaveFeature>,
    /// Tenant names and classes, index-aligned with record fields.
    pub tenants: Vec<(String, SloClass)>,
    /// The engine configuration the run used (carries the class SLO
    /// bounds goodput accounting needs).
    pub config: TenancyConfig,
    /// What the policy layer did, when the run used
    /// [`CoeCluster::serve_tenants_with_policies`] with a bundle; `None`
    /// on plain runs.
    pub policy: Option<crate::placement::PolicyReport>,
}

impl TenancyReport {
    /// Requests shed for `reason`.
    pub fn shed_by(&self, reason: ShedReason) -> usize {
        self.shed.iter().filter(|s| s.reason == reason).count()
    }

    /// Requests rejected at ingress (never admitted).
    pub fn rejected(&self) -> usize {
        self.shed.iter().filter(|s| !s.was_admitted).count()
    }

    /// Admitted requests shed later (timeout, preemption starvation,
    /// capacity loss).
    pub fn shed_after_admission(&self) -> usize {
        self.shed.iter().filter(|s| s.was_admitted).count()
    }

    /// The conservation identity every run must satisfy:
    /// `submitted = admitted + rejected` and
    /// `admitted = completed + shed-after-admission + pending`.
    pub fn conservation_holds(&self) -> bool {
        self.submitted == self.admitted + self.rejected()
            && self.admitted == self.records.len() + self.shed_after_admission() + self.pending
    }

    /// HBM hit rate over demand expert activations: warm over
    /// warm-plus-cold. 1.0 when nothing activated (no switches is a
    /// perfect outcome for this metric).
    pub fn expert_hit_rate(&self) -> f64 {
        let total = self.expert_hits + self.expert_misses;
        if total == 0 {
            1.0
        } else {
            self.expert_hits as f64 / total as f64
        }
    }

    /// Completed records of one class.
    pub fn class_records(&self, class: SloClass) -> impl Iterator<Item = &TenantRecord> {
        self.records.iter().filter(move |r| r.class == class)
    }

    /// Nearest-rank end-to-end latency percentile for a class; zero when
    /// the class completed nothing (NaN-safe by construction).
    pub fn latency_percentile(&self, class: SloClass, q: f64) -> TimeSecs {
        let mut secs: Vec<f64> = self
            .class_records(class)
            .map(|r| r.latency().as_secs())
            .collect();
        sn_profile::sort_for_quantiles(&mut secs);
        TimeSecs::from_secs(sn_profile::nearest_rank_sorted(&secs, q))
    }

    /// Nearest-rank TTFT percentile for a class; zero when empty.
    pub fn ttft_percentile(&self, class: SloClass, q: f64) -> TimeSecs {
        let mut secs: Vec<f64> = self
            .class_records(class)
            .map(|r| r.ttft().as_secs())
            .collect();
        sn_profile::sort_for_quantiles(&mut secs);
        TimeSecs::from_secs(sn_profile::nearest_rank_sorted(&secs, q))
    }

    /// Goodput for a class: completions inside the class SLO bound per
    /// second of makespan. Zero on an empty run (no NaN).
    pub fn goodput_rps(&self, class: SloClass) -> f64 {
        let bound = self.config.policy(class).slo_bound;
        let good = self
            .class_records(class)
            .filter(|r| r.latency() <= bound)
            .count();
        if self.makespan.is_zero() {
            0.0
        } else {
            good as f64 / self.makespan.as_secs()
        }
    }

    /// Per-tenant roll-ups, in tenant order.
    pub fn tenant_summaries(&self) -> Vec<TenantSummary> {
        self.tenants
            .iter()
            .enumerate()
            .map(|(t, (name, class))| {
                let completed: Vec<&TenantRecord> =
                    self.records.iter().filter(|r| r.tenant == t).collect();
                let shed = self.shed.iter().filter(|s| s.tenant == t).count();
                let mut secs: Vec<f64> = completed.iter().map(|r| r.latency().as_secs()).collect();
                sn_profile::sort_for_quantiles(&mut secs);
                TenantSummary {
                    name: name.clone(),
                    class: *class,
                    submitted: completed.len() + shed,
                    completed: completed.len(),
                    shed,
                    latency_p99: TimeSecs::from_secs(sn_profile::nearest_rank_sorted(&secs, 0.99)),
                }
            })
            .collect()
    }
}

/// Builds the deterministic merged arrival stream: each tenant's seeded
/// process generates independently, then streams merge ordered by
/// `(arrival, tenant index, per-tenant index)` and take global
/// submission indices in that order.
pub fn merged_stream(tenants: &[TenantSpec], config: &TenancyConfig) -> Vec<TenantRequest> {
    let mut merged: Vec<(TimeSecs, usize, usize, Prompt)> = Vec::new();
    for (t, spec) in tenants.iter().enumerate() {
        let seed = tenant_seed(config.seed, t);
        let process = ArrivalProcess::new(seed, config.prompt_tokens, spec.pattern);
        for (i, r) in process.generate(spec.requests).into_iter().enumerate() {
            merged.push((r.arrival, t, i, r.prompt));
        }
    }
    merged.sort_by(|a, b| {
        a.0.as_secs()
            .total_cmp(&b.0.as_secs())
            .then_with(|| a.1.cmp(&b.1))
            .then_with(|| a.2.cmp(&b.2))
    });
    merged
        .into_iter()
        .enumerate()
        .map(|(submit, (arrival, tenant, _, prompt))| TenantRequest {
            tenant,
            class: tenants[tenant].class,
            submit,
            prompt,
            arrival,
        })
        .collect()
}

/// Splitmix64-style per-tenant stream seed, so tenants draw independent
/// arrival and prompt streams from one scenario seed.
fn tenant_seed(seed: u64, tenant: usize) -> u64 {
    let mut z = seed ^ (tenant as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Token bucket refilled on model time; deterministic because the
/// merged stream visits it in nondecreasing arrival order per tenant.
#[derive(Debug)]
struct TokenBucket {
    level: f64,
    last: TimeSecs,
    limit: RateLimit,
}

impl TokenBucket {
    fn new(limit: RateLimit) -> Self {
        assert!(
            limit.burst >= 0.0 && limit.refill_per_sec >= 0.0,
            "negative rate limit"
        );
        TokenBucket {
            level: limit.burst,
            last: TimeSecs::ZERO,
            limit,
        }
    }

    fn admit(&mut self, now: TimeSecs) -> bool {
        let dt = (now - self.last).as_secs().max(0.0);
        self.level = (self.level + dt * self.limit.refill_per_sec).min(self.limit.burst);
        self.last = now;
        if self.level >= 1.0 {
            self.level -= 1.0;
            true
        } else {
            false
        }
    }
}

/// A request inside the engine (queued or in flight).
#[derive(Debug, Clone)]
struct Pending {
    tenant: usize,
    class: SloClass,
    submit: usize,
    prompt: Prompt,
    arrival: TimeSecs,
    /// First wave entry, set on first admission to a wave.
    admitted: Option<TimeSecs>,
    /// First token landing, set by the first served chunk.
    first_token: Option<TimeSecs>,
    chunks_left: usize,
    output_tokens: usize,
    preemptions: u32,
}

impl CoeCluster {
    /// Runs the multi-tenant serving engine to completion: merges the
    /// tenants' arrival streams, applies admission control, serves
    /// priority waves via [`CoeCluster::serve_wave`], applies `chaos`
    /// crash/restore events and fault windows at wave boundaries, and
    /// lets `autoscaler` grow/shrink the cluster between waves.
    ///
    /// Every submitted request ends exactly one way — completed, or shed
    /// with a reason — so [`TenancyReport::conservation_holds`] is an
    /// invariant of every return path (a run that hits a total outage
    /// with no scheduled recovery sheds the remainder as
    /// [`ShedReason::CapacityLost`] rather than erroring).
    ///
    /// # Errors
    ///
    /// Propagates unexpected runtime errors from expert placement;
    /// exhausting capacity is *not* an error (it sheds).
    pub fn serve_tenants(
        &mut self,
        tenants: &[TenantSpec],
        config: &TenancyConfig,
        chaos: Option<&ChaosSchedule>,
        autoscaler: Option<&mut AutoscaleController>,
    ) -> Result<TenancyReport, CoeError> {
        self.serve_tenants_with_policies(tenants, config, chaos, autoscaler, None)
    }

    /// [`CoeCluster::serve_tenants`] with an optional
    /// [`ServingPolicies`](crate::placement::ServingPolicies)
    /// bundle driving predictive prefetch, stats-driven placement, and
    /// paged KV management at wave boundaries (PR 7):
    ///
    /// - after each wave, the router pass feeds
    ///   [`crate::placement::ExpertStats`] and the prefetch policy stages
    ///   predicted-hot experts DDR→HBM for the *next* wave;
    /// - on a cadence, the placement policy replicates hot experts and
    ///   spreads cold ones via [`CoeCluster::apply_placement`];
    /// - each served chunk touches the [`crate::kv::PagedKvCache`];
    ///   evictions ride [`Counter::KvPagesEvicted`] and refaulted live
    ///   pages charge a DDR→HBM refill.
    ///
    /// Background transfers (prefetch, placement, KV refills) overlap
    /// the next wave's compute; only the excess beyond the wave's
    /// latency is exposed on the model clock (and reported as
    /// `transfer_exposed`), so mispredictions cost real bandwidth and —
    /// under short waves — real time.
    ///
    /// With `policies = None` every hook is a no-op and the arithmetic
    /// path is exactly [`CoeCluster::serve_tenants`]' — reports come out
    /// bit-identical (modulo the `policy` field, which is `None`).
    ///
    /// # Errors
    ///
    /// Propagates unexpected runtime errors from expert placement;
    /// exhausting capacity is *not* an error (it sheds).
    pub fn serve_tenants_with_policies(
        &mut self,
        tenants: &[TenantSpec],
        config: &TenancyConfig,
        chaos: Option<&ChaosSchedule>,
        autoscaler: Option<&mut AutoscaleController>,
        policies: Option<&mut crate::placement::ServingPolicies>,
    ) -> Result<TenancyReport, CoeError> {
        self.serve_tenants_observed(
            tenants,
            config,
            chaos,
            autoscaler,
            policies,
            &Obs::disabled(),
        )
    }

    /// [`CoeCluster::serve_tenants_with_policies`] with an [`Obs`]
    /// observability pipeline attached (PR 8): at every wave boundary the
    /// engine samples labeled per-tenant/per-node series (wave latency,
    /// queue depths, HBM hit rate, per-tenant SLO good/bad counters),
    /// evaluates the pipeline's alert rules, and feeds the flight
    /// recorder — chaos crashes and fault-window openings open
    /// post-mortem captures, as do firing alerts.
    ///
    /// The pipeline only *reads* serving state: a run with an enabled
    /// `obs` produces a [`TenancyReport`] bit-identical to the same run
    /// with `Obs::disabled()` (the same contract `sn-trace` keeps).
    /// Alert transitions and frozen bundles ride the tracer as
    /// [`Counter::AlertsFired`], [`Counter::AlertsResolved`], and
    /// [`Counter::PostmortemsCaptured`].
    ///
    /// # Errors
    ///
    /// Propagates unexpected runtime errors from expert placement;
    /// exhausting capacity is *not* an error (it sheds).
    pub fn serve_tenants_observed(
        &mut self,
        tenants: &[TenantSpec],
        config: &TenancyConfig,
        chaos: Option<&ChaosSchedule>,
        mut autoscaler: Option<&mut AutoscaleController>,
        mut policies: Option<&mut crate::placement::ServingPolicies>,
        obs: &Obs,
    ) -> Result<TenancyReport, CoeError> {
        let tracer = self.tracer().clone();
        let stream = merged_stream(tenants, config);
        let submitted = stream.len();
        let chaos_events = chaos.map(|c| c.events()).unwrap_or_default();
        let mut buckets: Vec<TokenBucket> = tenants
            .iter()
            .map(|t| TokenBucket::new(t.rate_limit))
            .collect();
        let mut iq: VecDeque<Pending> = VecDeque::new();
        let mut bq: VecDeque<Pending> = VecDeque::new();
        let mut inflight: Vec<Pending> = Vec::new();
        let mut records: Vec<TenantRecord> = Vec::new();
        let mut shed: Vec<ShedRecord> = Vec::new();
        let mut scale_events: Vec<ScaleEvent> = Vec::new();
        let mut wave_features: Vec<WaveFeature> = Vec::new();
        let mut clock = TimeSecs::ZERO;
        let mut next_request = 0usize;
        let mut next_event = 0usize;
        let mut admitted_count = 0usize;
        let mut preemptions = 0usize;
        let mut rehomed = 0usize;
        let mut retransmits = 0usize;
        let mut slowdowns = 0usize;
        let mut waves = 0usize;
        let mut expert_hits = 0usize;
        let mut expert_misses = 0usize;
        let mut switch_time = TimeSecs::ZERO;
        // Background-transfer debt: prefetch, placement, and KV-refill
        // time incurred at a wave boundary, drained against the next
        // wave's latency (hidden) with the excess exposed on the clock.
        let mut transfer_debt = TimeSecs::ZERO;
        let mut last_placement_wave: Option<usize> = None;
        let kv_switch_bandwidth = self.node_spec().model_switch_bandwidth();
        // Chaos fault-window openings in start order (stable sort keeps
        // declaration order for ties): each crossing opens a post-mortem
        // capture. Only materialized when the pipeline records.
        let mut window_opens: Vec<(TimeSecs, FaultSite)> = if obs.is_enabled() {
            chaos
                .map(|c| c.windows().iter().map(|w| (w.start, w.site)).collect())
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        window_opens.sort_by(|a, b| a.0.as_secs().total_cmp(&b.0.as_secs()));
        let mut next_window = 0usize;

        let shed_one = |shed: &mut Vec<ShedRecord>,
                        wave: usize,
                        tenant: usize,
                        class: SloClass,
                        submit: usize,
                        arrival: TimeSecs,
                        at: TimeSecs,
                        reason: ShedReason,
                        was_admitted: bool| {
            shed.push(ShedRecord {
                tenant,
                class,
                submit,
                arrival,
                at,
                reason,
                was_admitted,
            });
            tracer.count(Counter::RequestsShed, 1);
            if obs.is_enabled() {
                let tenant_name = tenants[tenant].name.as_str();
                let class_name = class.name();
                let labels = [("slo_class", class_name), ("tenant", tenant_name)];
                obs.add("requests_shed", &labels, 1.0);
                obs.add(
                    "requests_shed_by_reason",
                    &[
                        ("reason", reason.name()),
                        ("slo_class", class_name),
                        ("tenant", tenant_name),
                    ],
                    1.0,
                );
                // Sheds burn SLO budget: a request the platform lost is a
                // bad outcome for its tenant's error budget.
                obs.add("slo_bad", &labels, 1.0);
                obs.add("slo_total", &labels, 1.0);
                obs.event(
                    wave,
                    at,
                    None,
                    "shed",
                    &format!("{tenant_name} {}", reason.name()),
                    1.0,
                );
            }
        };

        'serve: loop {
            // Ingress: admit (or shed) everything that has arrived.
            while next_request < stream.len() && stream[next_request].arrival <= clock {
                let r = &stream[next_request];
                next_request += 1;
                tracer.count(Counter::TenantRequests, 1);
                let policy = config.policy(r.class);
                if !buckets[r.tenant].admit(r.arrival) {
                    shed_one(
                        &mut shed,
                        waves,
                        r.tenant,
                        r.class,
                        r.submit,
                        r.arrival,
                        r.arrival,
                        ShedReason::RateLimited,
                        false,
                    );
                    continue;
                }
                let queue = match r.class {
                    SloClass::Interactive => &mut iq,
                    SloClass::Batch => &mut bq,
                };
                if queue.len() >= policy.queue_cap {
                    shed_one(
                        &mut shed,
                        waves,
                        r.tenant,
                        r.class,
                        r.submit,
                        r.arrival,
                        r.arrival,
                        ShedReason::QueueFull,
                        false,
                    );
                    continue;
                }
                admitted_count += 1;
                tracer.count(Counter::RequestsAdmitted, 1);
                queue.push_back(Pending {
                    tenant: r.tenant,
                    class: r.class,
                    submit: r.submit,
                    prompt: r.prompt.clone(),
                    arrival: r.arrival,
                    admitted: None,
                    first_token: None,
                    chunks_left: policy.chunks.max(1),
                    output_tokens: policy.chunks.max(1) * config.wave_tokens,
                    preemptions: 0,
                });
            }

            // Idle: jump model time to the next arrival, or finish.
            if iq.is_empty() && bq.is_empty() && inflight.is_empty() {
                if next_request >= stream.len() {
                    break 'serve;
                }
                clock = clock.max(stream[next_request].arrival);
                continue 'serve;
            }

            // Chaos timeline: crashes and restores due by now.
            while next_event < chaos_events.len() && chaos_events[next_event].at <= clock {
                let ev = chaos_events[next_event];
                next_event += 1;
                if ev.node >= self.nodes() {
                    continue;
                }
                match ev.kind {
                    ChaosEventKind::Crash => {
                        self.fail_node(ev.node);
                        obs.event(waves, clock, Some(ev.node), "node_crash", "", 0.0);
                        obs.incident("chaos_outage", waves, clock);
                    }
                    ChaosEventKind::Restore => {
                        self.restore_node(ev.node);
                        obs.event(waves, clock, Some(ev.node), "node_restore", "", 0.0);
                    }
                }
            }

            // Chaos fault windows opening by now each start a post-mortem
            // capture (a crash window here is redundant with the crash
            // event above; the recorder extends the open capture instead
            // of forking a second one).
            while next_window < window_opens.len() && window_opens[next_window].0 <= clock {
                let (start, site) = window_opens[next_window];
                next_window += 1;
                obs.event(waves, clock, None, "fault_window_open", site.name(), 0.0);
                obs.incident(
                    &format!("fault_window:{}", site.name()),
                    waves,
                    start.max(clock),
                );
            }

            // Deadline sheds: queues are arrival-ordered, pop stale fronts.
            for (queue, policy) in [(&mut iq, &config.interactive), (&mut bq, &config.batch)] {
                while let Some(front) = queue.front() {
                    if clock - front.arrival > policy.deadline {
                        let p = queue.pop_front().expect("peeked");
                        shed_one(
                            &mut shed,
                            waves,
                            p.tenant,
                            p.class,
                            p.submit,
                            p.arrival,
                            clock,
                            ShedReason::TimedOut,
                            true,
                        );
                    } else {
                        break;
                    }
                }
            }
            if iq.is_empty() && bq.is_empty() && inflight.is_empty() {
                continue 'serve;
            }

            // Total outage: wait for a scheduled recovery, else shed out.
            if self.healthy_nodes() == 0 {
                let revival = chaos_events[next_event..]
                    .iter()
                    .find(|e| e.kind == ChaosEventKind::Restore && e.node < self.nodes());
                match revival {
                    Some(e) => {
                        clock = clock.max(e.at);
                        continue 'serve;
                    }
                    None => break 'serve,
                }
            }

            // Wave budget safety valve.
            if waves >= config.max_waves {
                break 'serve;
            }

            // Capacity control at the wave boundary.
            if let Some(controller) = autoscaler.as_deref_mut() {
                let healthy = self.healthy_nodes();
                match controller.evaluate(healthy) {
                    ScaleDecision::Hold => {}
                    ScaleDecision::Up => {
                        self.add_node();
                        let rebalance = self.rebalance_experts();
                        tracer.count(Counter::ScaleUps, 1);
                        scale_events.push(ScaleEvent {
                            wave: waves,
                            at: clock,
                            decision: ScaleDecision::Up,
                            from_nodes: healthy,
                            to_nodes: self.healthy_nodes(),
                            moved_experts: rebalance.moved_experts,
                            transfer_time: rebalance.transfer_time,
                        });
                        obs.event(
                            waves,
                            clock,
                            None,
                            "scale_up",
                            "",
                            rebalance.moved_experts as f64,
                        );
                    }
                    ScaleDecision::Down => {
                        let victim = (0..self.nodes())
                            .rev()
                            .find(|i| !self.failed_nodes().contains(i));
                        if let Some(victim) = victim {
                            if let Ok(rebalance) = self.drain_node(victim) {
                                tracer.count(Counter::ScaleDowns, 1);
                                scale_events.push(ScaleEvent {
                                    wave: waves,
                                    at: clock,
                                    decision: ScaleDecision::Down,
                                    from_nodes: healthy,
                                    to_nodes: self.healthy_nodes(),
                                    moved_experts: rebalance.moved_experts,
                                    transfer_time: rebalance.transfer_time,
                                });
                                obs.event(
                                    waves,
                                    clock,
                                    None,
                                    "scale_down",
                                    "",
                                    rebalance.moved_experts as f64,
                                );
                            }
                        }
                    }
                }
            }

            // Stats-driven placement on its cadence: replicate hot
            // experts, spread cold ones. Weight movement is backgroundable
            // (it joins the transfer debt, not the serving path).
            if let Some(pol) = policies.as_deref_mut() {
                if pol.placement_due(waves as u64) && last_placement_wave != Some(waves) {
                    last_placement_wave = Some(waves);
                    if let Some(plan) = pol.plan_placement(&self.placement_view()) {
                        if !plan.is_empty() {
                            let applied = self.apply_placement(&plan);
                            pol.report.experts_replicated += applied.replicated;
                            pol.report.cold_moves += applied.moves;
                            transfer_debt += applied.transfer_time;
                        }
                    }
                }
            }

            // Compose the wave: continuing interactive, new interactive,
            // then batch into whatever slots remain — interactive demand
            // preempts in-flight batch at this boundary.
            let capacity = config.per_node_slots.max(1) * self.healthy_nodes();
            let mut wave: Vec<Pending> = Vec::new();
            let mut continuing_batch: Vec<Pending> = Vec::new();
            for p in inflight.drain(..) {
                match p.class {
                    SloClass::Interactive => wave.push(p),
                    SloClass::Batch => continuing_batch.push(p),
                }
            }
            while wave.len() < capacity {
                let Some(mut p) = iq.pop_front() else { break };
                if p.admitted.is_none() {
                    p.admitted = Some(clock);
                }
                wave.push(p);
            }
            let mut bumped: Vec<Pending> = Vec::new();
            for mut p in continuing_batch {
                if wave.len() < capacity {
                    wave.push(p);
                } else {
                    p.preemptions += 1;
                    preemptions += 1;
                    tracer.count(Counter::RequestsPreempted, 1);
                    bumped.push(p);
                }
            }
            for p in bumped.into_iter().rev() {
                bq.push_front(p);
            }
            while wave.len() < capacity {
                let Some(mut p) = bq.pop_front() else { break };
                if p.admitted.is_none() {
                    p.admitted = Some(clock);
                }
                wave.push(p);
            }

            // Serve it.
            let slots: Vec<WaveSlot> = wave
                .iter()
                .map(|p| WaveSlot {
                    prompt: p.prompt.clone(),
                    prefill: p.first_token.is_none(),
                })
                .collect();
            // Composition counts for the per-wave feature snapshot —
            // taken here because the settle loop consumes `wave`.
            let interactive_slots = wave
                .iter()
                .filter(|p| p.class == SloClass::Interactive)
                .count();
            let prefill_slots = slots.iter().filter(|s| s.prefill).count();
            let outcome = match self.serve_wave(&slots, config.wave_tokens) {
                Ok(outcome) => outcome,
                Err(CoeError::NoHealthyNodes) => {
                    // Fault-plan draws downed the rest mid-wave: requeue
                    // and let the outage branch decide next iteration.
                    let mut interactive: Vec<Pending> = Vec::new();
                    let mut batch: Vec<Pending> = Vec::new();
                    for p in wave {
                        match p.class {
                            SloClass::Interactive => interactive.push(p),
                            SloClass::Batch => batch.push(p),
                        }
                    }
                    for p in interactive.into_iter().rev() {
                        iq.push_front(p);
                    }
                    for p in batch.into_iter().rev() {
                        bq.push_front(p);
                    }
                    continue 'serve;
                }
                Err(e) => return Err(e),
            };
            waves += 1;
            tracer.count(Counter::AdmissionWaves, 1);
            rehomed += outcome.rehomed_experts;
            expert_hits += outcome.expert_hits;
            expert_misses += outcome.expert_misses;
            switch_time += outcome.switch_time;

            // Chaos fault windows degrade the wave fabric: a slowdown
            // stretches the wave, a failure retransmits it (×2).
            let mut factor = 1.0;
            if let Some(c) = chaos {
                match c.decide(FaultSite::SocketLink, clock) {
                    FaultDecision::Ok => {}
                    FaultDecision::Slow(f) => {
                        factor = f;
                        slowdowns += 1;
                    }
                    FaultDecision::Fail => {
                        factor = 2.0;
                        retransmits += 1;
                    }
                }
            }
            let wave_start = clock;
            let wave_latency = if factor == 1.0 {
                outcome.latency
            } else {
                outcome.latency * factor
            };
            clock = wave_start + wave_latency;

            // Drain background-transfer debt against this wave: the wave's
            // compute hides what it can; the rest stalls the clock.
            if !transfer_debt.is_zero() {
                let hidden =
                    TimeSecs::from_secs(transfer_debt.as_secs().min(wave_latency.as_secs()));
                let exposed = transfer_debt - hidden;
                if !exposed.is_zero() {
                    clock += exposed;
                    if let Some(pol) = policies.as_deref_mut() {
                        pol.report.transfer_exposed += exposed;
                    }
                }
                transfer_debt = TimeSecs::ZERO;
            }

            // Settle slots: complete, keep in flight, or shed drops.
            for (i, mut p) in wave.into_iter().enumerate() {
                match outcome.placements[i] {
                    WavePlacement::Dropped => {
                        if let Some(pol) = policies.as_deref_mut() {
                            if let Some(kv) = pol.kv.as_mut() {
                                kv.finish(p.submit as u64);
                            }
                        }
                        shed_one(
                            &mut shed,
                            waves - 1,
                            p.tenant,
                            p.class,
                            p.submit,
                            p.arrival,
                            clock,
                            ShedReason::CapacityLost,
                            true,
                        );
                    }
                    WavePlacement::Served {
                        first_token, done, ..
                    } => {
                        if p.first_token.is_none() {
                            let offset = if factor == 1.0 {
                                first_token
                            } else {
                                first_token * factor
                            };
                            p.first_token = Some(wave_start + offset);
                        }
                        p.chunks_left -= 1;
                        // Paged KV: the request's context grew by one
                        // chunk. Evictions are pressure; refaulted live
                        // pages refill DDR→HBM as background debt.
                        if let Some(pol) = policies.as_deref_mut() {
                            if let Some(kv) = pol.kv.as_mut() {
                                let total = config.policy(p.class).chunks.max(1);
                                let done_chunks = total - p.chunks_left;
                                let tokens =
                                    config.prompt_tokens + done_chunks * config.wave_tokens;
                                let touch = kv.touch(p.submit as u64, tokens);
                                if touch.evicted > 0 {
                                    tracer.count(Counter::KvPagesEvicted, touch.evicted);
                                }
                                if touch.refaulted > 0 {
                                    let bytes = kv.config().page_bytes * touch.refaulted;
                                    transfer_debt += bytes / kv_switch_bandwidth;
                                }
                                if p.chunks_left == 0 {
                                    kv.finish(p.submit as u64);
                                }
                            }
                        }
                        if p.chunks_left > 0 {
                            inflight.push(p);
                            continue;
                        }
                        let offset = if factor == 1.0 { done } else { done * factor };
                        let record = TenantRecord {
                            tenant: p.tenant,
                            class: p.class,
                            submit: p.submit,
                            arrival: p.arrival,
                            admitted: p.admitted.expect("served implies admitted"),
                            first_token: p.first_token.expect("first chunk set it"),
                            completed: wave_start + offset,
                            output_tokens: p.output_tokens,
                            preemptions: p.preemptions,
                        };
                        if record.class == SloClass::Interactive {
                            if let Some(controller) = autoscaler.as_deref_mut() {
                                controller.observe(BatchObservation {
                                    latency: record.latency(),
                                    ttft: record.ttft(),
                                    prompts: 1,
                                    tokens: record.output_tokens,
                                    hbm_bytes: Bytes::ZERO,
                                    ddr_bytes: Bytes::ZERO,
                                });
                            }
                        }
                        if obs.is_enabled() {
                            let tenant_name = tenants[record.tenant].name.as_str();
                            let labels =
                                [("slo_class", record.class.name()), ("tenant", tenant_name)];
                            obs.add("completions", &labels, 1.0);
                            obs.add("slo_total", &labels, 1.0);
                            if record.latency() > config.policy(record.class).slo_bound {
                                obs.add("slo_bad", &labels, 1.0);
                            }
                        }
                        records.push(record);
                    }
                }
            }

            // Router statistics + predictive prefetch at the wave
            // boundary: observe where this wave's router pass went, then
            // stage the predicted-hot set for the *next* wave (stale
            // speculation expires as wasted bandwidth at the next
            // boundary). No-ops without a policy bundle.
            if let Some(pol) = policies.as_deref_mut() {
                let active: Vec<usize> = slots
                    .iter()
                    .map(|s| self.routed_expert_cached(&s.prompt))
                    .collect();
                pol.stats.observe_wave(&active);
                let candidates = pol.prefetch_candidates();
                if !candidates.is_empty() {
                    let cap = pol.max_prefetch_per_wave();
                    let issued = self.prefetch_experts(&candidates, &outcome.prompts_per_node, cap);
                    pol.report.prefetch_issued += issued.issued;
                    transfer_debt += issued.transfer_time;
                }
            }

            // Per-wave feature snapshot: pure readers of state the loop
            // already computed, recorded unconditionally so observed and
            // blind runs carry identical streams.
            wave_features.push(WaveFeature {
                wave: waves - 1,
                start: wave_start,
                latency: wave_latency,
                slots: slots.len(),
                capacity,
                interactive_slots,
                batch_slots: slots.len() - interactive_slots,
                prefill_slots,
                queue_interactive: iq.len(),
                queue_batch: bq.len(),
                healthy_nodes: self.healthy_nodes(),
                expert_hits: outcome.expert_hits,
                expert_misses: outcome.expert_misses,
                chaos_factor: factor,
            });

            // Wave boundary: flush this wave's gauges into the telemetry
            // pipeline, evaluate alert rules, tick the flight recorder.
            // Pure readers of loop state — with obs disabled (or enabled)
            // the serving timeline is bit-identical.
            if obs.is_enabled() {
                let wave_idx = waves - 1;
                obs.gauge("wave_latency_ms", &[], wave_latency.as_secs() * 1e3);
                obs.gauge("healthy_nodes", &[], self.healthy_nodes() as f64);
                let activations = outcome.expert_hits + outcome.expert_misses;
                if activations > 0 {
                    obs.gauge(
                        "hbm_hit_rate",
                        &[],
                        outcome.expert_hits as f64 / activations as f64,
                    );
                }
                obs.gauge(
                    "queue_depth",
                    &[("slo_class", "interactive")],
                    iq.len() as f64,
                );
                obs.gauge("queue_depth", &[("slo_class", "batch")], bq.len() as f64);
                let seen = obs.end_wave(wave_idx, clock);
                if seen.fired > 0 {
                    tracer.count(Counter::AlertsFired, seen.fired as u64);
                }
                if seen.resolved > 0 {
                    tracer.count(Counter::AlertsResolved, seen.resolved as u64);
                }
                if seen.postmortem_closed {
                    tracer.count(Counter::PostmortemsCaptured, 1);
                }
            }
        }

        // Whatever is still in the system (total outage or wave budget)
        // sheds as capacity loss; requests never ingested shed at their
        // arrival, un-admitted.
        for p in iq.drain(..).chain(bq.drain(..)).chain(inflight.drain(..)) {
            shed_one(
                &mut shed,
                waves,
                p.tenant,
                p.class,
                p.submit,
                p.arrival,
                clock,
                ShedReason::CapacityLost,
                true,
            );
        }
        while next_request < stream.len() {
            let r = &stream[next_request];
            next_request += 1;
            tracer.count(Counter::TenantRequests, 1);
            shed_one(
                &mut shed,
                waves,
                r.tenant,
                r.class,
                r.submit,
                r.arrival,
                r.arrival.max(clock),
                ShedReason::CapacityLost,
                false,
            );
        }

        // Settle the policy bundle: expire leftover speculation as
        // waste, then fold the cluster's prefetch totals and the KV
        // cache's conservation stats into the report.
        if let Some(pol) = policies.as_deref_mut() {
            self.expire_prefetches();
            let (hits, wasted) = self.prefetch_totals();
            pol.report.prefetch_hits = hits;
            pol.report.prefetch_wasted = wasted;
            if let Some(kv) = pol.kv.as_ref() {
                pol.report.absorb_kv(kv.stats());
            }
        }

        // One last boundary so final-drain sheds land in the series and a
        // still-open capture gets counted (finalize() will freeze it).
        if obs.is_enabled() {
            let seen = obs.end_wave(waves, clock);
            if seen.fired > 0 {
                tracer.count(Counter::AlertsFired, seen.fired as u64);
            }
            if seen.resolved > 0 {
                tracer.count(Counter::AlertsResolved, seen.resolved as u64);
            }
            if seen.postmortem_closed {
                tracer.count(Counter::PostmortemsCaptured, 1);
            }
            if obs.is_capturing() {
                tracer.count(Counter::PostmortemsCaptured, 1);
            }
        }

        Ok(TenancyReport {
            records,
            shed,
            scale_events,
            waves,
            makespan: clock,
            submitted,
            admitted: admitted_count,
            pending: 0,
            preemptions,
            rehomed_experts: rehomed,
            expert_hits,
            expert_misses,
            switch_time,
            chaos_retransmits: retransmits,
            chaos_slowdowns: slowdowns,
            final_nodes: self.healthy_nodes(),
            wave_features,
            tenants: tenants.iter().map(|t| (t.name.clone(), t.class)).collect(),
            config: config.clone(),
            policy: policies.as_deref().map(|p| p.report),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::ExpertLibrary;
    use sn_arch::NodeSpec;

    fn cluster(nodes: usize) -> CoeCluster {
        CoeCluster::new(NodeSpec::sn40l_node(), nodes, ExpertLibrary::new(120), 512).expect("fits")
    }

    fn interactive_tenant(requests: usize) -> TenantSpec {
        TenantSpec {
            name: "chat".into(),
            class: SloClass::Interactive,
            pattern: ArrivalPattern::Burst,
            requests,
            rate_limit: RateLimit::unlimited(),
        }
    }

    fn batch_tenant(requests: usize) -> TenantSpec {
        TenantSpec {
            name: "lab".into(),
            class: SloClass::Batch,
            pattern: ArrivalPattern::Burst,
            requests,
            rate_limit: RateLimit::unlimited(),
        }
    }

    #[test]
    fn merged_stream_is_sorted_and_deterministic() {
        let tenants = [
            TenantSpec {
                pattern: ArrivalPattern::Poisson { rate_rps: 50.0 },
                ..interactive_tenant(20)
            },
            TenantSpec {
                pattern: ArrivalPattern::BurstTrain {
                    size: 5,
                    period: TimeSecs::from_millis(40.0),
                },
                ..batch_tenant(15)
            },
        ];
        let config = TenancyConfig::default();
        let a = merged_stream(&tenants, &config);
        let b = merged_stream(&tenants, &config);
        assert_eq!(a.len(), 35);
        assert!(
            a.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "arrival-ordered"
        );
        assert!(a.iter().enumerate().all(|(i, r)| r.submit == i));
        let fmt = |s: &[TenantRequest]| format!("{s:?}");
        assert_eq!(fmt(&a), fmt(&b), "same seed, same stream");
    }

    #[test]
    fn burst_of_interactive_requests_all_complete() {
        let mut cluster = cluster(2);
        let report = cluster
            .serve_tenants(
                &[interactive_tenant(12)],
                &TenancyConfig::default(),
                None,
                None,
            )
            .unwrap();
        assert_eq!(report.submitted, 12);
        assert_eq!(report.admitted, 12);
        assert_eq!(report.records.len(), 12);
        assert!(report.shed.is_empty());
        assert!(report.conservation_holds());
        assert!(report.waves >= 2, "12 requests > 8 slots: several waves");
        for r in &report.records {
            assert!(r.arrival <= r.admitted);
            assert!(r.admitted < r.first_token);
            assert!(r.first_token <= r.completed);
            assert!(r.completed <= report.makespan);
            assert_eq!(r.output_tokens, 8);
        }
        assert!(report.goodput_rps(SloClass::Interactive) > 0.0);
    }

    #[test]
    fn token_bucket_sheds_rate_limited_requests() {
        let mut cluster = cluster(2);
        let tenant = TenantSpec {
            rate_limit: RateLimit::per_sec(0.0, 5.0),
            ..interactive_tenant(12)
        };
        let report = cluster
            .serve_tenants(&[tenant], &TenancyConfig::default(), None, None)
            .unwrap();
        assert_eq!(report.shed_by(ShedReason::RateLimited), 7, "burst of 5");
        assert_eq!(report.records.len(), 5);
        assert_eq!(report.rejected(), 7);
        assert!(report.conservation_holds());
    }

    #[test]
    fn bounded_queue_sheds_queue_full() {
        let mut cluster = cluster(2);
        let mut config = TenancyConfig::default();
        config.interactive.queue_cap = 4;
        let report = cluster
            .serve_tenants(&[interactive_tenant(30)], &config, None, None)
            .unwrap();
        // A t = 0 burst of 30 hits a queue bounded at 4: the burst beyond
        // the cap sheds as backpressure.
        assert_eq!(report.shed_by(ShedReason::QueueFull), 26);
        assert_eq!(report.records.len(), 4);
        assert!(report.conservation_holds());
    }

    #[test]
    fn interactive_preempts_inflight_batch() {
        let mut cluster = cluster(2);
        let mut config = TenancyConfig::default();
        config.batch.chunks = 6;
        config.per_node_slots = 2; // 4 slots over 2 nodes
        let tenants = [
            // Batch backlog lands first and occupies the wave...
            batch_tenant(8),
            // ...then an interactive burst arrives and wants every slot.
            TenantSpec {
                pattern: ArrivalPattern::Poisson { rate_rps: 400.0 },
                ..interactive_tenant(24)
            },
        ];
        let report = cluster
            .serve_tenants(&tenants, &config, None, None)
            .unwrap();
        assert!(report.preemptions > 0, "batch chunks must get bumped");
        assert!(report.conservation_holds());
        let batch_done: Vec<&TenantRecord> = report.class_records(SloClass::Batch).collect();
        assert!(
            batch_done.iter().any(|r| r.preemptions > 0),
            "some completed batch request resumed after preemption"
        );
        assert!(
            report.latency_percentile(SloClass::Interactive, 0.99)
                < report.latency_percentile(SloClass::Batch, 0.99),
            "priority shows in the per-class tail"
        );
    }

    #[test]
    fn deadline_sheds_timed_out_requests() {
        let mut cluster = cluster(1);
        let mut config = TenancyConfig {
            per_node_slots: 1,
            ..TenancyConfig::default()
        };
        config.interactive.deadline = TimeSecs::from_millis(1.0);
        config.interactive.queue_cap = 64;
        let report = cluster
            .serve_tenants(&[interactive_tenant(24)], &config, None, None)
            .unwrap();
        assert!(
            report.shed_by(ShedReason::TimedOut) > 0,
            "a 1 ms deadline on a deep queue must expire requests"
        );
        assert!(report.conservation_holds());
    }

    #[test]
    fn correlated_outage_degrades_and_recovers() {
        let mut cluster = cluster(3);
        let config = TenancyConfig {
            batch: ClassPolicy {
                chunks: 3,
                ..TenancyConfig::default().batch
            },
            ..TenancyConfig::default()
        };
        // Kill 2 of 3 nodes almost immediately, restore mid-run (the
        // scenario's single-survivor makespan is ~1 s).
        let chaos = ChaosSchedule::new(5).with_outage(
            &[1, 2],
            TimeSecs::from_millis(1.0),
            Some(TimeSecs::from_millis(500.0)),
        );
        let tenants = [interactive_tenant(16), batch_tenant(16)];
        let report = cluster
            .serve_tenants(&tenants, &config, Some(&chaos), None)
            .unwrap();
        assert!(report.conservation_holds());
        assert!(
            report.rehomed_experts > 0,
            "dead homes must re-home onto the survivor"
        );
        assert_eq!(report.final_nodes, 3, "restored after the window");
        assert_eq!(
            report.records.len() + report.shed.len(),
            32,
            "every request accounted"
        );
    }

    #[test]
    fn permanent_total_outage_sheds_everything() {
        let mut cluster = cluster(2);
        let chaos = ChaosSchedule::new(1).with_outage(&[0, 1], TimeSecs::ZERO, None);
        let report = cluster
            .serve_tenants(
                &[interactive_tenant(6)],
                &TenancyConfig::default(),
                Some(&chaos),
                None,
            )
            .unwrap();
        assert_eq!(report.records.len(), 0);
        assert_eq!(report.shed_by(ShedReason::CapacityLost), 6);
        assert_eq!(report.final_nodes, 0);
        assert!(report.conservation_holds());
    }

    #[test]
    fn reports_are_deterministic_across_runs() {
        let run = || {
            let mut cluster = cluster(2);
            let tenants = [
                TenantSpec {
                    pattern: ArrivalPattern::Poisson { rate_rps: 120.0 },
                    ..interactive_tenant(20)
                },
                batch_tenant(10),
            ];
            let chaos = ChaosSchedule::new(9)
                .with_outage(
                    &[1],
                    TimeSecs::from_millis(50.0),
                    Some(TimeSecs::from_millis(400.0)),
                )
                .with_window(
                    FaultSite::SocketLink,
                    sn_faults::FaultSpec::slow(1.0, 1.5),
                    TimeSecs::from_millis(50.0),
                    TimeSecs::from_millis(400.0),
                );
            cluster
                .serve_tenants(&tenants, &TenancyConfig::default(), Some(&chaos), None)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same scenario, byte-identical report");
    }

    #[test]
    fn forced_cold_prefetch_is_bit_identical_to_policy_off() {
        // Property: speculation never changes served outputs. With the
        // prefetch threshold above 1.0 every prediction is forced cold, so
        // no prefetch is ever issued — the report must match the policy-off
        // run byte for byte (modulo the `policy` attachment itself).
        use crate::placement::{PolicyConfig, PrefetchPolicy, ServingPolicies};
        let tenants = [
            TenantSpec {
                pattern: ArrivalPattern::Poisson { rate_rps: 150.0 },
                ..interactive_tenant(20)
            },
            batch_tenant(12),
        ];
        let config = TenancyConfig::default();
        let chaos = ChaosSchedule::new(11).with_outage(
            &[1],
            TimeSecs::from_millis(40.0),
            Some(TimeSecs::from_millis(300.0)),
        );

        let mut plain = cluster(2);
        let want = plain
            .serve_tenants(&tenants, &config, Some(&chaos), None)
            .unwrap();

        let mut speculative = cluster(2);
        let mut policies = ServingPolicies::new(
            120,
            PolicyConfig {
                prefetch: Some(PrefetchPolicy {
                    threshold: 2.0, // unreachable: probabilities cap at 1.0
                    max_per_wave: 8,
                }),
                placement: None,
                kv: None,
                ..PolicyConfig::default()
            },
        );
        let mut got = speculative
            .serve_tenants_with_policies(&tenants, &config, Some(&chaos), None, Some(&mut policies))
            .unwrap();

        let policy = got.policy.take().expect("policy report attached");
        assert_eq!(policy.prefetch_issued, 0, "forced cold: nothing issued");
        assert_eq!(policy.prefetch_wasted, Bytes::ZERO);
        assert_eq!(want, got, "speculation must not perturb serving");
    }

    #[test]
    fn policy_bundle_reports_prefetch_and_kv_activity() {
        use crate::placement::{PolicyConfig, ServingPolicies};
        use crate::PagedKvConfig;
        // A 48-slot wave on one node cycles through more distinct experts
        // than the 36-expert HBM budget holds, so plain LRU thrashes: the
        // experts a wave starts with were evicted by the experts it ended
        // with. Those victims stay hot in the router statistics, making
        // them exactly what the prefetcher should re-stage.
        let mut cluster = cluster(1);
        let mut config = TenancyConfig {
            per_node_slots: 56,
            ..TenancyConfig::default()
        };
        config.interactive.chunks = 4;
        config.interactive.queue_cap = 64;
        config.interactive.deadline = TimeSecs::from_secs(30.0);
        let tenants = [interactive_tenant(56), batch_tenant(16)];
        let mut policies = ServingPolicies::new(
            120,
            PolicyConfig {
                kv: Some(PagedKvConfig {
                    page_tokens: 16,
                    page_bytes: Bytes::from_mib(8),
                    // Tiny budget (8 pages) forces eviction + refault churn.
                    budget: Bytes::from_mib(64),
                }),
                ..PolicyConfig::default()
            },
        );
        let report = cluster
            .serve_tenants_with_policies(&tenants, &config, None, None, Some(&mut policies))
            .unwrap();
        assert!(report.conservation_holds());
        let policy = report.policy.expect("policy report attached");
        assert!(policy.prefetch_issued > 0, "hot experts should be staged");
        assert!(policy.kv_pages_in > 0, "decode allocates KV pages");
        assert!(
            policy.kv_pages_evicted > 0,
            "a 64 MiB budget cannot hold every sequence"
        );
        assert!(
            policy.kv_pages_in >= policy.kv_pages_evicted,
            "conservation: evictions never exceed allocations"
        );
        assert!(
            report.expert_hits + report.expert_misses > 0,
            "activation accounting populated"
        );
        let rate = report.expert_hit_rate();
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn policy_off_report_leaves_policy_field_empty() {
        let mut cluster = cluster(1);
        let report = cluster
            .serve_tenants(
                &[interactive_tenant(4)],
                &TenancyConfig::default(),
                None,
                None,
            )
            .unwrap();
        assert!(report.policy.is_none());
        assert!(
            report.expert_misses > 0,
            "first activation of each routed expert is cold"
        );
        let rate = report.expert_hit_rate();
        assert!((0.0..1.0).contains(&rate));
    }

    #[test]
    fn empty_tenant_list_yields_an_empty_report() {
        let mut cluster = cluster(1);
        let report = cluster
            .serve_tenants(&[], &TenancyConfig::default(), None, None)
            .unwrap();
        assert_eq!(report.submitted, 0);
        assert_eq!(report.waves, 0);
        assert!(report.makespan.is_zero());
        assert!(report.conservation_holds());
        assert_eq!(
            report.latency_percentile(SloClass::Interactive, 0.99),
            TimeSecs::ZERO
        );
        assert_eq!(report.goodput_rps(SloClass::Batch), 0.0);
    }
}
