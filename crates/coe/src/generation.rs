//! KV-growth-aware generation latency.
//!
//! A decode step's cost grows with the KV cache it reads; over a long
//! generation the total is quadratic-ish in tokens. The comparison model
//! (Figure 12 / Table III) uses a fixed representative KV length, matching
//! the paper's 20/200-token cases; this module fits the full linear
//! step-cost model `step(kv) = base + slope * kv` from two compiled
//! operating points, for latency planning over arbitrary generation
//! lengths.

use serde::{Deserialize, Serialize};
use sn_arch::{Calibration, NodeSpec, Orchestration, TimeSecs};
use sn_baseline::{GpuExecutor, LaunchMode};
use sn_compiler::{Compiler, FusionPolicy};
use sn_models::{build, Phase, TransformerConfig};
use sn_runtime::executor::NodeExecutor;

/// Linear decode-step cost model plus a prefill cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationModel {
    /// Prefill time per prompt token (amortized).
    pub prefill_per_token: TimeSecs,
    /// Decode step cost at zero KV.
    pub base: TimeSecs,
    /// Added decode cost per cached token.
    pub slope_per_kv_token: TimeSecs,
}

impl GenerationModel {
    /// Fits the model from two `(kv_len, step_time)` samples and one
    /// prefill measurement.
    ///
    /// # Panics
    ///
    /// Panics if the sample KV lengths coincide.
    pub fn fit(
        prefill_tokens: usize,
        prefill_time: TimeSecs,
        samples: [(usize, TimeSecs); 2],
    ) -> Self {
        let [(k0, t0), (k1, t1)] = samples;
        assert_ne!(k0, k1, "need two distinct KV lengths");
        let slope = (t1.as_secs() - t0.as_secs()) / (k1 as f64 - k0 as f64);
        let base = t0.as_secs() - slope * k0 as f64;
        GenerationModel {
            prefill_per_token: prefill_time / prefill_tokens as f64,
            base: TimeSecs::from_secs(base.max(0.0)),
            slope_per_kv_token: TimeSecs::from_secs(slope.max(0.0)),
        }
    }

    /// Fits the SN40L node model by compiling and costing the real graphs.
    pub fn sn40l(cfg: &TransformerConfig, tp: usize) -> Self {
        let calib = Calibration::baseline();
        let node = NodeSpec::sn40l_node();
        let compiler = Compiler::new(node.socket.clone(), calib.clone());
        let exec = NodeExecutor::new(node, calib);
        let cost = |phase| {
            let g = build(cfg, phase, 1, tp).expect("graph builds");
            let exe = compiler
                .compile(&g, FusionPolicy::Spatial)
                .expect("compiles");
            exec.run(&exe, Orchestration::Hardware).total
        };
        let prefill_tokens = 1024;
        GenerationModel::fit(
            prefill_tokens,
            cost(Phase::Prefill {
                prompt_tokens: prefill_tokens,
            }),
            [
                (1024, cost(Phase::Decode { past_tokens: 1024 })),
                (8192, cost(Phase::Decode { past_tokens: 8192 })),
            ],
        )
    }

    /// Fits a DGX model through the roofline executor.
    pub fn dgx(dgx: &sn_arch::DgxSpec, cfg: &TransformerConfig, tp: usize) -> Self {
        let exec = GpuExecutor::new(dgx.clone(), Calibration::baseline());
        let cost = |phase| {
            let g = build(cfg, phase, 1, tp).expect("graph builds");
            exec.run(&g, LaunchMode::CudaGraph).total
        };
        let prefill_tokens = 1024;
        GenerationModel::fit(
            prefill_tokens,
            cost(Phase::Prefill {
                prompt_tokens: prefill_tokens,
            }),
            [
                (1024, cost(Phase::Decode { past_tokens: 1024 })),
                (8192, cost(Phase::Decode { past_tokens: 8192 })),
            ],
        )
    }

    /// Cost of one decode step at a given KV length.
    pub fn step(&self, kv_tokens: usize) -> TimeSecs {
        self.base + self.slope_per_kv_token * kv_tokens as f64
    }

    /// Total latency to prefill `prompt` tokens and generate `tokens`
    /// outputs (the KV cache grows every step).
    pub fn generate(&self, prompt: usize, tokens: usize) -> TimeSecs {
        let prefill = self.prefill_per_token * prompt as f64;
        // sum_{t=0..tokens-1} step(prompt + t)
        let n = tokens as f64;
        let kv_sum = prompt as f64 * n + n * (n - 1.0) / 2.0;
        prefill + self.base * n + self.slope_per_kv_token * kv_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_arch::DgxSpec;

    fn model() -> GenerationModel {
        GenerationModel::sn40l(&TransformerConfig::llama2_7b(), 8)
    }

    #[test]
    fn steps_grow_with_kv() {
        let m = model();
        assert!(m.step(8192) > m.step(1024));
        assert!(
            m.slope_per_kv_token.as_secs() > 0.0,
            "KV reads must cost something"
        );
    }

    #[test]
    fn generation_is_superlinear_in_tokens() {
        let m = model();
        let short = m.generate(1024, 100);
        let long = m.generate(1024, 200);
        assert!(
            long.as_secs() > 2.0 * short.as_secs() - m.prefill_per_token.as_secs() * 1024.0 * 1.01,
            "doubling tokens more than doubles decode time"
        );
    }

    #[test]
    fn fit_recovers_exact_linear_costs() {
        let m = GenerationModel::fit(
            100,
            TimeSecs::from_millis(10.0),
            [
                (1000, TimeSecs::from_millis(2.0)),
                (3000, TimeSecs::from_millis(4.0)),
            ],
        );
        assert!((m.base.as_millis() - 1.0).abs() < 1e-9);
        assert!((m.step(2000).as_millis() - 3.0).abs() < 1e-9);
        assert!((m.prefill_per_token.as_millis() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sn40l_beats_dgx_across_generation_lengths() {
        let cfg = TransformerConfig::llama2_7b();
        let sn = GenerationModel::sn40l(&cfg, 8);
        let dgx = GenerationModel::dgx(&DgxSpec::dgx_a100(), &cfg, 8);
        for tokens in [20usize, 200, 1000] {
            let ratio = dgx.generate(1024, tokens) / sn.generate(1024, tokens);
            assert!(ratio > 1.5, "{tokens} tokens: ratio {ratio:.2}");
        }
    }

    #[test]
    #[should_panic(expected = "distinct KV lengths")]
    fn degenerate_fit_panics() {
        let _ = GenerationModel::fit(
            10,
            TimeSecs::from_millis(1.0),
            [
                (100, TimeSecs::from_millis(1.0)),
                (100, TimeSecs::from_millis(2.0)),
            ],
        );
    }
}
