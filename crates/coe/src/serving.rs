//! End-to-end Samba-CoE serving on the SN40L node (Figure 9).
//!
//! One inference: (1) run the router (its weights are pinned in HBM),
//! (2) copy the routed expert's weights DDR→HBM unless already resident,
//! (3) run the expert — prefill plus an autoregressive decode loop. With
//! batched requests the router runs once over the batch, the required
//! experts are activated (deduplicated), and each (prompt, expert) pair
//! executes sequentially (§VI-B).

use crate::expert::ExpertLibrary;
use crate::lanes::RouteTable;
use crate::router::{Prompt, Router};
use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, Calibration, Flops, NodeSpec, Orchestration, TimeSecs};
use sn_compiler::{Compiler, Executable, FusionPolicy};
use sn_faults::{FaultDecision, FaultPlan, FaultSite, Recovery, RetryPolicy};
use sn_models::{build, Phase};
use sn_profile::{
    BatchObservation, MachineProfile, PhaseKind, PhaseSample, ServeAttribution, SloConfig,
    SloSnapshot, SloTracker,
};
use sn_runtime::coe::{CoeError, CoeRuntime, CoeRuntimeConfig, ModelBinary};
use sn_runtime::executor::NodeExecutor;
use sn_trace::{ArgValue, Counter, Metric, MetricsReport, Tracer, Track};
use std::sync::Arc;

/// Latency breakdown of one served batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Router prefill plus classification decode steps.
    pub router: TimeSecs,
    /// Expert DDR→HBM switching (deduplicated across the batch).
    pub switching: TimeSecs,
    /// Expert prefill plus decode for every prompt, run sequentially.
    pub execution: TimeSecs,
    /// Time lost to injected faults: wasted attempts plus retry backoff
    /// across routing, switching, and execution. Zero on fault-free runs.
    pub recovery: TimeSecs,
    /// Failed attempts absorbed by retries across the batch.
    pub retries: u32,
    /// Experts that were already HBM-resident.
    pub expert_hits: usize,
    /// Experts that had to be copied in.
    pub expert_misses: usize,
    /// Expert index serving each prompt.
    pub assignments: Vec<usize>,
    /// Aggregated trace metrics, present when a [`Tracer`] was attached
    /// via [`SambaCoeNode::with_tracer`]; `None` on untraced runs.
    pub metrics: Option<MetricsReport>,
    /// Sliding-window serving SLO snapshot (latency percentiles, TTFT,
    /// tokens/sec, tier utilization), present when a tracker was attached
    /// via [`SambaCoeNode::with_slo`]; `None` otherwise.
    pub slo: Option<SloSnapshot>,
}

impl ServeReport {
    /// Total batch latency, recovery time included.
    pub fn total(&self) -> TimeSecs {
        self.router + self.switching + self.execution + self.recovery
    }

    /// Fraction of time spent switching models — the Figure 1 quantity.
    /// 0.0 for a zero-total batch (never NaN).
    pub fn switching_fraction(&self) -> f64 {
        let total = self.total().as_secs();
        if total == 0.0 {
            0.0
        } else {
            self.switching.as_secs() / total
        }
    }

    /// Fraction of time lost to fault recovery (0.0 on clean runs and
    /// zero-total batches — never NaN).
    pub fn recovery_fraction(&self) -> f64 {
        let total = self.total().as_secs();
        if total == 0.0 {
            0.0
        } else {
            self.recovery.as_secs() / total
        }
    }
}

/// A Samba-CoE deployment on one SN40L node.
#[derive(Debug)]
pub struct SambaCoeNode {
    pub(crate) library: ExpertLibrary,
    pub(crate) router: Router,
    pub(crate) runtime: CoeRuntime,
    pub(crate) executor: NodeExecutor,
    pub(crate) prefill_exe: Executable,
    pub(crate) decode_exe: Executable,
    pub(crate) orch: Orchestration,
    pub(crate) calib: Calibration,
    pub(crate) faults: Option<Arc<FaultPlan>>,
    pub(crate) retry: RetryPolicy,
    pub(crate) tracer: Tracer,
    pub(crate) slo: Option<SloTracker>,
    /// Memoized router decisions ([`crate::lanes::RouteTable`]), built by
    /// [`SambaCoeNode::with_intra_jobs`]. A single node has no per-node
    /// lanes to fan out, so the intra-run knob here only swaps the route
    /// pass for the table lookup — bit-identical by construction.
    pub(crate) route_table: Option<RouteTable>,
}

impl SambaCoeNode {
    /// Compiles the (shared) expert architecture and registers the whole
    /// library into node DDR.
    ///
    /// # Errors
    ///
    /// [`CoeError::Compile`] when building or compiling the expert graphs
    /// fails; [`CoeError::DdrFull`] (or any other registration error) when
    /// the library does not fit node DDR — deployments are expected to be
    /// sized with [`crate::comparison`] first.
    pub fn try_new(
        node: NodeSpec,
        library: ExpertLibrary,
        prompt_tokens: usize,
    ) -> Result<Self, CoeError> {
        let calib = Calibration::baseline();
        let compiler = Compiler::new(node.socket.clone(), calib.clone());
        let tp = node.sockets;
        let cfg = library.config().clone();
        let compile_err = |stage: &str, reason: String| CoeError::Compile {
            model: stage.to_string(),
            reason,
        };
        let prefill_graph = build(&cfg, Phase::Prefill { prompt_tokens }, 1, tp)
            .map_err(|e| compile_err("expert prefill graph", e.to_string()))?;
        let decode_graph = build(
            &cfg,
            Phase::Decode {
                past_tokens: prompt_tokens,
            },
            1,
            tp,
        )
        .map_err(|e| compile_err("expert decode graph", e.to_string()))?;
        let prefill_exe = compiler
            .compile(&prefill_graph, FusionPolicy::Spatial)
            .map_err(|e| compile_err("expert prefill executable", e.to_string()))?;
        let decode_exe = compiler
            .compile(&decode_graph, FusionPolicy::Spatial)
            .map_err(|e| compile_err("expert decode executable", e.to_string()))?;
        let mut runtime = CoeRuntime::new(&node, CoeRuntimeConfig::default());
        for e in library.experts() {
            runtime.register(ModelBinary::weights_only(
                e.name.clone(),
                library.expert_bytes(),
            ))?;
        }
        let executor = NodeExecutor::new(node, calib.clone());
        Ok(SambaCoeNode {
            library,
            router: Router::new(0x5a17ba),
            runtime,
            executor,
            prefill_exe,
            decode_exe,
            orch: Orchestration::Hardware,
            calib,
            faults: None,
            retry: RetryPolicy::standard(),
            tracer: Tracer::disabled(),
            slo: None,
            route_table: None,
        })
    }

    /// Panicking convenience wrapper around [`SambaCoeNode::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on any [`CoeError`] from `try_new` (undersized DDR, graph
    /// build or compile failure).
    pub fn new(node: NodeSpec, library: ExpertLibrary, prompt_tokens: usize) -> Self {
        Self::try_new(node, library, prompt_tokens)
            .unwrap_or_else(|e| panic!("building Samba-CoE node failed: {e}"))
    }

    /// Attaches a fault plan and retry budget. The plan is consulted by
    /// [`SambaCoeNode::try_serve_batch`] at the router, expert-load, and
    /// socket-link sites; the plain serve paths stay fault-oblivious.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>, retry: RetryPolicy) -> Self {
        self.runtime = self.runtime.with_faults(Arc::clone(&plan), retry);
        self.executor = self.executor.with_faults(Arc::clone(&plan));
        self.faults = Some(plan);
        self.retry = retry;
        self
    }

    /// Attaches a [`Tracer`], shared with the node's [`CoeRuntime`] (expert
    /// hit/switch events) and [`NodeExecutor`] (kernel-launch spans). Serve
    /// paths then record router decisions, per-prompt request latency, and
    /// attach an aggregated [`MetricsReport`] to every [`ServeReport`].
    /// Timing arithmetic is unchanged: traces are recorded after the fact.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.runtime = self.runtime.with_tracer(tracer.clone());
        self.executor = self.executor.with_tracer(tracer.clone());
        self.tracer = tracer;
        self
    }

    /// Attaches a serving-SLO tracker: every serve call then feeds the
    /// batch into a sliding window and stamps the refreshed
    /// [`SloSnapshot`] onto its [`ServeReport`]. Pure bookkeeping over
    /// already-computed timings — attaching a tracker never changes any
    /// latency number.
    #[must_use]
    pub fn with_slo(mut self, config: SloConfig) -> Self {
        self.slo = Some(SloTracker::new(
            MachineProfile::from_node(self.executor.node()),
            config,
        ));
        self
    }

    /// Sets the intra-run parallelism knob. On a single node the only
    /// lane-engine component that applies is the [`RouteTable`] memo
    /// (there is no per-node work to fan across threads), so `jobs > 1`
    /// builds the table and `jobs <= 1` keeps the live router — both
    /// produce bit-identical assignments.
    #[must_use]
    pub fn with_intra_jobs(mut self, jobs: usize) -> Self {
        self.route_table = if jobs > 1 {
            Some(RouteTable::build(&self.router, self.library.len()))
        } else {
            None
        };
        self
    }

    /// One routing decision through the memo when built, else the live
    /// router. Bit-identical either way ([`RouteTable::build`] enumerates
    /// the router itself).
    pub(crate) fn route_one(&self, prompt: &Prompt, n_experts: usize) -> usize {
        match &self.route_table {
            Some(table) => table.route(prompt),
            None => self.router.route(prompt, n_experts),
        }
    }

    pub fn library(&self) -> &ExpertLibrary {
        &self.library
    }

    /// Switches kernel-launch orchestration (for ablations).
    pub fn set_orchestration(&mut self, orch: Orchestration) {
        self.orch = orch;
    }

    /// Unit timings for one model run: (prefill, `output_tokens`-step
    /// decode loop). The prefill part alone is the first-token boundary
    /// the SLO layer's TTFT builds on.
    pub(crate) fn unit_run_times(&self, output_tokens: usize) -> (TimeSecs, TimeSecs) {
        let prefill = self.executor.run(&self.prefill_exe, self.orch).total;
        let decode = self
            .executor
            .run_decode_loop(&self.decode_exe, self.orch, output_tokens.max(1))
            .total;
        (prefill, decode)
    }

    /// Router cost: a prefill over the batch plus a couple of decode steps
    /// to emit the classification (calibrated in
    /// [`Calibration::router_equiv_decode_steps`]).
    pub(crate) fn router_time(&self) -> TimeSecs {
        let prefill = self.executor.run(&self.prefill_exe, self.orch).total;
        let step = self.executor.run(&self.decode_exe, self.orch).total;
        prefill + step * self.calib.router_equiv_decode_steps
    }

    /// Reconstructs per-phase resource demand for one served batch: where
    /// its time went (router / switching / prefill / decode / recovery)
    /// and what each phase computed and moved. Pure function of the
    /// compiled executables and the report — it never re-runs the
    /// executor, so calling it cannot perturb traces or timings. The
    /// execution component splits between prefill and decode by the
    /// executables' own execution-time ratio.
    pub fn phase_samples(&self, report: &ServeReport, output_tokens: usize) -> Vec<PhaseSample> {
        let steps = output_tokens.max(1) as f64;
        let n = report.assignments.len() as f64;
        let prefill_traffic = self.prefill_exe.total_traffic();
        let prefill_flops = self.prefill_exe.total_flops();
        let decode_traffic = self.decode_exe.total_traffic().scale(steps);
        let decode_flops = self.decode_exe.total_flops() * steps;
        let prefill_pure = self.prefill_exe.execution_time().as_secs();
        let decode_pure = self.decode_exe.execution_time().as_secs() * steps;
        let unit_pure = prefill_pure + decode_pure;
        let prefill_share = if unit_pure > 0.0 {
            prefill_pure / unit_pure
        } else {
            0.0
        };
        // Expert copies stream out of DDR and into HBM: the same bytes
        // load both tiers, and the slower DDR side is what binds (§V-B).
        let switch_bytes = self
            .library
            .expert_bytes()
            .scale(report.expert_misses as f64);
        let router_steps = self.calib.router_equiv_decode_steps;
        vec![
            PhaseSample {
                kind: PhaseKind::Router,
                time: report.router,
                flops: prefill_flops + self.decode_exe.total_flops() * router_steps,
                hbm_bytes: prefill_traffic + self.decode_exe.total_traffic().scale(router_steps),
                ddr_bytes: Bytes::ZERO,
            },
            PhaseSample {
                kind: PhaseKind::Switching,
                time: report.switching,
                flops: Flops::ZERO,
                hbm_bytes: switch_bytes,
                ddr_bytes: switch_bytes,
            },
            PhaseSample {
                kind: PhaseKind::Prefill,
                time: report.execution * prefill_share,
                flops: prefill_flops * n,
                hbm_bytes: prefill_traffic.scale(n),
                ddr_bytes: Bytes::ZERO,
            },
            PhaseSample {
                kind: PhaseKind::Decode,
                time: report.execution * (1.0 - prefill_share),
                flops: decode_flops * n,
                hbm_bytes: decode_traffic.scale(n),
                ddr_bytes: Bytes::ZERO,
            },
            PhaseSample {
                kind: PhaseKind::Recovery,
                time: report.recovery,
                flops: Flops::ZERO,
                hbm_bytes: Bytes::ZERO,
                ddr_bytes: Bytes::ZERO,
            },
        ]
    }

    /// Roofline bottleneck attribution of one served batch against this
    /// node's hardware profile: per-phase time shares, compute/HBM/DDR
    /// classification, attained-vs-attainable FLOP rate, and per-tier
    /// bandwidth utilization.
    pub fn profile(&self, report: &ServeReport, output_tokens: usize) -> ServeAttribution {
        ServeAttribution::from_samples(
            MachineProfile::from_node(self.executor.node()),
            self.phase_samples(report, output_tokens),
        )
    }

    /// Feeds one served batch into the SLO tracker (when attached) and
    /// stamps the report with the refreshed window snapshot. Runs after
    /// all timing arithmetic; with no tracker it is a no-op and the
    /// report's `slo` stays `None`.
    pub(crate) fn observe_slo(
        &mut self,
        report: &mut ServeReport,
        prefill_unit: TimeSecs,
        output_tokens: usize,
    ) {
        if self.slo.is_none() {
            return;
        }
        let samples = self.phase_samples(report, output_tokens);
        let hbm_bytes: Bytes = samples.iter().map(|s| s.hbm_bytes).sum();
        let ddr_bytes: Bytes = samples.iter().map(|s| s.ddr_bytes).sum();
        let tracker = self.slo.as_mut().expect("checked above");
        tracker.record(BatchObservation {
            latency: report.total(),
            ttft: report.router + report.switching + prefill_unit,
            prompts: report.assignments.len(),
            tokens: report.assignments.len() * output_tokens,
            hbm_bytes,
            ddr_bytes,
        });
        report.slo = tracker.snapshot();
    }

    /// Records the serving-level view of a batch on [`Track::Coe`]: one
    /// router span, one execution span per prompt, and a request-latency
    /// observation per prompt (its model run plus an even share of the
    /// batch-level router, switching, and recovery time). Runs after the
    /// timing arithmetic so traced and untraced results stay identical.
    fn trace_batch(
        &self,
        label: &str,
        assignments: &[usize],
        router: TimeSecs,
        switching: TimeSecs,
        run: TimeSecs,
        recovery: TimeSecs,
    ) {
        if !self.tracer.is_enabled() {
            return;
        }
        let n = assignments.len();
        self.tracer.count(Counter::RouterDecisions, n as u64);
        self.tracer.count(Counter::PromptsServed, n as u64);
        self.tracer.span(
            Track::Coe,
            format!("router:{label}"),
            router,
            &[("prompts", ArgValue::from(n))],
        );
        let shared = (router + switching + recovery) * (1.0 / n as f64);
        for (i, &e) in assignments.iter().enumerate() {
            self.tracer.observe(Metric::Request, run + shared);
            self.tracer.span(
                Track::Coe,
                format!("prompt{i}:expert{e}"),
                run,
                &[("expert", ArgValue::from(e))],
            );
        }
    }

    /// Serves a batch with *expert prefetching*: while prompt `i` executes,
    /// prompt `i+1`'s expert copies DDR→HBM in the background — the overlap
    /// the dual off-chip tiers make possible (switching touches DDR and
    /// HBM-copy bandwidth, execution reads already-resident HBM weights).
    /// Only the first expert's copy is exposed; later switches hide behind
    /// execution unless a copy outlasts a whole model run.
    pub fn serve_batch_prefetched(
        &mut self,
        prompts: &[Prompt],
        output_tokens: usize,
    ) -> ServeReport {
        assert!(!prompts.is_empty(), "empty batch");
        let n = self.library.len();
        let assignments: Vec<usize> = prompts.iter().map(|p| self.route_one(p, n)).collect();
        let router = self.router_time();
        let (prefill_unit, decode_unit) = self.unit_run_times(output_tokens);
        let run = prefill_unit + decode_unit;
        let mut hits = 0;
        let mut misses = 0;
        let mut exposed_switching = TimeSecs::ZERO;
        let mut seen = std::collections::HashSet::new();
        let mut overlap_budget = TimeSecs::ZERO;
        for &e in &assignments {
            let switch_time = if seen.insert(e) {
                let name = self.library.expert(e).name.as_str();
                let outcome = self.runtime.activate(name).expect("expert registered");
                if outcome.hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
                outcome.switch_time
            } else {
                TimeSecs::ZERO
            };
            // The part of this switch that the previous prompt's execution
            // could not hide is exposed.
            let hidden = switch_time.min(overlap_budget);
            exposed_switching += switch_time - hidden;
            // This prompt's execution becomes overlap budget for the next
            // prompt's prefetch.
            overlap_budget = run;
        }
        let execution = run * prompts.len() as f64;
        self.trace_batch(
            "prefetched",
            &assignments,
            router,
            exposed_switching,
            run,
            TimeSecs::ZERO,
        );
        let mut report = ServeReport {
            router,
            switching: exposed_switching,
            execution,
            recovery: TimeSecs::ZERO,
            retries: 0,
            expert_hits: hits,
            expert_misses: misses,
            assignments,
            metrics: self.tracer.metrics_opt(),
            slo: None,
        };
        self.observe_slo(&mut report, prefill_unit, output_tokens);
        report
    }

    /// Serves a batch of prompts, producing `output_tokens` per prompt.
    pub fn serve_batch(&mut self, prompts: &[Prompt], output_tokens: usize) -> ServeReport {
        assert!(!prompts.is_empty(), "empty batch");
        let n = self.library.len();
        let assignments: Vec<usize> = prompts.iter().map(|p| self.route_one(p, n)).collect();
        let router = self.router_time();
        // Activate deduplicated experts in routing order.
        let mut switching = TimeSecs::ZERO;
        let mut hits = 0;
        let mut misses = 0;
        let mut seen = std::collections::HashSet::new();
        for &e in &assignments {
            if !seen.insert(e) {
                continue;
            }
            let name = self.library.expert(e).name.as_str();
            let outcome = self.runtime.activate(name).expect("expert registered");
            if outcome.hit {
                hits += 1;
            } else {
                misses += 1;
            }
            switching += outcome.switch_time;
        }
        // Each (prompt, expert) pair runs sequentially.
        let (prefill_unit, decode_unit) = self.unit_run_times(output_tokens);
        let run = prefill_unit + decode_unit;
        let execution = run * prompts.len() as f64;
        self.trace_batch(
            "batch",
            &assignments,
            router,
            switching,
            run,
            TimeSecs::ZERO,
        );
        let mut report = ServeReport {
            router,
            switching,
            execution,
            recovery: TimeSecs::ZERO,
            retries: 0,
            expert_hits: hits,
            expert_misses: misses,
            assignments,
            metrics: self.tracer.metrics_opt(),
            slo: None,
        };
        self.observe_slo(&mut report, prefill_unit, output_tokens);
        report
    }

    /// Fault-aware [`SambaCoeNode::serve_batch`]: consults the attached
    /// [`FaultPlan`] and drives every faultable phase through the node's
    /// [`RetryPolicy`], charging wasted attempts and backoff into the
    /// report's `recovery` component.
    ///
    /// Per batch: one router consultation ([`FaultSite::RouterDecision`] —
    /// a `Fail` is a classification timeout, retried by re-running the
    /// decode steps), one expert-load consultation per distinct cold
    /// expert (inside [`CoeRuntime::activate_with_recovery`]), and one
    /// socket consultation per prompt execution. With no plan attached
    /// (or an all-zero plan) the report is bit-identical to
    /// [`SambaCoeNode::serve_batch`].
    ///
    /// # Errors
    ///
    /// [`CoeError::RouterTimeout`] when router retries are exhausted;
    /// [`CoeError::LoadFault`] when an expert never loads intact;
    /// [`CoeError::SocketDown`] when a prompt's execution keeps dropping
    /// the socket fabric past the retry budget.
    pub fn try_serve_batch(
        &mut self,
        prompts: &[Prompt],
        output_tokens: usize,
    ) -> Result<ServeReport, CoeError> {
        assert!(!prompts.is_empty(), "empty batch");
        let Some(plan) = self.faults.clone() else {
            return Ok(self.serve_batch(prompts, output_tokens));
        };
        let n = self.library.len();
        let assignments: Vec<usize> = prompts.iter().map(|p| self.route_one(p, n)).collect();
        let mut recovery = Recovery::default();

        // Router: one classification pass over the batch; a Fail draw is a
        // timeout and the pass reruns after backoff.
        let router_once = self.router_time();
        let (router_factor, router_rec) = self
            .retry
            .run(|_| match plan.decide(FaultSite::RouterDecision) {
                FaultDecision::Ok => Ok(1.0),
                FaultDecision::Slow(factor) => Ok(factor),
                FaultDecision::Fail => Err(router_once),
            })
            .map_err(|e| CoeError::RouterTimeout {
                attempts: e.attempts,
            })?;
        if router_rec.retries > 0 && self.tracer.is_enabled() {
            self.tracer
                .count(Counter::RetriesAbsorbed, u64::from(router_rec.retries));
            self.tracer.instant(
                Track::Coe,
                "router-retry",
                &[
                    ("retries", ArgValue::from(u64::from(router_rec.retries))),
                    ("recovery_us", ArgValue::from(router_rec.time.as_micros())),
                ],
            );
        }
        recovery.merge(router_rec);
        let router = router_once * router_factor;

        // Switching: deduplicated activation through the runtime's
        // fault-aware load path.
        let mut switching = TimeSecs::ZERO;
        let mut hits = 0;
        let mut misses = 0;
        let mut seen = std::collections::HashSet::new();
        for &e in &assignments {
            if !seen.insert(e) {
                continue;
            }
            let name = self.library.expert(e).name.as_str();
            let (outcome, load_rec) = self.runtime.activate_with_recovery(name)?;
            if outcome.hit {
                hits += 1;
            } else {
                misses += 1;
            }
            switching += outcome.switch_time;
            recovery.merge(load_rec);
        }

        // Execution: one socket-fabric consultation per prompt. The factor
        // sum keeps the fault-free arithmetic identical to `serve_batch`
        // (`run * n`, not a float summation loop).
        let (prefill_unit, decode_unit) = self.unit_run_times(output_tokens);
        let run = prefill_unit + decode_unit;
        let mut factor_sum = 0.0;
        for _ in prompts {
            let (factor, exec_rec) = self
                .retry
                .run(|_| match plan.decide(FaultSite::SocketLink) {
                    FaultDecision::Ok => Ok(1.0),
                    FaultDecision::Slow(factor) => Ok(factor),
                    FaultDecision::Fail => Err(run),
                })
                .map_err(|e| CoeError::SocketDown {
                    attempts: e.attempts,
                })?;
            factor_sum += factor;
            if exec_rec.retries > 0 && self.tracer.is_enabled() {
                self.tracer
                    .count(Counter::RetriesAbsorbed, u64::from(exec_rec.retries));
                self.tracer.instant(
                    Track::Coe,
                    "socket-retry",
                    &[
                        ("retries", ArgValue::from(u64::from(exec_rec.retries))),
                        ("recovery_us", ArgValue::from(exec_rec.time.as_micros())),
                    ],
                );
            }
            recovery.merge(exec_rec);
        }
        let execution = run * factor_sum;
        self.trace_batch(
            "fault-aware",
            &assignments,
            router,
            switching,
            run,
            recovery.time,
        );
        let mut report = ServeReport {
            router,
            switching,
            execution,
            recovery: recovery.time,
            retries: recovery.retries,
            expert_hits: hits,
            expert_misses: misses,
            assignments,
            metrics: self.tracer.metrics_opt(),
            slo: None,
        };
        self.observe_slo(&mut report, prefill_unit, output_tokens);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::PromptGenerator;

    fn coe(experts: usize) -> SambaCoeNode {
        SambaCoeNode::new(NodeSpec::sn40l_node(), ExpertLibrary::new(experts), 1024)
    }

    #[test]
    fn single_prompt_latency_breakdown_matches_fig1_shape() {
        // Figure 1(b): on the SN40L, a cold 20-token request spends the
        // same order of magnitude on switching and execution — switching
        // never dominates the way it does over PCIe.
        let mut node = coe(150);
        let mut gen = PromptGenerator::new(1, 1024);
        let batch = gen.batch(1);
        let report = node.serve_batch(&batch, 20);
        assert_eq!(report.expert_misses, 1);
        let frac = report.switching_fraction();
        assert!(frac > 0.05 && frac < 0.6, "switching fraction {frac:.2}");
        // Total stays well under 100 ms (Figure 1's SN40L bar).
        assert!(
            report.total().as_millis() < 150.0,
            "total {}",
            report.total()
        );
    }

    #[test]
    fn repeat_traffic_hits_the_hbm_cache() {
        let mut node = coe(150);
        let mut gen = PromptGenerator::new(2, 1024);
        let batch = gen.batch(4);
        let cold = node.serve_batch(&batch, 20);
        let warm = node.serve_batch(&batch, 20);
        assert!(warm.expert_misses < cold.expert_misses + 1);
        assert!(warm.switching < cold.switching || warm.switching.is_zero());
        assert!(warm.total() < cold.total());
    }

    #[test]
    fn batch_dedups_expert_switches() {
        let mut node = coe(150);
        // All prompts in one domain with the same sub-task land on one
        // expert: one switch for the whole batch.
        let batch: Vec<Prompt> = (0..8)
            .map(|i| Prompt {
                id: i * 16,
                domain: crate::router::Domain::Math,
                tokens: 1024,
            })
            .collect();
        let report = node.serve_batch(&batch, 20);
        assert_eq!(report.expert_hits + report.expert_misses, 1);
    }

    #[test]
    fn small_library_stays_fully_resident() {
        // Under ~36 experts everything fits node HBM: once an expert is
        // activated it never gets evicted, so repeated traffic is
        // switch-free.
        let mut node = coe(30);
        let mut gen = PromptGenerator::new(3, 1024);
        let batch = gen.batch(8);
        node.serve_batch(&batch, 5); // warm exactly these experts
        let report = node.serve_batch(&batch, 5);
        assert_eq!(report.expert_misses, 0, "warmed experts stay resident");
        assert!(report.switching.is_zero());
    }

    #[test]
    fn prefetching_hides_most_switching() {
        let mut sequential = coe(150);
        let mut prefetched = coe(150);
        let batch = PromptGenerator::new(11, 1024).batch(8);
        let seq = sequential.serve_batch(&batch, 20);
        let pre = prefetched.serve_batch_prefetched(&batch, 20);
        assert_eq!(seq.expert_misses, pre.expert_misses, "same cold misses");
        assert!(
            pre.switching.as_secs() < seq.switching.as_secs() * 0.5,
            "prefetch should hide switching: {} vs {}",
            pre.switching,
            seq.switching
        );
        assert!(pre.total() < seq.total());
        // Only the first expert's copy can be fully exposed: with 20-token
        // runs (~25 ms) each later 13 ms copy hides completely.
        let one_switch = seq.switching.as_secs() / seq.expert_misses as f64;
        assert!(pre.switching.as_secs() <= one_switch * 1.5);
    }

    #[test]
    fn try_new_reports_ddr_exhaustion_instead_of_panicking() {
        let err = SambaCoeNode::try_new(NodeSpec::sn40l_node(), ExpertLibrary::new(2000), 1024);
        assert!(
            matches!(err, Err(CoeError::DdrFull(_))),
            "2000 experts exceed node DDR"
        );
    }

    #[test]
    fn try_serve_without_plan_matches_serve_batch_exactly() {
        let mut plain = coe(150);
        let mut aware = coe(150);
        let batch = PromptGenerator::new(7, 1024).batch(6);
        let want = plain.serve_batch(&batch, 20);
        let got = aware.try_serve_batch(&batch, 20).unwrap();
        assert_eq!(want, got, "no plan: bit-identical reports");
    }

    #[test]
    fn zero_rate_plan_is_bit_identical_to_no_plan() {
        let mut plain = coe(150);
        let mut aware = coe(150).with_faults(Arc::new(FaultPlan::new(99)), RetryPolicy::standard());
        let batch = PromptGenerator::new(7, 1024).batch(6);
        let want = plain.serve_batch(&batch, 20);
        let got = aware.try_serve_batch(&batch, 20).unwrap();
        assert_eq!(want, got, "zero-rate plan: bit-identical reports");
        assert!(got.recovery.is_zero());
        assert_eq!(got.retries, 0);
    }

    #[test]
    fn injected_faults_charge_recovery_into_the_report() {
        use sn_faults::FaultSpec;
        let plan = Arc::new(
            FaultPlan::new(13)
                .with_site(FaultSite::ExpertLoad, FaultSpec::failing(0.2))
                .with_site(
                    FaultSite::SocketLink,
                    FaultSpec {
                        fail_rate: 0.2,
                        slow_rate: 0.2,
                        slow_factor: 1.5,
                    },
                )
                .with_site(FaultSite::RouterDecision, FaultSpec::failing(0.2)),
        );
        let mut clean = coe(150);
        let mut faulty = coe(150).with_faults(plan, RetryPolicy::standard());
        let batch = PromptGenerator::new(7, 1024).batch(8);
        let baseline = clean.serve_batch(&batch, 20);
        let report = faulty
            .try_serve_batch(&batch, 20)
            .expect("retries absorb these rates");
        assert!(report.retries > 0, "these rates should trigger retries");
        assert!(report.recovery.as_secs() > 0.0);
        assert!(report.total() > baseline.total(), "faults cost latency");
        assert_eq!(
            report.assignments, baseline.assignments,
            "routing is unperturbed"
        );
    }

    #[test]
    fn traced_serving_matches_untraced_and_records_metrics() {
        let mut plain = coe(150);
        let mut traced = coe(150).with_tracer(Tracer::enabled());
        let batch = PromptGenerator::new(7, 1024).batch(6);
        let want = plain.serve_batch(&batch, 20);
        let got = traced.serve_batch(&batch, 20);
        assert_eq!(want.total(), got.total(), "tracing must not perturb timing");
        assert_eq!(want.assignments, got.assignments);
        assert!(want.metrics.is_none(), "untraced runs attach no metrics");
        let metrics = got.metrics.expect("tracer attached");
        assert_eq!(metrics.counter(Counter::PromptsServed), 6);
        assert_eq!(metrics.counter(Counter::RouterDecisions), 6);
        assert_eq!(
            metrics.counter(Counter::ExpertHits) + metrics.counter(Counter::ExpertMisses),
            (want.expert_hits + want.expert_misses) as u64,
            "runtime cache events flow through the shared tracer"
        );
        assert!(
            metrics.counter(Counter::KernelLaunches) > 0,
            "executor shares the tracer"
        );
        assert!(
            metrics.histogram(Metric::Request).is_some(),
            "per-request latency histogram recorded"
        );
    }

    #[test]
    fn traced_fault_recovery_counts_absorbed_retries() {
        use sn_faults::FaultSpec;
        let plan = Arc::new(
            FaultPlan::new(13)
                .with_site(FaultSite::ExpertLoad, FaultSpec::failing(0.2))
                .with_site(FaultSite::SocketLink, FaultSpec::failing(0.2))
                .with_site(FaultSite::RouterDecision, FaultSpec::failing(0.2)),
        );
        let mut node = coe(150)
            .with_faults(plan, RetryPolicy::standard())
            .with_tracer(Tracer::enabled());
        let batch = PromptGenerator::new(7, 1024).batch(8);
        let report = node.try_serve_batch(&batch, 20).expect("retries absorb");
        assert!(report.retries > 0);
        let metrics = report.metrics.expect("tracer attached");
        assert_eq!(
            metrics.counter(Counter::RetriesAbsorbed),
            u64::from(report.retries),
            "router + load + socket retries are each counted exactly once"
        );
    }

    #[test]
    fn slo_snapshot_rides_along_without_perturbing_timing() {
        let mut plain = coe(150);
        let mut tracked = coe(150).with_slo(SloConfig::default());
        let mut gen_a = PromptGenerator::new(5, 1024);
        let mut gen_b = PromptGenerator::new(5, 1024);
        let mut last = None;
        for _ in 0..4 {
            let batch_a = gen_a.batch(4);
            let batch_b = gen_b.batch(4);
            let want = plain.serve_batch(&batch_a, 20);
            let got = tracked.serve_batch(&batch_b, 20);
            assert_eq!(
                want.total(),
                got.total(),
                "SLO tracking is pure bookkeeping"
            );
            assert!(want.slo.is_none(), "no tracker, no snapshot");
            last = got.slo;
        }
        let slo = last.expect("tracker attached");
        assert_eq!(slo.window_batches, 4);
        assert_eq!(slo.total_batches, 4);
        assert!(slo.batch_latency_p50 <= slo.batch_latency_p99);
        assert!(slo.ttft_p50 <= slo.ttft_p99);
        assert!(
            slo.ttft_p99 < slo.batch_latency_p50,
            "first token lands early"
        );
        assert!(slo.tokens_per_sec > 0.0);
        assert!(slo.hbm_utilization > 0.0 && slo.hbm_utilization <= 1.0);
        assert!(slo.ddr_utilization >= 0.0 && slo.ddr_utilization <= 1.0);
    }

    #[test]
    fn profile_classifies_phases_as_the_paper_says() {
        let mut node = coe(150);
        let batch = PromptGenerator::new(0x5eed, 1024).batch(8);
        let report = node.serve_batch(&batch, 20);
        let attribution = node.profile(&report, 20);
        // §V-B / §VI-B: expert switching is DDR-bandwidth-bound, decode is
        // HBM-bandwidth-bound, fused prefill is compute-bound.
        use sn_profile::Bound;
        assert_eq!(
            attribution.phase(PhaseKind::Switching).unwrap().bound,
            Bound::DdrBandwidth
        );
        assert_eq!(
            attribution.phase(PhaseKind::Decode).unwrap().bound,
            Bound::HbmBandwidth
        );
        assert_eq!(
            attribution.phase(PhaseKind::Prefill).unwrap().bound,
            Bound::Compute
        );
        let sum: f64 = attribution.phases.iter().map(|p| p.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-9, "fractions partition the batch");
        assert!((attribution.total.as_secs() - report.total().as_secs()).abs() < 1e-12);
        // Determinism: same report, same attribution.
        assert_eq!(attribution, node.profile(&report, 20));
    }

    #[test]
    fn fractions_of_a_zero_total_report_are_zero_not_nan() {
        let report = ServeReport {
            router: TimeSecs::ZERO,
            switching: TimeSecs::ZERO,
            execution: TimeSecs::ZERO,
            recovery: TimeSecs::ZERO,
            retries: 0,
            expert_hits: 0,
            expert_misses: 0,
            assignments: vec![],
            metrics: None,
            slo: None,
        };
        assert_eq!(report.switching_fraction(), 0.0);
        assert_eq!(report.recovery_fraction(), 0.0);
    }

    #[test]
    fn orchestration_affects_latency() {
        let mut node = coe(40);
        let mut gen = PromptGenerator::new(4, 1024);
        let batch = gen.batch(2);
        node.serve_batch(&batch, 10); // warm the cache
        let ho = node.serve_batch(&batch, 10);
        node.set_orchestration(Orchestration::Software);
        let so = node.serve_batch(&batch, 10);
        assert!(so.total() > ho.total());
    }
}
