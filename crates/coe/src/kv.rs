//! Paged KV-cache management under an HBM budget shared with expert
//! weights.
//!
//! The SN40L reserves part of each node's HBM for "the router, KV cache,
//! and activations" (§V-B) — the same reservation the CoE runtime's
//! activation budget carves out. This module manages the KV share of that
//! reservation as fixed-size **pages** (vLLM-style paged attention over
//! the paper's memory hierarchy): each live request owns
//! `ceil(context_tokens / page_tokens)` pages, and when the resident set
//! exceeds the budget, pages spill to node DDR under a **cost-aware LRU**
//! policy — pages of finished requests are free to drop (their context is
//! dead), so they evict first; pages of live requests evict
//! least-recently-touched and must be refilled DDR→HBM (a *refault*) if
//! the request decodes again.
//!
//! The cache is pure deterministic bookkeeping: the serving engine
//! ([`crate::tenancy`]) touches it per served chunk, charges refault
//! refill bytes through the cluster's DMA model, and exports evictions as
//! [`sn_trace::Counter::KvPagesEvicted`]. Conservation is an invariant:
//! every page that ever entered HBM is either still resident or was
//! evicted — `pages_in == pages_resident + pages_evicted` after any
//! operation sequence.
//!
//! # Examples
//!
//! ```
//! use sn_coe::kv::{PagedKvCache, PagedKvConfig};
//! use sn_arch::Bytes;
//!
//! // A tiny cache: 4-token pages of 1 MiB, budget of 8 pages.
//! let mut kv = PagedKvCache::new(PagedKvConfig {
//!     page_tokens: 4,
//!     page_bytes: Bytes::from_mib(1),
//!     budget: Bytes::from_mib(8),
//! });
//! assert_eq!(kv.capacity_pages(), 8);
//!
//! // Request 0 prefills 10 tokens: 3 pages allocated.
//! let touch = kv.touch(0, 10);
//! assert_eq!(touch.allocated, 3);
//! let stats = kv.stats();
//! assert_eq!(stats.pages_in, 3);
//! assert_eq!(stats.pages_resident, 3);
//! assert_eq!(stats.pages_in, stats.pages_resident + stats.pages_evicted);
//! ```

use serde::{Deserialize, Serialize};
use sn_arch::Bytes;
use std::collections::BTreeMap;

/// Page geometry and the HBM budget the cache may occupy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PagedKvConfig {
    /// Context tokens per page.
    pub page_tokens: usize,
    /// HBM bytes one page occupies.
    pub page_bytes: Bytes,
    /// Total HBM the cache may hold (the KV share of the node
    /// reservation; resident pages never exceed `budget / page_bytes`).
    pub budget: Bytes,
}

impl Default for PagedKvConfig {
    /// Llama2-7B-class geometry: ~512 KiB of KV per token (32 layers ×
    /// K+V × 4096 hidden × fp16), 16-token pages, and a 16 GiB slice of
    /// the node's 48 GiB reservation.
    fn default() -> Self {
        PagedKvConfig {
            page_tokens: 16,
            page_bytes: Bytes::from_mib(8),
            budget: Bytes::from_gib(16),
        }
    }
}

/// What one [`PagedKvCache::touch`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KvTouch {
    /// Brand-new pages allocated (context grew past a page boundary).
    pub allocated: u64,
    /// Previously evicted live pages brought back — each one costs a
    /// DDR→HBM refill the caller must charge.
    pub refaulted: u64,
    /// Pages evicted to make room during this touch.
    pub evicted: u64,
}

/// Cumulative cache statistics; the conservation identity
/// `pages_in == pages_resident + pages_evicted` holds after every
/// operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KvStats {
    /// Pages that ever entered HBM (allocations plus refaults).
    pub pages_in: u64,
    /// Pages currently resident.
    pub pages_resident: u64,
    /// Pages evicted to DDR (or dropped, for finished requests).
    pub pages_evicted: u64,
    /// Evicted live pages that were touched again and had to refill.
    pub refaults: u64,
}

#[derive(Debug, Clone, Copy)]
struct PageMeta {
    last_touch: u64,
    finished: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct SeqState {
    /// Highest page index ever allocated for the sequence, exclusive —
    /// a non-resident page below it is a refault, not an allocation.
    high_water: u32,
    finished: bool,
}

/// A paged KV cache with cost-aware LRU eviction under an HBM budget.
///
/// Deterministic by construction: pages live in ordered maps, the victim
/// scan is a total order over `(evict-cost, last-touch, page key)`, and
/// the logical clock advances once per touch.
#[derive(Debug, Clone)]
pub struct PagedKvCache {
    config: PagedKvConfig,
    capacity: u64,
    /// Resident pages keyed by `(sequence, page index)`.
    pages: BTreeMap<(u64, u32), PageMeta>,
    seqs: BTreeMap<u64, SeqState>,
    clock: u64,
    stats: KvStats,
}

impl PagedKvCache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is degenerate: zero-token or zero-byte
    /// pages, or a budget smaller than one page.
    pub fn new(config: PagedKvConfig) -> Self {
        assert!(config.page_tokens > 0, "pages must hold at least a token");
        assert!(config.page_bytes > Bytes::ZERO, "pages must occupy bytes");
        let capacity = config.budget.as_u64() / config.page_bytes.as_u64();
        assert!(capacity >= 1, "budget must hold at least one page");
        PagedKvCache {
            config,
            capacity,
            pages: BTreeMap::new(),
            seqs: BTreeMap::new(),
            clock: 0,
            stats: KvStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &PagedKvConfig {
        &self.config
    }

    /// Resident pages the budget can hold.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity
    }

    /// Pages a context of `tokens` needs (at least one).
    pub fn pages_for(&self, tokens: usize) -> u32 {
        (tokens.max(1)).div_ceil(self.config.page_tokens) as u32
    }

    /// HBM bytes currently resident.
    pub fn resident_bytes(&self) -> Bytes {
        self.config.page_bytes * self.pages.len() as u64
    }

    /// Cumulative statistics (see [`KvStats`] for the conservation
    /// identity).
    pub fn stats(&self) -> KvStats {
        KvStats {
            pages_resident: self.pages.len() as u64,
            ..self.stats
        }
    }

    /// Evicts the cheapest page: finished requests' pages first (their
    /// context is dead — dropping is free), then least-recently-touched,
    /// then lowest key. Returns false when nothing is resident.
    fn evict_one(&mut self) -> bool {
        let victim = self
            .pages
            .iter()
            .min_by_key(|(&key, meta)| (!meta.finished, meta.last_touch, key))
            .map(|(&key, _)| key);
        let Some(key) = victim else {
            return false;
        };
        self.pages.remove(&key);
        self.stats.pages_evicted += 1;
        true
    }

    /// Ensures the first `pages_for(tokens)` pages of `seq` are resident,
    /// allocating, refaulting, and evicting as needed, and marks them
    /// touched. The caller charges `refaulted` pages' refill bytes
    /// through its DMA model.
    ///
    /// Touching a finished sequence restarts it (the request came back).
    pub fn touch(&mut self, seq: u64, tokens: usize) -> KvTouch {
        self.clock += 1;
        let needed = self.pages_for(tokens);
        let state = self.seqs.entry(seq).or_default();
        state.finished = false;
        let high_water = state.high_water;
        state.high_water = state.high_water.max(needed);
        let mut touch = KvTouch::default();
        for page in 0..needed {
            if let Some(meta) = self.pages.get_mut(&(seq, page)) {
                meta.last_touch = self.clock;
                meta.finished = false;
                continue;
            }
            // Not resident: a refault if it was allocated before, a
            // fresh allocation otherwise. Either way it enters HBM.
            if page < high_water {
                touch.refaulted += 1;
                self.stats.refaults += 1;
            } else {
                touch.allocated += 1;
            }
            while self.pages.len() as u64 >= self.capacity {
                if !self.evict_one() {
                    break;
                }
                touch.evicted += 1;
            }
            self.pages.insert(
                (seq, page),
                PageMeta {
                    last_touch: self.clock,
                    finished: false,
                },
            );
            self.stats.pages_in += 1;
        }
        touch
    }

    /// Marks a sequence finished: its resident pages stay until pressure
    /// evicts them, but they become the cheapest victims.
    pub fn finish(&mut self, seq: u64) {
        if let Some(state) = self.seqs.get_mut(&seq) {
            state.finished = true;
        }
        let keys: Vec<(u64, u32)> = self
            .pages
            .range((seq, 0)..=(seq, u32::MAX))
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            if let Some(meta) = self.pages.get_mut(&k) {
                meta.finished = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny(capacity_pages: u64) -> PagedKvCache {
        PagedKvCache::new(PagedKvConfig {
            page_tokens: 4,
            page_bytes: Bytes::from_mib(1),
            budget: Bytes::from_mib(capacity_pages),
        })
    }

    #[test]
    fn allocation_rounds_up_to_pages() {
        let mut kv = tiny(8);
        assert_eq!(kv.pages_for(1), 1);
        assert_eq!(kv.pages_for(4), 1);
        assert_eq!(kv.pages_for(5), 2);
        let t = kv.touch(7, 9);
        assert_eq!(t.allocated, 3);
        assert_eq!(t.refaulted, 0);
        assert_eq!(t.evicted, 0);
        assert_eq!(kv.stats().pages_resident, 3);
        assert_eq!(kv.resident_bytes(), Bytes::from_mib(3));
    }

    #[test]
    fn growing_a_context_allocates_only_the_new_pages() {
        let mut kv = tiny(8);
        kv.touch(1, 8); // 2 pages
        let t = kv.touch(1, 12); // 3 pages
        assert_eq!(t.allocated, 1);
        assert_eq!(kv.stats().pages_in, 3);
    }

    #[test]
    fn finished_pages_evict_before_live_lru() {
        let mut kv = tiny(4);
        kv.touch(1, 8); // pages (1,0) (1,1)
        kv.touch(2, 8); // pages (2,0) (2,1) — cache full
        kv.finish(1);
        // A third sequence forces eviction: finished seq 1's pages go
        // first even though seq 2's are older than this touch.
        let t = kv.touch(3, 8);
        assert_eq!(t.evicted, 2);
        assert!(kv.pages.contains_key(&(2, 0)));
        assert!(kv.pages.contains_key(&(2, 1)));
        assert!(!kv.pages.contains_key(&(1, 0)));
    }

    #[test]
    fn evicted_live_pages_refault_on_next_touch() {
        let mut kv = tiny(2);
        kv.touch(1, 8); // fills the cache with seq 1
        kv.touch(2, 8); // evicts seq 1 entirely (live LRU)
        assert_eq!(kv.stats().pages_evicted, 2);
        let t = kv.touch(1, 8); // seq 1 decodes again
        assert_eq!(t.refaulted, 2, "previously allocated pages came back");
        assert_eq!(t.allocated, 0);
        assert_eq!(kv.stats().refaults, 2);
    }

    #[test]
    fn conservation_holds_across_a_scripted_run() {
        let mut kv = tiny(3);
        for (seq, tokens) in [(1, 8), (2, 12), (1, 16), (3, 4), (2, 16)] {
            kv.touch(seq, tokens);
            let s = kv.stats();
            assert_eq!(s.pages_in, s.pages_resident + s.pages_evicted);
        }
        kv.finish(1);
        kv.finish(2);
        kv.touch(4, 12);
        let s = kv.stats();
        assert_eq!(s.pages_in, s.pages_resident + s.pages_evicted);
        assert!(s.pages_resident <= kv.capacity_pages());
    }

    #[test]
    fn eviction_fires_at_exactly_full_budget() {
        // Fill the cache to exactly its capacity — no eviction yet —
        // then one more page must evict exactly one victim and leave
        // residency pinned at capacity.
        let mut kv = tiny(4);
        let t = kv.touch(1, 16); // 4 pages: exactly full
        assert_eq!(t.allocated, 4);
        assert_eq!(t.evicted, 0, "filling to the boundary evicts nothing");
        assert_eq!(kv.stats().pages_resident, kv.capacity_pages());
        let t = kv.touch(2, 4); // 1 page over
        assert_eq!(t.allocated, 1);
        assert_eq!(t.evicted, 1, "the page past the boundary evicts one");
        let s = kv.stats();
        assert_eq!(s.pages_resident, kv.capacity_pages());
        assert_eq!(s.pages_in, s.pages_resident + s.pages_evicted);
    }

    #[test]
    fn zero_token_touch_still_pins_one_page() {
        // A request with no context yet still owns a page (`pages_for`
        // rounds up to at least one), so an empty decode slot cannot
        // slip through the budget accounting.
        let mut kv = tiny(4);
        assert_eq!(kv.pages_for(0), 1);
        let t = kv.touch(9, 0);
        assert_eq!(t.allocated, 1);
        assert_eq!(kv.stats().pages_resident, 1);
        // Touching again is a no-op: the page is already resident.
        let t = kv.touch(9, 0);
        assert_eq!(t.allocated + t.refaulted + t.evicted, 0);
    }

    #[test]
    fn oversized_context_evicts_its_own_oldest_pages() {
        // One sequence larger than the whole budget: the touch evicts
        // its own earliest pages mid-loop, conservation holds, and the
        // next touch refaults what was self-evicted.
        let mut kv = tiny(2);
        let t = kv.touch(1, 16); // 4 pages through a 2-page cache
        assert_eq!(t.allocated, 4);
        assert_eq!(t.evicted, 2, "the walk displaced its own head");
        let s = kv.stats();
        assert_eq!(s.pages_resident, kv.capacity_pages());
        assert_eq!(s.pages_in, s.pages_resident + s.pages_evicted);
        let t = kv.touch(1, 16);
        assert!(t.refaulted > 0, "self-evicted pages come back as refaults");
        assert_eq!(t.allocated, 0, "nothing above the high-water mark");
    }

    #[test]
    fn touch_after_finish_restarts_the_sequence() {
        let mut kv = tiny(8);
        kv.touch(1, 8);
        kv.finish(1);
        let t = kv.touch(1, 8);
        // Pages were still resident: nothing re-enters, they just became
        // live (and expensive to evict) again.
        assert_eq!(t.allocated + t.refaulted, 0);
        assert_eq!(kv.stats().pages_resident, 2);
    }

    proptest! {
        /// The conservation identity survives arbitrary interleavings of
        /// touches and finishes, and residency never exceeds capacity.
        #[test]
        fn kv_pages_are_conserved(
            capacity in 1u64..12,
            ops in proptest::collection::vec((0u64..6, 1usize..40, 0u8..2), 1..80),
        ) {
            let mut kv = tiny(capacity);
            for (seq, tokens, finish) in ops {
                if finish == 1 {
                    kv.finish(seq);
                } else {
                    kv.touch(seq, tokens);
                }
                let s = kv.stats();
                prop_assert_eq!(s.pages_in, s.pages_resident + s.pages_evicted);
                prop_assert!(s.pages_resident <= kv.capacity_pages());
            }
        }
    }
}
