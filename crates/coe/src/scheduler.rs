//! Online serving: seeded arrival processes, an admission queue, and
//! iteration-level (continuous) batching on one SN40L node.
//!
//! [`SambaCoeNode::serve_batch`] models the offline case — every prompt
//! is present at t = 0 and the whole batch runs to completion. Live CoE
//! traffic instead trickles in, so this module adds the three missing
//! pieces:
//!
//! 1. an [`ArrivalProcess`] — a deterministic, seeded request stream
//!    (burst, Poisson, or burst-train presets) built on
//!    [`PromptGenerator`];
//! 2. an admission queue with a configurable in-flight cap
//!    ([`SchedulerConfig::max_in_flight`]);
//! 3. a continuous-batching loop ([`SambaCoeNode::serve_online`]) that
//!    admits waiting requests at decode-iteration boundaries. Newly
//!    admitted requests pay one router pass and then join the decode
//!    rotation; a request whose expert is already HBM-resident joins for
//!    free, while a cold expert charges the DDR→HBM switch cost from the
//!    runtime's CoE cache model — admission is expert-switch-aware.
//!
//! Each request leaves a [`RequestRecord`] carrying queueing delay,
//! TTFT, and end-to-end latency; per-wave observations feed the node's
//! SLO window and (when a tracer is attached) the timeline under
//! sim-time spans.
//!
//! **Correctness anchor**: a single burst of N requests at t = 0 with
//! unbounded admission degenerates to exactly one admission wave, and
//! the aggregate [`ServeReport`] is assembled with the same float
//! expressions as [`SambaCoeNode::serve_batch`] — the reports are
//! bit-identical, which `tests/serve.rs` locks down. The fault-aware
//! [`SambaCoeNode::try_serve_online`] degenerates to
//! [`SambaCoeNode::try_serve_batch`] the same way: the per-site fault
//! draw sequences are identical, so even injected-fault runs agree
//! bit-for-bit on a burst.
//!
//! # Examples
//!
//! Arrival processes are pure functions of their seed — the same stream
//! twice is the same stream, and Poisson inter-arrival gaps accumulate
//! monotonically:
//!
//! ```
//! use sn_coe::scheduler::ArrivalProcess;
//!
//! let a = ArrivalProcess::poisson(0x5eed, 512, 200.0).generate(16);
//! let b = ArrivalProcess::poisson(0x5eed, 512, 200.0).generate(16);
//! assert_eq!(a, b, "seeded streams replay bit-identically");
//! assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
//!
//! // A burst degenerates to the offline batch: everything at t = 0.
//! let burst = ArrivalProcess::burst(0x5eed, 512).generate(4);
//! assert!(burst.iter().all(|r| r.arrival == sn_arch::TimeSecs::ZERO));
//! ```

use crate::router::{Prompt, PromptGenerator};
use crate::serving::{SambaCoeNode, ServeReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sn_arch::TimeSecs;
use sn_faults::{FaultDecision, FaultSite, Recovery};
use sn_runtime::coe::CoeError;
use sn_trace::{ArgValue, Counter, Metric, Track};
use std::collections::{HashSet, VecDeque};

/// Salt separating the arrival-time stream from the prompt-content
/// stream, so the same seed yields uncorrelated draws for each.
const ARRIVAL_STREAM_SALT: u64 = 0xa221_7a1b_57ae_a09d;

/// One request in flight toward the node: a prompt plus its arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineRequest {
    /// The prompt to serve.
    pub prompt: Prompt,
    /// When the request reaches the node's queue (model time).
    pub arrival: TimeSecs,
}

/// Shape of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Every request arrives at t = 0 — the offline whole-batch case.
    Burst,
    /// Poisson process: independent exponential inter-arrival gaps at
    /// `rate_rps` requests per second.
    Poisson {
        /// Offered load in requests per second. Must be positive.
        rate_rps: f64,
    },
    /// `size`-request bursts every `period` — diurnal-peak style traffic.
    BurstTrain {
        /// Requests per burst (at least 1).
        size: usize,
        /// Gap between consecutive bursts.
        period: TimeSecs,
    },
}

/// A deterministic, seeded request stream: prompts come from
/// [`PromptGenerator`], arrival times from the chosen
/// [`ArrivalPattern`]. Same seed ⇒ byte-identical stream; different
/// seed ⇒ different prompts and different arrival times.
///
/// ```
/// use sn_coe::scheduler::ArrivalProcess;
///
/// let a = ArrivalProcess::poisson(7, 1024, 10.0).generate(16);
/// let b = ArrivalProcess::poisson(7, 1024, 10.0).generate(16);
/// assert_eq!(a, b, "seed-stable");
/// assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalProcess {
    seed: u64,
    prompt_tokens: usize,
    pattern: ArrivalPattern,
}

impl ArrivalProcess {
    /// A stream with an explicit [`ArrivalPattern`].
    ///
    /// # Panics
    ///
    /// Panics on a non-positive Poisson rate or a zero-size burst train.
    pub fn new(seed: u64, prompt_tokens: usize, pattern: ArrivalPattern) -> Self {
        match pattern {
            ArrivalPattern::Poisson { rate_rps } => {
                assert!(rate_rps > 0.0, "Poisson rate must be positive");
            }
            ArrivalPattern::BurstTrain { size, .. } => {
                assert!(size > 0, "burst size must be at least 1");
            }
            ArrivalPattern::Burst => {}
        }
        ArrivalProcess {
            seed,
            prompt_tokens,
            pattern,
        }
    }

    /// Everything at t = 0 (degenerates to the offline batch).
    pub fn burst(seed: u64, prompt_tokens: usize) -> Self {
        Self::new(seed, prompt_tokens, ArrivalPattern::Burst)
    }

    /// Poisson arrivals at `rate_rps` requests/sec.
    ///
    /// # Panics
    ///
    /// Panics when `rate_rps` is not positive.
    pub fn poisson(seed: u64, prompt_tokens: usize, rate_rps: f64) -> Self {
        Self::new(seed, prompt_tokens, ArrivalPattern::Poisson { rate_rps })
    }

    /// `size`-request bursts every `period`.
    ///
    /// # Panics
    ///
    /// Panics when `size` is zero.
    pub fn burst_train(seed: u64, prompt_tokens: usize, size: usize, period: TimeSecs) -> Self {
        Self::new(
            seed,
            prompt_tokens,
            ArrivalPattern::BurstTrain { size, period },
        )
    }

    /// Draws the first `n` requests of the stream. Arrival times are
    /// non-decreasing by construction.
    pub fn generate(&self, n: usize) -> Vec<OnlineRequest> {
        let mut prompts = PromptGenerator::new(self.seed, self.prompt_tokens);
        let mut rng = StdRng::seed_from_u64(self.seed ^ ARRIVAL_STREAM_SALT);
        let mut elapsed = 0.0_f64;
        (0..n)
            .map(|i| {
                let arrival = match self.pattern {
                    ArrivalPattern::Burst => TimeSecs::ZERO,
                    ArrivalPattern::Poisson { rate_rps } => {
                        let u: f64 = rng.gen();
                        // Inverse-CDF exponential gap; 1 - u is in (0, 1].
                        elapsed += -(1.0 - u).ln() / rate_rps;
                        TimeSecs::from_secs(elapsed)
                    }
                    ArrivalPattern::BurstTrain { size, period } => period * ((i / size) as f64),
                };
                OnlineRequest {
                    prompt: prompts.next_prompt(),
                    arrival,
                }
            })
            .collect()
    }
}

/// Admission-queue tuning for [`SambaCoeNode::serve_online`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Maximum requests decoding concurrently. Arrived requests beyond
    /// the cap wait in the queue until a decode slot frees up. Zero is
    /// promoted to 1 (a scheduler that can admit nothing never finishes).
    pub max_in_flight: usize,
}

impl SchedulerConfig {
    /// No admission cap: everything that has arrived is admitted at the
    /// next iteration boundary.
    pub fn unbounded() -> Self {
        SchedulerConfig {
            max_in_flight: usize::MAX,
        }
    }

    /// At most `n` requests in flight (zero is promoted to 1).
    pub fn bounded(n: usize) -> Self {
        SchedulerConfig {
            max_in_flight: n.max(1),
        }
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Completion record of one online request — the per-request quantities
/// an operator's dashboard is built from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Prompt id.
    pub id: u64,
    /// Submission index into the request stream.
    pub index: usize,
    /// Expert that served the request.
    pub expert: usize,
    /// When the request reached the queue.
    pub arrival: TimeSecs,
    /// When the scheduler pulled it into an admission wave.
    pub admitted: TimeSecs,
    /// When its prefill finished (first output token exists).
    pub first_token: TimeSecs,
    /// When its last decode step finished.
    pub completed: TimeSecs,
    /// Output tokens generated.
    pub output_tokens: usize,
}

impl RequestRecord {
    /// Time spent waiting in the admission queue.
    pub fn queue_delay(&self) -> TimeSecs {
        self.admitted - self.arrival
    }

    /// Arrival to first output token (queueing included).
    pub fn ttft(&self) -> TimeSecs {
        self.first_token - self.arrival
    }

    /// Arrival to completion.
    pub fn latency(&self) -> TimeSecs {
        self.completed - self.arrival
    }
}

/// Result of one online serving run: the aggregate [`ServeReport`]
/// (assembled with `serve_batch`'s exact arithmetic) plus per-request
/// completion records and scheduler-level aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Aggregate latency breakdown across all admission waves. On a
    /// single t = 0 burst with unbounded admission this is bit-identical
    /// to [`SambaCoeNode::serve_batch`]'s report.
    pub report: ServeReport,
    /// One record per request, in completion order.
    pub records: Vec<RequestRecord>,
    /// Admission waves opened (each paid one router pass).
    pub waves: usize,
    /// Clock when the last request completed.
    pub makespan: TimeSecs,
}

impl OnlineReport {
    /// Total output tokens across all completed requests.
    pub fn total_output_tokens(&self) -> usize {
        self.records.iter().map(|r| r.output_tokens).sum()
    }

    /// Output tokens per second of makespan (0.0 for a zero makespan —
    /// never NaN).
    pub fn tokens_per_sec(&self) -> f64 {
        let secs = self.makespan.as_secs();
        if secs > 0.0 {
            self.total_output_tokens() as f64 / secs
        } else {
            0.0
        }
    }

    /// Nearest-rank percentile of end-to-end request latency.
    pub fn latency_percentile(&self, q: f64) -> TimeSecs {
        percentile(self.records.iter().map(RequestRecord::latency), q)
    }

    /// Nearest-rank percentile of time-to-first-token.
    pub fn ttft_percentile(&self, q: f64) -> TimeSecs {
        percentile(self.records.iter().map(RequestRecord::ttft), q)
    }

    /// Nearest-rank percentile of queueing delay.
    pub fn queue_delay_percentile(&self, q: f64) -> TimeSecs {
        percentile(self.records.iter().map(RequestRecord::queue_delay), q)
    }

    /// Mean queueing delay across requests.
    pub fn mean_queue_delay(&self) -> TimeSecs {
        if self.records.is_empty() {
            return TimeSecs::ZERO;
        }
        let sum: TimeSecs = self.records.iter().map(RequestRecord::queue_delay).sum();
        sum * (1.0 / self.records.len() as f64)
    }

    /// Sorts each per-request series once and returns a view that
    /// answers any number of percentile queries off the sorted buffers.
    /// Preferred over the single-shot `*_percentile` methods whenever a
    /// caller needs more than one quantile of a series (the serve-sweep
    /// summary asks for four), since those re-sort per call.
    pub fn percentiles(&self) -> OnlinePercentiles {
        OnlinePercentiles::new(&self.records)
    }
}

/// Sorted-once percentile view over an [`OnlineReport`]'s per-request
/// series. Built by [`OnlineReport::percentiles`]; each accessor is a
/// nearest-rank slice into an already-sorted buffer, so querying many
/// quantiles costs one sort per series total instead of one per call.
#[derive(Debug, Clone)]
pub struct OnlinePercentiles {
    latency: Vec<f64>,
    ttft: Vec<f64>,
    queue_delay: Vec<f64>,
}

impl OnlinePercentiles {
    fn new(records: &[RequestRecord]) -> Self {
        let sorted = |series: fn(&RequestRecord) -> TimeSecs| {
            let mut buf: Vec<f64> = records.iter().map(|r| series(r).as_secs()).collect();
            sn_profile::sort_for_quantiles(&mut buf);
            buf
        };
        OnlinePercentiles {
            latency: sorted(RequestRecord::latency),
            ttft: sorted(RequestRecord::ttft),
            queue_delay: sorted(RequestRecord::queue_delay),
        }
    }

    /// Nearest-rank percentile of end-to-end request latency.
    pub fn latency(&self, q: f64) -> TimeSecs {
        TimeSecs::from_secs(sn_profile::nearest_rank_sorted(&self.latency, q))
    }

    /// Nearest-rank percentile of time-to-first-token.
    pub fn ttft(&self, q: f64) -> TimeSecs {
        TimeSecs::from_secs(sn_profile::nearest_rank_sorted(&self.ttft, q))
    }

    /// Nearest-rank percentile of queueing delay.
    pub fn queue_delay(&self, q: f64) -> TimeSecs {
        TimeSecs::from_secs(sn_profile::nearest_rank_sorted(&self.queue_delay, q))
    }
}

/// Exact nearest-rank percentile, delegating to `sn-profile`'s shared
/// quantile rule (the SLO window uses the very same functions, so the
/// two definitions cannot drift). An empty iterator yields zero.
fn percentile(values: impl Iterator<Item = TimeSecs>, q: f64) -> TimeSecs {
    let mut sorted: Vec<f64> = values.map(TimeSecs::as_secs).collect();
    sn_profile::sort_for_quantiles(&mut sorted);
    TimeSecs::from_secs(sn_profile::nearest_rank_sorted(&sorted, q))
}

/// A request currently in the decode rotation.
struct ActiveRequest {
    index: usize,
    id: u64,
    expert: usize,
    arrival: TimeSecs,
    admitted: TimeSecs,
    first_token: TimeSecs,
    /// Socket slowdown factor drawn at admission (1.0 fault-free).
    factor: f64,
    steps_left: usize,
    /// Whether the decode program load has been charged yet.
    loaded: bool,
}

impl SambaCoeNode {
    /// Serves a deterministic stream of timed requests with continuous
    /// batching: at every decode-iteration boundary the scheduler admits
    /// arrived requests (up to `config.max_in_flight` in flight), pays
    /// one router pass per admission wave plus the DDR→HBM switch cost
    /// of any expert not already HBM-resident, prefills the newcomers,
    /// and then advances every in-flight request one decode step.
    ///
    /// A single burst at t = 0 with unbounded admission reproduces
    /// [`SambaCoeNode::serve_batch`]'s report bit-identically.
    ///
    /// # Panics
    ///
    /// Panics on an empty request stream.
    pub fn serve_online(
        &mut self,
        requests: &[OnlineRequest],
        output_tokens: usize,
        config: SchedulerConfig,
    ) -> OnlineReport {
        self.run_online(requests, output_tokens, config, false)
            .expect("fault-oblivious serving cannot fail")
    }

    /// Fault-aware [`SambaCoeNode::serve_online`]: consults the attached
    /// [`sn_faults::FaultPlan`] with the same per-site draw discipline as
    /// [`SambaCoeNode::try_serve_batch`] — one router consultation per
    /// admission wave, one expert-load consultation per cold activation,
    /// one socket consultation per admitted request. On a single t = 0
    /// burst with unbounded admission the draw sequences coincide and
    /// the report is bit-identical to `try_serve_batch`'s. With no plan
    /// attached this is exactly `serve_online`.
    ///
    /// # Errors
    ///
    /// [`CoeError::RouterTimeout`], [`CoeError::LoadFault`], or
    /// [`CoeError::SocketDown`] when injected faults outlast the retry
    /// budget (same contract as `try_serve_batch`).
    ///
    /// # Panics
    ///
    /// Panics on an empty request stream.
    pub fn try_serve_online(
        &mut self,
        requests: &[OnlineRequest],
        output_tokens: usize,
        config: SchedulerConfig,
    ) -> Result<OnlineReport, CoeError> {
        self.run_online(requests, output_tokens, config, true)
    }

    fn run_online(
        &mut self,
        requests: &[OnlineRequest],
        output_tokens: usize,
        config: SchedulerConfig,
        use_faults: bool,
    ) -> Result<OnlineReport, CoeError> {
        assert!(!requests.is_empty(), "empty request stream");
        let plan = if use_faults {
            self.faults.clone()
        } else {
            None
        };
        let n_experts = self.library.len();
        let capacity = config.max_in_flight.max(1);
        let steps = output_tokens.max(1);

        // Admission order: by arrival time, ties by submission order.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| {
            requests[a]
                .arrival
                .partial_cmp(&requests[b].arrival)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut queue: VecDeque<usize> = order.into();

        // Unit timings are pure functions of the compiled executables —
        // computed once, reused every wave. `run` and the aggregate
        // report below use the exact `serve_batch` expressions; only the
        // event-loop clock uses the per-step decomposition. The router
        // pass is wave-invariant too (its cost does not depend on the
        // wave's contents), so it joins the hoisted unit costs instead
        // of re-running the executor twice per wave.
        let (prefill_unit, decode_unit) = self.unit_run_times(output_tokens);
        let run = prefill_unit + decode_unit;
        let one_step = self.executor.run(&self.decode_exe, self.orch);
        let step_cost = one_step.exec + one_step.launch;
        let program_load = one_step.program_load;
        let router_once = self.router_time();

        let mut clock = TimeSecs::ZERO;
        let mut active: Vec<ActiveRequest> = Vec::new();
        let mut records: Vec<RequestRecord> = Vec::with_capacity(requests.len());
        let mut assignments = vec![0usize; requests.len()];

        let mut router_total = TimeSecs::ZERO;
        let mut switching_total = TimeSecs::ZERO;
        let mut recovery_total = Recovery::default();
        let mut hits = 0;
        let mut misses = 0;
        let mut factor_sum = 0.0_f64;
        let mut waves = 0_usize;
        let mut last_slo = None;

        // Scratch buffers reused across waves: the admission wave and
        // its within-wave expert dedup set. Cleared, never reallocated.
        let mut wave: Vec<usize> = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();

        while !queue.is_empty() || !active.is_empty() {
            // Admission at the decode-iteration boundary.
            wave.clear();
            while active.len() + wave.len() < capacity {
                match queue.front() {
                    Some(&i) if requests[i].arrival <= clock => {
                        queue.pop_front();
                        wave.push(i);
                    }
                    _ => break,
                }
            }
            if wave.is_empty() && active.is_empty() {
                // Idle node: jump to the next arrival.
                let &next = queue.front().expect("loop guard: queue is non-empty");
                clock = clock.max(requests[next].arrival);
                continue;
            }

            if !wave.is_empty() {
                waves += 1;
                let wave_start = clock;
                let mut wave_recovery = Recovery::default();
                for &i in &wave {
                    assignments[i] = self.route_one(&requests[i].prompt, n_experts);
                }

                // One router pass over the newly admitted requests.
                let router_cost = match &plan {
                    None => router_once,
                    Some(plan) => {
                        let (factor, rec) = self
                            .retry
                            .run(|_| match plan.decide(FaultSite::RouterDecision) {
                                FaultDecision::Ok => Ok(1.0),
                                FaultDecision::Slow(factor) => Ok(factor),
                                FaultDecision::Fail => Err(router_once),
                            })
                            .map_err(|e| CoeError::RouterTimeout {
                                attempts: e.attempts,
                            })?;
                        if rec.retries > 0 && self.tracer.is_enabled() {
                            self.tracer
                                .count(Counter::RetriesAbsorbed, u64::from(rec.retries));
                            self.tracer.instant(
                                Track::Coe,
                                "router-retry",
                                &[
                                    ("retries", ArgValue::from(u64::from(rec.retries))),
                                    ("recovery_us", ArgValue::from(rec.time.as_micros())),
                                ],
                            );
                        }
                        clock += rec.time;
                        wave_recovery.merge(rec);
                        router_once * factor
                    }
                };
                router_total += router_cost;
                clock += router_cost;

                // Activate the wave's experts, deduplicated within the
                // wave. An expert left HBM-resident by an earlier wave
                // comes back as a cache hit with zero switch time — the
                // "free join" the cache model gives continuous batching.
                let mut wave_switching = TimeSecs::ZERO;
                let mut wave_hits = 0;
                let mut wave_misses = 0;
                seen.clear();
                for &i in &wave {
                    let e = assignments[i];
                    if !seen.insert(e) {
                        continue;
                    }
                    // The expert index already names the expert: borrow
                    // the interned name from the library instead of
                    // cloning a String per cold activation per wave.
                    let name = self.library.expert(e).name.as_str();
                    let (outcome, load_rec) = match &plan {
                        None => (
                            self.runtime.activate(name).expect("expert registered"),
                            Recovery::default(),
                        ),
                        Some(_) => self.runtime.activate_with_recovery(name)?,
                    };
                    if outcome.hit {
                        wave_hits += 1;
                    } else {
                        wave_misses += 1;
                    }
                    wave_switching += outcome.switch_time;
                    clock += outcome.switch_time + load_rec.time;
                    wave_recovery.merge(load_rec);
                }
                switching_total += wave_switching;
                hits += wave_hits;
                misses += wave_misses;

                // Prefill the newcomers sequentially; each draws its
                // socket factor here, exactly where `try_serve_batch`
                // draws per prompt.
                let mut wave_factor_sum = 0.0_f64;
                for &i in &wave {
                    let factor = match &plan {
                        None => 1.0,
                        Some(plan) => {
                            let (factor, rec) = self
                                .retry
                                .run(|_| match plan.decide(FaultSite::SocketLink) {
                                    FaultDecision::Ok => Ok(1.0),
                                    FaultDecision::Slow(factor) => Ok(factor),
                                    FaultDecision::Fail => Err(run),
                                })
                                .map_err(|e| CoeError::SocketDown {
                                    attempts: e.attempts,
                                })?;
                            if rec.retries > 0 && self.tracer.is_enabled() {
                                self.tracer
                                    .count(Counter::RetriesAbsorbed, u64::from(rec.retries));
                                self.tracer.instant(
                                    Track::Coe,
                                    "socket-retry",
                                    &[
                                        ("retries", ArgValue::from(u64::from(rec.retries))),
                                        ("recovery_us", ArgValue::from(rec.time.as_micros())),
                                    ],
                                );
                            }
                            clock += rec.time;
                            wave_recovery.merge(rec);
                            factor
                        }
                    };
                    wave_factor_sum += factor;
                    clock += prefill_unit * factor;
                    active.push(ActiveRequest {
                        index: i,
                        id: requests[i].prompt.id,
                        expert: assignments[i],
                        arrival: requests[i].arrival,
                        admitted: wave_start,
                        first_token: clock,
                        factor,
                        steps_left: steps,
                        loaded: false,
                    });
                }
                factor_sum += wave_factor_sum;
                recovery_total.merge(wave_recovery);

                // Per-wave SLO observation, built from a sub-report with
                // `serve_batch`'s field expressions so a one-wave burst
                // feeds the tracker the identical observation.
                let mut wave_report = ServeReport {
                    router: router_cost,
                    switching: wave_switching,
                    execution: if plan.is_some() {
                        run * wave_factor_sum
                    } else {
                        run * wave.len() as f64
                    },
                    recovery: wave_recovery.time,
                    retries: wave_recovery.retries,
                    expert_hits: wave_hits,
                    expert_misses: wave_misses,
                    assignments: wave.iter().map(|&i| assignments[i]).collect(),
                    metrics: None,
                    slo: None,
                };
                self.observe_slo(&mut wave_report, prefill_unit, output_tokens);
                if wave_report.slo.is_some() {
                    last_slo = wave_report.slo;
                }

                if self.tracer.is_enabled() {
                    self.tracer.count(Counter::AdmissionWaves, 1);
                    self.tracer
                        .count(Counter::RequestsAdmitted, wave.len() as u64);
                    self.tracer
                        .count(Counter::RouterDecisions, wave.len() as u64);
                    self.tracer.span_at(
                        Track::Coe,
                        1,
                        format!("wave{waves}:admit"),
                        wave_start,
                        clock - wave_start,
                        &[
                            ("requests", ArgValue::from(wave.len())),
                            ("cold_experts", ArgValue::from(wave_misses)),
                        ],
                    );
                }
            }

            // One decode iteration: every in-flight request advances one
            // token; completions free admission slots for the next wave.
            // `retain_mut` visits in order and compacts in place, so the
            // rotation order matches the old drain-and-rebuild loop with
            // none of its per-iteration Vec allocation.
            active.retain_mut(|req| {
                let cost = if req.loaded {
                    step_cost
                } else {
                    req.loaded = true;
                    step_cost + program_load
                };
                clock += cost * req.factor;
                req.steps_left -= 1;
                if req.steps_left > 0 {
                    return true;
                }
                let record = RequestRecord {
                    id: req.id,
                    index: req.index,
                    expert: req.expert,
                    arrival: req.arrival,
                    admitted: req.admitted,
                    first_token: req.first_token,
                    completed: clock,
                    output_tokens: steps,
                };
                if self.tracer.is_enabled() {
                    self.tracer.count(Counter::PromptsServed, 1);
                    self.tracer.observe(Metric::Request, record.latency());
                    self.tracer
                        .observe(Metric::QueueDelay, record.queue_delay());
                    self.tracer.observe(Metric::Ttft, record.ttft());
                    self.tracer.span_at(
                        Track::Coe,
                        2,
                        format!("req{}:expert{}", record.id, record.expert),
                        record.admitted,
                        record.completed - record.admitted,
                        &[
                            ("expert", ArgValue::from(record.expert)),
                            ("queue_us", ArgValue::from(record.queue_delay().as_micros())),
                            ("ttft_us", ArgValue::from(record.ttft().as_micros())),
                        ],
                    );
                }
                records.push(record);
                false
            });
        }

        // Aggregate execution with `serve_batch` / `try_serve_batch`'s
        // exact expressions (`run * n`, not a per-step summation loop) so
        // the one-wave burst degenerates bit-identically.
        let execution = if plan.is_some() {
            run * factor_sum
        } else {
            run * requests.len() as f64
        };
        let report = ServeReport {
            router: router_total,
            switching: switching_total,
            execution,
            recovery: recovery_total.time,
            retries: recovery_total.retries,
            expert_hits: hits,
            expert_misses: misses,
            assignments,
            metrics: self.tracer.metrics_opt(),
            slo: last_slo,
        };
        Ok(OnlineReport {
            report,
            records,
            waves,
            makespan: clock,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::ExpertLibrary;
    use sn_arch::NodeSpec;

    fn coe(experts: usize) -> SambaCoeNode {
        SambaCoeNode::new(NodeSpec::sn40l_node(), ExpertLibrary::new(experts), 1024)
    }

    #[test]
    fn burst_process_places_everything_at_time_zero() {
        let reqs = ArrivalProcess::burst(3, 1024).generate(8);
        assert_eq!(reqs.len(), 8);
        assert!(reqs.iter().all(|r| r.arrival.is_zero()));
        // Prompts match the plain generator stream for the same seed.
        let prompts = PromptGenerator::new(3, 1024).batch(8);
        let stream: Vec<_> = reqs.into_iter().map(|r| r.prompt).collect();
        assert_eq!(stream, prompts);
    }

    #[test]
    fn poisson_gaps_are_positive_and_rate_scaled() {
        let slow = ArrivalProcess::poisson(3, 1024, 2.0).generate(64);
        let fast = ArrivalProcess::poisson(3, 1024, 20.0).generate(64);
        assert!(slow.windows(2).all(|w| w[0].arrival < w[1].arrival));
        // 10x the rate compresses the horizon by 10x exactly: the same
        // uniform draws are scaled by 1/rate.
        let ratio = slow[63].arrival.as_secs() / fast[63].arrival.as_secs();
        assert!((ratio - 10.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn burst_train_steps_by_period() {
        let reqs = ArrivalProcess::burst_train(1, 1024, 4, TimeSecs::from_secs(1.0)).generate(10);
        assert!(reqs[0..4].iter().all(|r| r.arrival.is_zero()));
        assert!(reqs[4..8]
            .iter()
            .all(|r| (r.arrival.as_secs() - 1.0).abs() < 1e-12));
        assert!(reqs[8..10]
            .iter()
            .all(|r| (r.arrival.as_secs() - 2.0).abs() < 1e-12));
    }

    #[test]
    fn bounded_admission_caps_in_flight_and_queues_the_rest() {
        let mut node = coe(40);
        let reqs = ArrivalProcess::burst(5, 1024).generate(9);
        let out = node.serve_online(&reqs, 4, SchedulerConfig::bounded(2));
        assert_eq!(out.records.len(), 9);
        // 9 requests through a 2-wide window: at least ceil(9/2) waves.
        assert!(out.waves >= 5, "waves {}", out.waves);
        // Later admissions queued: someone waited.
        assert!(out.queue_delay_percentile(1.0) > TimeSecs::ZERO);
        // Everyone in the first wave did not wait.
        assert!(out.records.iter().any(|r| r.queue_delay().is_zero()));
    }

    #[test]
    fn spaced_arrivals_leave_the_node_idle_between_requests() {
        let mut node = coe(40);
        // Gaps far wider than one request's service time.
        let reqs = ArrivalProcess::burst_train(5, 1024, 1, TimeSecs::from_secs(10.0)).generate(3);
        let out = node.serve_online(&reqs, 4, SchedulerConfig::default());
        assert_eq!(out.waves, 3, "each arrival gets its own wave");
        assert!(out
            .records
            .iter()
            .all(|r| r.queue_delay().is_zero() || r.queue_delay().as_secs() < 1e-9));
        // Makespan is dominated by the 20 s of idle gaps.
        assert!(out.makespan.as_secs() > 20.0);
        // The report's busy-time total is far below the makespan.
        assert!(out.report.total().as_secs() < 1.0);
    }

    #[test]
    fn record_times_are_internally_consistent() {
        let mut node = coe(40);
        let reqs = ArrivalProcess::poisson(11, 1024, 50.0).generate(12);
        let out = node.serve_online(&reqs, 6, SchedulerConfig::bounded(4));
        for r in &out.records {
            assert!(r.arrival <= r.admitted);
            assert!(r.admitted < r.first_token);
            assert!(r.first_token < r.completed);
            assert!(r.completed <= out.makespan);
            assert_eq!(r.output_tokens, 6);
        }
        // Completion order is the record order.
        assert!(out
            .records
            .windows(2)
            .all(|w| w[0].completed <= w[1].completed));
    }

    #[test]
    fn zero_max_in_flight_is_promoted_not_stuck() {
        let mut node = coe(40);
        let reqs = ArrivalProcess::burst(5, 1024).generate(3);
        let out = node.serve_online(&reqs, 2, SchedulerConfig::bounded(0));
        assert_eq!(out.records.len(), 3);
    }

    #[test]
    fn percentiles_cover_the_record_range() {
        let mut node = coe(40);
        let reqs = ArrivalProcess::poisson(11, 1024, 30.0).generate(10);
        let out = node.serve_online(&reqs, 4, SchedulerConfig::bounded(2));
        let p0 = out.latency_percentile(0.0);
        let p50 = out.latency_percentile(0.5);
        let p100 = out.latency_percentile(1.0);
        assert!(p0 <= p50 && p50 <= p100);
        let max = out
            .records
            .iter()
            .map(|r| r.latency())
            .fold(TimeSecs::ZERO, TimeSecs::max);
        assert_eq!(p100, max);
        assert!(out.tokens_per_sec() > 0.0);
        assert_eq!(out.total_output_tokens(), 40);
    }

    #[test]
    fn empty_record_set_helpers_are_nan_safe() {
        // A run can legitimately complete zero requests (everything shed
        // under chaos): every aggregate helper must stay finite and zero
        // rather than poisoning downstream tables with NaN.
        let out = OnlineReport {
            report: ServeReport {
                router: TimeSecs::ZERO,
                switching: TimeSecs::ZERO,
                execution: TimeSecs::ZERO,
                recovery: TimeSecs::ZERO,
                retries: 0,
                expert_hits: 0,
                expert_misses: 0,
                assignments: Vec::new(),
                metrics: None,
                slo: None,
            },
            records: Vec::new(),
            waves: 0,
            makespan: TimeSecs::ZERO,
        };
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(out.latency_percentile(q), TimeSecs::ZERO);
            assert_eq!(out.ttft_percentile(q), TimeSecs::ZERO);
            assert_eq!(out.queue_delay_percentile(q), TimeSecs::ZERO);
        }
        assert_eq!(out.mean_queue_delay(), TimeSecs::ZERO);
        assert!(out.mean_queue_delay().as_secs().is_finite());
        assert_eq!(out.tokens_per_sec(), 0.0);
        assert_eq!(out.total_output_tokens(), 0);
        let view = out.percentiles();
        assert_eq!(view.latency(0.99), TimeSecs::ZERO);
        assert_eq!(view.ttft(0.99), TimeSecs::ZERO);
        assert_eq!(view.queue_delay(0.99), TimeSecs::ZERO);
    }
}
