//! Platform comparison model (Figures 1 and 12, Table III).
//!
//! The same CoE request — route, switch, prefill, decode — is costed on
//! the SN40L node and on DGX A100/H100, following the paper's §VI-B
//! methodology: SN40L times come from the compiled-executable model; DGX
//! times come from the roofline executor with published specs and
//! optimistic assumptions (CUDA-graph launches, full HBM+host capacity
//! available for weights).

use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, Calibration, DgxSpec, NodeSpec, Orchestration, TimeSecs};
use sn_baseline::{GpuExecutor, LaunchMode};
use sn_compiler::{Compiler, FusionPolicy};
use sn_models::{build, Phase, TransformerConfig};
use sn_runtime::executor::NodeExecutor;

/// The three platforms of §VI-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    Sn40l,
    DgxA100,
    DgxH100,
}

impl Platform {
    pub const ALL: [Platform; 3] = [Platform::Sn40l, Platform::DgxA100, Platform::DgxH100];

    pub fn name(self) -> &'static str {
        match self {
            Platform::Sn40l => "SN40L Node",
            Platform::DgxA100 => "DGX A100",
            Platform::DgxH100 => "DGX H100",
        }
    }
}

/// Per-request latency breakdown (the Figure 1 decomposition).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    pub router: TimeSecs,
    pub switching: TimeSecs,
    pub prefill: TimeSecs,
    pub decode: TimeSecs,
}

impl LatencyBreakdown {
    pub fn total(self) -> TimeSecs {
        self.router + self.switching + self.prefill + self.decode
    }

    /// Model execution only (expert prefill + decode).
    pub fn execution(self) -> TimeSecs {
        self.prefill + self.decode
    }

    /// Fraction of the request spent switching models; 0.0 for a
    /// zero-total breakdown (never NaN).
    pub fn switching_fraction(self) -> f64 {
        let total = self.total().as_secs();
        if total == 0.0 {
            0.0
        } else {
            self.switching.as_secs() / total
        }
    }
}

/// Precomputed per-platform unit costs, reusable across a Figure 12 sweep.
#[derive(Debug, Clone)]
pub struct ComparisonModel {
    prompt_tokens: usize,
    expert_bytes: Bytes,
    router_steps: f64,
    /// (prefill, decode-step, switch bandwidth, resident experts, max experts)
    platforms: Vec<(Platform, PlatformCosts)>,
}

#[derive(Debug, Clone, Copy)]
struct PlatformCosts {
    prefill: TimeSecs,
    decode_step: TimeSecs,
    switch_bw: sn_arch::Bandwidth,
    resident_experts: usize,
    max_experts: usize,
}

impl ComparisonModel {
    /// Builds the model for a given prompt length, compiling/evaluating
    /// the Llama2-7B expert on every platform once.
    pub fn new(prompt_tokens: usize) -> Self {
        let cfg = TransformerConfig::llama2_7b();
        let calib = Calibration::baseline();
        let expert_bytes = cfg.param_bytes();
        let prefill_graph =
            build(&cfg, Phase::Prefill { prompt_tokens }, 1, 8).expect("prefill builds");
        let decode_graph = build(
            &cfg,
            Phase::Decode {
                past_tokens: prompt_tokens,
            },
            1,
            8,
        )
        .expect("decode builds");

        let mut platforms = Vec::new();
        // SN40L.
        {
            let node = NodeSpec::sn40l_node();
            let compiler = Compiler::new(node.socket.clone(), calib.clone());
            let prefill_exe = compiler
                .compile(&prefill_graph, FusionPolicy::Spatial)
                .expect("prefill compiles");
            let decode_exe = compiler
                .compile(&decode_graph, FusionPolicy::Spatial)
                .expect("decode compiles");
            let exec = NodeExecutor::new(node.clone(), calib.clone());
            let hbm_reserve = Bytes::from_gib(48);
            let budget = node.hbm_capacity().saturating_sub(hbm_reserve);
            platforms.push((
                Platform::Sn40l,
                PlatformCosts {
                    prefill: exec.run(&prefill_exe, Orchestration::Hardware).total,
                    decode_step: exec.run(&decode_exe, Orchestration::Hardware).total,
                    switch_bw: node.model_switch_bandwidth(),
                    resident_experts: (budget.as_f64() / expert_bytes.as_f64()) as usize,
                    max_experts: (node.ddr_capacity().as_f64() / expert_bytes.as_f64()) as usize,
                },
            ));
        }
        // DGXs.
        for (platform, dgx) in [
            (Platform::DgxA100, DgxSpec::dgx_a100()),
            (Platform::DgxH100, DgxSpec::dgx_h100()),
        ] {
            let exec = GpuExecutor::new(dgx.clone(), calib.clone());
            platforms.push((
                platform,
                PlatformCosts {
                    prefill: exec.run(&prefill_graph, LaunchMode::CudaGraph).total,
                    decode_step: exec.run(&decode_graph, LaunchMode::CudaGraph).total,
                    switch_bw: dgx.model_switch_bandwidth(),
                    resident_experts: (dgx.hbm_for_experts().as_f64() / expert_bytes.as_f64())
                        as usize,
                    max_experts: (dgx.total_expert_capacity().as_f64() / expert_bytes.as_f64())
                        as usize,
                },
            ));
        }
        ComparisonModel {
            prompt_tokens,
            expert_bytes,
            router_steps: calib.router_equiv_decode_steps,
            platforms,
        }
    }

    fn costs(&self, p: Platform) -> PlatformCosts {
        self.platforms
            .iter()
            .find(|(q, _)| *q == p)
            .map(|&(_, c)| c)
            .expect("every platform is precomputed")
    }

    pub fn prompt_tokens(&self) -> usize {
        self.prompt_tokens
    }

    /// Experts a platform keeps HBM-resident.
    pub fn resident_experts(&self, p: Platform) -> usize {
        self.costs(p).resident_experts
    }

    /// Maximum experts a platform can host at all (weights anywhere).
    pub fn max_experts(&self, p: Platform) -> usize {
        self.costs(p).max_experts
    }

    /// Expected distinct experts drawn by `batch` uniformly routed prompts
    /// over `n` experts.
    fn expected_distinct(n: usize, batch: usize) -> f64 {
        let n = n as f64;
        n * (1.0 - (1.0 - 1.0 / n).powi(batch as i32))
    }

    /// Latency of one batch request against a CoE of `n_experts`.
    /// Returns `None` when the platform runs out of memory (the paper's
    /// ">150 Experts → DGX OOM" row).
    pub fn request_latency(
        &self,
        platform: Platform,
        n_experts: usize,
        batch: usize,
        output_tokens: usize,
    ) -> Option<LatencyBreakdown> {
        assert!(n_experts > 0 && batch > 0 && output_tokens > 0);
        let c = self.costs(platform);
        if n_experts > c.max_experts {
            return None;
        }
        // Router: always HBM-resident (§V); prefill plus a couple of
        // classification decode steps.
        let router = c.prefill + c.decode_step * self.router_steps;
        // Switching: in steady state a fully-resident library never
        // misses; beyond residency, a randomly routed request would miss
        // with probability 1 - resident/n, but real traffic is skewed
        // toward hot experts (§III-B temporal locality — measured in the
        // `hbm_sensitivity` extension experiment), so the LRU cache
        // captures more than its proportional share.
        const TEMPORAL_LOCALITY: f64 = 0.6;
        let switching = if n_experts <= c.resident_experts {
            TimeSecs::ZERO
        } else {
            let miss_rate =
                (1.0 - c.resident_experts as f64 / n_experts as f64) * TEMPORAL_LOCALITY;
            let expected = Self::expected_distinct(n_experts, batch) * miss_rate;
            (self.expert_bytes / c.switch_bw) * expected
        };
        // Execution: each (prompt, expert) pair runs sequentially (§VI-B).
        let prefill = c.prefill * batch as f64;
        let decode = c.decode_step * (batch * output_tokens) as f64;
        Some(LatencyBreakdown {
            router,
            switching,
            prefill,
            decode,
        })
    }
}

/// Convenience: one-off request latency (builds a fresh model; for sweeps
/// construct [`ComparisonModel`] once).
pub fn request_latency(
    platform: Platform,
    n_experts: usize,
    batch: usize,
    output_tokens: usize,
    prompt_tokens: usize,
) -> Option<LatencyBreakdown> {
    ComparisonModel::new(prompt_tokens).request_latency(platform, n_experts, batch, output_tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ComparisonModel {
        ComparisonModel::new(1024)
    }

    #[test]
    fn dgx_ooms_just_above_150_experts() {
        let m = model();
        for p in [Platform::DgxA100, Platform::DgxH100] {
            assert!(m.request_latency(p, 150, 1, 20).is_some());
            assert!(
                m.request_latency(p, 160, 1, 20).is_none(),
                "{:?} should OOM",
                p
            );
        }
        assert!(m.request_latency(Platform::Sn40l, 850, 1, 20).is_some());
    }

    #[test]
    fn dgx_latency_spikes_when_experts_spill_to_host() {
        // Figure 12: the spike around ~45-50 experts.
        let m = model();
        let resident = m.resident_experts(Platform::DgxA100);
        assert!((40..=50).contains(&resident), "resident {resident}");
        let below = m
            .request_latency(Platform::DgxA100, resident, 1, 20)
            .unwrap();
        let above = m
            .request_latency(Platform::DgxA100, resident + 60, 1, 20)
            .unwrap();
        assert!(
            above.total().as_secs() > 2.0 * below.total().as_secs(),
            "spike: {} -> {}",
            below.total(),
            above.total()
        );
    }

    #[test]
    fn sn40l_stays_flat_across_expert_counts() {
        let m = model();
        let small = m.request_latency(Platform::Sn40l, 10, 1, 20).unwrap();
        let large = m.request_latency(Platform::Sn40l, 850, 1, 20).unwrap();
        assert!(
            large.total().as_secs() < 2.0 * small.total().as_secs(),
            "SN40L: {} -> {}",
            small.total(),
            large.total()
        );
    }

    #[test]
    fn switching_speedup_matches_31x_and_15x() {
        // Table III: model switching 31x vs DGX A100, 15x vs DGX H100.
        let m = model();
        let sn = m
            .request_latency(Platform::Sn40l, 150, 8, 20)
            .unwrap()
            .switching;
        let a = m
            .request_latency(Platform::DgxA100, 150, 8, 20)
            .unwrap()
            .switching;
        let h = m
            .request_latency(Platform::DgxH100, 150, 8, 20)
            .unwrap()
            .switching;
        let va = a / sn;
        let vh = h / sn;
        assert!(va > 26.0 && va < 38.0, "vs A100 {va:.1}x (paper 31x)");
        assert!(vh > 13.0 && vh < 19.0, "vs H100 {vh:.1}x (paper 15x)");
    }

    #[test]
    fn overall_speedup_exceeds_paper_floor_at_150_experts() {
        // Table III overall speedups (BS=8, 20 tokens): 6.6x vs A100,
        // 3.7x vs H100. The shape requirement: SN40L wins by mid-single
        // digits, and BS=8 wins by more than BS=1.
        let m = model();
        let speedup = |p, bs| {
            let sn = m
                .request_latency(Platform::Sn40l, 150, bs, 20)
                .unwrap()
                .total();
            m.request_latency(p, 150, bs, 20).unwrap().total() / sn
        };
        let a8 = speedup(Platform::DgxA100, 8);
        let a1 = speedup(Platform::DgxA100, 1);
        let h8 = speedup(Platform::DgxH100, 8);
        assert!(a8 > 4.0 && a8 < 12.0, "BS8 vs A100 {a8:.1}x (paper 6.6x)");
        assert!(h8 > 2.5 && h8 < 8.0, "BS8 vs H100 {h8:.1}x (paper 3.7x)");
        assert!(
            a8 > a1,
            "switching share grows with batch: {a8:.1} vs {a1:.1}"
        );
    }

    #[test]
    fn expert_speedup_grows_with_output_tokens() {
        // Table III: expert speedup 2.0x (20 tokens) vs 3.2x (200 tokens)
        // against A100 — decode amplifies the dataflow win.
        let m = model();
        let ratio = |tokens| {
            let sn = m
                .request_latency(Platform::Sn40l, 10, 1, tokens)
                .unwrap()
                .execution();
            let a = m
                .request_latency(Platform::DgxA100, 10, 1, tokens)
                .unwrap()
                .execution();
            a / sn
        };
        let short = ratio(20);
        let long = ratio(200);
        assert!(
            long > short,
            "decode-heavy requests widen the gap: {short:.2} vs {long:.2}"
        );
        assert!(
            long > 2.2 && long < 4.5,
            "200-token expert speedup {long:.2} (paper 3.2x)"
        );
    }

    #[test]
    fn breakdown_matches_figure1_shape() {
        // Figure 1(a): on DGX, switching dwarfs execution for 20-token
        // requests once experts overflow HBM; on SN40L it does not.
        let m = model();
        let dgx = m.request_latency(Platform::DgxA100, 150, 1, 20).unwrap();
        let sn = m.request_latency(Platform::Sn40l, 150, 1, 20).unwrap();
        assert!(
            dgx.switching_fraction() > 0.5,
            "DGX fraction {:.2}",
            dgx.switching_fraction()
        );
        assert!(
            sn.switching_fraction() < 0.5,
            "SN40L fraction {:.2}",
            sn.switching_fraction()
        );
    }
}
