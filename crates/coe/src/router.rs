//! Prompt generation and routing (§II, Figure 2).
//!
//! The production router is itself a Llama2-7B-class classifier; here
//! routing is a deterministic seeded hash from prompt features to an
//! expert index. What the systems evaluation needs from the router is (a)
//! its own execution cost — modeled in [`crate::serving`] as a short
//! router-model run — and (b) a routing *distribution* over experts,
//! which drives switching behavior.

use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Task domains the experts specialize in (§II names coding, math, and
/// language translation among others).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    Coding,
    Math,
    Translation,
    Legal,
    Medical,
    Finance,
    Writing,
    Science,
    Chat,
    Summarization,
}

impl Domain {
    pub const ALL: [Domain; 10] = [
        Domain::Coding,
        Domain::Math,
        Domain::Translation,
        Domain::Legal,
        Domain::Medical,
        Domain::Finance,
        Domain::Writing,
        Domain::Science,
        Domain::Chat,
        Domain::Summarization,
    ];

    pub fn tag(self) -> &'static str {
        match self {
            Domain::Coding => "code",
            Domain::Math => "math",
            Domain::Translation => "translate",
            Domain::Legal => "legal",
            Domain::Medical => "medical",
            Domain::Finance => "finance",
            Domain::Writing => "writing",
            Domain::Science => "science",
            Domain::Chat => "chat",
            Domain::Summarization => "summarize",
        }
    }
}

/// One inference request.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prompt {
    pub id: u64,
    pub domain: Domain,
    /// Prompt length in tokens.
    pub tokens: usize,
}

/// Deterministic, seeded prompt stream. Samples in a batch are unrelated
/// (§VI-B: "samples in a batch have no relationship with each other").
#[derive(Debug, Clone)]
pub struct PromptGenerator {
    seed: u64,
    next_id: u64,
    prompt_tokens: usize,
}

impl PromptGenerator {
    pub fn new(seed: u64, prompt_tokens: usize) -> Self {
        PromptGenerator {
            seed,
            next_id: 0,
            prompt_tokens,
        }
    }

    /// Draws the next prompt.
    pub fn next_prompt(&mut self) -> Prompt {
        let id = self.next_id;
        self.next_id += 1;
        let mut h = DefaultHasher::new();
        (self.seed, id).hash(&mut h);
        let domain = Domain::ALL[(h.finish() % Domain::ALL.len() as u64) as usize];
        Prompt {
            id,
            domain,
            tokens: self.prompt_tokens,
        }
    }

    /// Draws a batch of prompts.
    pub fn batch(&mut self, n: usize) -> Vec<Prompt> {
        (0..n).map(|_| self.next_prompt()).collect()
    }
}

/// The router: maps each prompt to the most relevant expert (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Router {
    seed: u64,
}

impl Router {
    pub fn new(seed: u64) -> Self {
        Router { seed }
    }

    /// Routes a prompt to one of `n_experts` experts: prompts of the same
    /// domain concentrate on the domain's expert cluster, with some
    /// id-dependent dispersion (specialists per sub-task).
    ///
    /// # Panics
    ///
    /// Panics when `n_experts` is zero.
    pub fn route(&self, prompt: &Prompt, n_experts: usize) -> usize {
        assert!(n_experts > 0, "routing requires at least one expert");
        let mut h = DefaultHasher::new();
        (self.seed, prompt.domain, prompt.id % 16).hash(&mut h);
        (h.finish() % n_experts as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic() {
        let r = Router::new(7);
        let mut g = PromptGenerator::new(1, 512);
        let p = g.next_prompt();
        assert_eq!(r.route(&p, 150), r.route(&p, 150));
    }

    #[test]
    fn same_domain_prompts_reuse_experts() {
        // Temporal locality (§III-B): repeated domain traffic lands on a
        // bounded expert subset, which is what HBM caching exploits.
        let r = Router::new(7);
        let prompts: Vec<Prompt> = (0..64)
            .map(|id| Prompt {
                id,
                domain: Domain::Math,
                tokens: 512,
            })
            .collect();
        let experts: std::collections::HashSet<usize> =
            prompts.iter().map(|p| r.route(p, 150)).collect();
        assert!(
            experts.len() <= 16,
            "math prompts hit {} experts",
            experts.len()
        );
    }

    #[test]
    fn routing_spreads_across_library() {
        let r = Router::new(7);
        let mut g = PromptGenerator::new(3, 512);
        let hits: std::collections::HashSet<usize> =
            g.batch(512).iter().map(|p| r.route(p, 150)).collect();
        assert!(hits.len() > 30, "only {} experts used", hits.len());
    }

    #[test]
    fn generator_is_seed_stable() {
        let a: Vec<Prompt> = PromptGenerator::new(42, 512).batch(8);
        let b: Vec<Prompt> = PromptGenerator::new(42, 512).batch(8);
        assert_eq!(a, b);
        let c: Vec<Prompt> = PromptGenerator::new(43, 512).batch(8);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn routing_to_zero_experts_panics() {
        let r = Router::new(0);
        let p = Prompt {
            id: 0,
            domain: Domain::Chat,
            tokens: 8,
        };
        let _ = r.route(&p, 0);
    }
}
