//! Intra-run parallelism: per-node work lanes inside one serving wave.
//!
//! PR 5 parallelized *across* sweep points; a single large cluster run
//! was still one sequential event loop. This module holds the knobs and
//! pure helpers for parallelizing *inside* a run: [`ParMode`] selects
//! the engine, and [`RouteTable`] memoizes the router's (pure, finite)
//! input space so the per-wave route pass is a table lookup instead of
//! a hash per slot.
//!
//! The contract is the repo's signature guarantee extended one level
//! down: every report, trace counter, and export is **byte-identical**
//! at any `intra_jobs`. The design that makes this provable:
//!
//! - everything stateful (fault-plan RNG draws, expert activation /
//!   LRU mutation, failover adoption, tracer events) stays on the
//!   coordinator thread in the exact sequential order;
//! - only *pure per-node arithmetic* (the slot cursor walks) fans out
//!   to lanes, and each node's float operations form the identical
//!   chain the sequential loop would execute;
//! - a conservative barrier at the wave boundary joins all lanes before
//!   any result is observed.

use crate::router::{Domain, Prompt, Router};

/// Residue classes of `Prompt::id` the router distinguishes: its hash
/// keys on `(seed, domain, id % 16)`, so 16 classes per domain cover
/// the entire routing input space. [`RouteTable::build`] asserts this
/// stays in sync with [`Router::route`].
const ID_CLASSES: u64 = 16;

/// How a cluster executes the inside of one serving wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParMode {
    /// The legacy single-threaded event loop — the differential
    /// reference path, untouched.
    Sequential,
    /// Per-node work lanes fanned across this many worker threads, with
    /// a conservative barrier at wave boundaries. Byte-identical to
    /// [`ParMode::Sequential`] by construction (and by the
    /// `intra_diff` harness).
    Threads(usize),
}

impl ParMode {
    /// Maps a job count to a mode: `jobs <= 1` is the sequential
    /// reference path, mirroring `sn_bench::par::ordered_map`.
    pub fn from_jobs(jobs: usize) -> ParMode {
        if jobs <= 1 {
            ParMode::Sequential
        } else {
            ParMode::Threads(jobs)
        }
    }

    /// The worker count this mode fans across (1 for sequential).
    pub fn jobs(self) -> usize {
        match self {
            ParMode::Sequential => 1,
            ParMode::Threads(jobs) => jobs.max(2),
        }
    }
}

/// Precomputed routing decisions over the router's whole input space.
///
/// [`Router::route`] hashes `(seed, domain, id % 16)`: with |domains| ×
/// 16 possible keys the entire function is enumerable up front. The
/// table is built by *calling the router itself* on one probe prompt
/// per key, so every entry is bit-identical to a live route by
/// construction — there is no reimplementation to drift.
#[derive(Debug, Clone)]
pub struct RouteTable {
    experts: Vec<usize>,
    n_experts: usize,
}

impl RouteTable {
    /// Enumerates the router over every `(domain, id class)` key.
    ///
    /// # Panics
    ///
    /// Panics when `n_experts` is zero (same contract as
    /// [`Router::route`]).
    pub fn build(router: &Router, n_experts: usize) -> RouteTable {
        assert!(n_experts > 0, "routing requires at least one expert");
        let domains = Domain::ALL.len();
        let mut experts = vec![0usize; domains * ID_CLASSES as usize];
        for &domain in &Domain::ALL {
            // `Domain` is a plain enum declared in `Domain::ALL` order,
            // so the discriminant doubles as the table row.
            let d = domain as usize;
            for class in 0..ID_CLASSES {
                let probe = Prompt {
                    id: class,
                    domain,
                    tokens: 1,
                };
                experts[d * ID_CLASSES as usize + class as usize] = router.route(&probe, n_experts);
            }
        }
        RouteTable { experts, n_experts }
    }

    /// The expert library size this table was built for.
    pub fn n_experts(&self) -> usize {
        self.n_experts
    }

    /// The memoized route — bit-identical to
    /// `router.route(prompt, n_experts)` for the building router.
    #[inline]
    pub fn route(&self, prompt: &Prompt) -> usize {
        let d = prompt.domain as usize;
        self.experts[d * ID_CLASSES as usize + (prompt.id % ID_CLASSES) as usize]
    }
}

/// Disjoint-index shared writer: lets lanes write their slots' results
/// straight into the wave's output vector instead of buffering
/// per-lane fragments for a sequential merge pass.
///
/// Safety contract (checked by construction in the lane engine): every
/// index is written by at most one lane, and no element is read until
/// the wave barrier has joined every lane.
pub(crate) struct SharedWrites<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: lanes only ever `write` — and to disjoint indices — so
// handing the raw pointer to multiple threads cannot race; `T: Send`
// keeps the written values themselves transferable.
unsafe impl<T: Send> Sync for SharedWrites<T> {}

impl<T: Copy> SharedWrites<T> {
    pub(crate) fn new(slice: &mut [T]) -> SharedWrites<T> {
        SharedWrites {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    ///
    /// No other thread may read or write `index` concurrently. (`T:
    /// Copy` means no destructor runs on the overwritten element.)
    pub(crate) unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len, "lane wrote out of bounds");
        // SAFETY: index is in bounds and, per the caller contract,
        // this thread is the only one touching it.
        unsafe { self.ptr.add(index).write(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::PromptGenerator;

    #[test]
    fn par_mode_from_jobs_matches_sweep_convention() {
        assert_eq!(ParMode::from_jobs(0), ParMode::Sequential);
        assert_eq!(ParMode::from_jobs(1), ParMode::Sequential);
        assert_eq!(ParMode::from_jobs(2), ParMode::Threads(2));
        assert_eq!(ParMode::from_jobs(8), ParMode::Threads(8));
        assert_eq!(ParMode::Sequential.jobs(), 1);
        assert_eq!(ParMode::Threads(4).jobs(), 4);
    }

    #[test]
    fn route_table_matches_live_router_over_generated_prompts() {
        for seed in [0xc1a5fe2u64, 1, 0xdead_beef] {
            for n_experts in [1usize, 7, 150, 480] {
                let router = Router::new(seed);
                let table = RouteTable::build(&router, n_experts);
                let mut gen = PromptGenerator::new(seed ^ 0x5eed, 512);
                for p in gen.batch(512) {
                    assert_eq!(
                        table.route(&p),
                        router.route(&p, n_experts),
                        "table diverged for seed {seed:#x}, {n_experts} experts, prompt {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn route_table_covers_every_domain_and_id_class() {
        // Exhaustive over the router's actual key space: every domain ×
        // id-residue pair, with token counts varied to prove routing
        // never keys on prompt length.
        let router = Router::new(0xc1a5fe2);
        let table = RouteTable::build(&router, 120);
        for &domain in &Domain::ALL {
            for id in 0..64u64 {
                for tokens in [1usize, 128, 4096] {
                    let p = Prompt { id, domain, tokens };
                    assert_eq!(table.route(&p), router.route(&p, 120));
                }
            }
        }
    }
}
