//! Samba-CoE: a trillion-parameter Composition of Experts (§II, §V, §VI-B).
//!
//! - [`expert`]: the expert library — 150 Llama2-7B-class specialists
//!   summing to over a trillion parameters;
//! - [`router`]: deterministic prompt generation and routing (the router
//!   is itself a Llama2-7B-class model; its *quality* is irrelevant to the
//!   systems evaluation, so routing is a seeded hash over prompt domains);
//! - [`serving`]: the end-to-end pipeline on the SN40L node — run the
//!   router, switch the expert DDR→HBM, run the expert (Figure 9);
//! - [`scheduler`]: online serving — seeded arrival processes, an
//!   admission queue, and iteration-level continuous batching that
//!   degenerates bit-identically to [`serving`]'s batch path on a
//!   t = 0 burst;
//! - [`comparison`]: latency and breakdown models for SN40L vs DGX
//!   A100/H100 (Figures 1 and 12, Table III);
//! - [`tenancy`]: multi-tenant admission control over the cluster —
//!   SLO classes, token-bucket rate limits, bounded queues, load
//!   shedding, and wave-boundary preemption, chaos-aware;
//! - [`autoscale`]: a hysteretic SLO-driven capacity controller that
//!   grows/shrinks the cluster and re-homes experts between waves;
//! - [`placement`]: router-statistics-driven policy — predictive
//!   DDR→HBM prefetch at wave boundaries, hot-expert replication, and
//!   cold-expert spreading (PR 7);
//! - [`kv`]: a paged KV cache with cost-aware LRU eviction under the
//!   HBM budget shared with expert weights.
//!
//! # Example
//!
//! ```
//! use sn_coe::expert::ExpertLibrary;
//!
//! let lib = ExpertLibrary::samba_coe_150();
//! assert_eq!(lib.len(), 150);
//! // §I: "a CoE system with 150 experts and a trillion total parameters".
//! assert!(lib.total_params() > 1_000_000_000_000);
//! ```

pub mod autoscale;
pub mod cluster;
pub mod comparison;
pub mod expert;
pub mod generation;
pub mod kv;
pub mod lanes;
pub mod placement;
pub mod router;
pub mod scheduler;
pub mod serving;
pub mod tenancy;
pub mod workload;

pub use autoscale::{AutoscaleConfig, AutoscaleController, ScaleDecision, ScaleEvent};
pub use cluster::{
    ClusterReport, CoeCluster, PlacementOutcome, PrefetchOutcome, RebalanceReport, WaveOutcome,
    WavePlacement, WaveSlot,
};
pub use comparison::{request_latency, LatencyBreakdown, Platform};
pub use expert::{ExpertInfo, ExpertLibrary};
pub use generation::GenerationModel;
pub use kv::{KvStats, KvTouch, PagedKvCache, PagedKvConfig};
pub use lanes::{ParMode, RouteTable};
pub use placement::{
    ExpertStats, PlacementPlan, PlacementPolicy, PlacementView, PolicyConfig, PolicyReport,
    PrefetchPolicy, ServingPolicies,
};
pub use router::{Domain, Prompt, PromptGenerator, Router};
pub use scheduler::{
    ArrivalPattern, ArrivalProcess, OnlineReport, OnlineRequest, RequestRecord, SchedulerConfig,
};
pub use serving::{SambaCoeNode, ServeReport};
pub use tenancy::{
    merged_stream, ClassPolicy, RateLimit, ShedReason, ShedRecord, SloClass, TenancyConfig,
    TenancyReport, TenantRecord, TenantRequest, TenantSpec, TenantSummary, WaveFeature,
};
pub use workload::{TraceConfig, TraceGenerator};
