//! Trace-driven serving workloads.
//!
//! The §III-B argument rests on *temporal locality* in expert usage;
//! uniform routing understates it. This module generates deterministic
//! request traces with two real-world properties: a skewed (Zipf-like)
//! popularity distribution over domains and slow *drift* of the popular
//! set, so cache studies (LRU vs FIFO, HBM sizing) see realistic reuse.

use crate::router::{Domain, Prompt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Trace parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Zipf exponent over domains: 0.0 is uniform; ~1.0 is web-like skew.
    pub skew: f64,
    /// Requests between one-position rotations of the popularity ranking
    /// (0 disables drift).
    pub drift_period: usize,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            skew: 0.9,
            drift_period: 256,
            prompt_tokens: 1024,
        }
    }
}

/// A deterministic skewed-and-drifting prompt source.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
    rng: StdRng,
    /// Current popularity ranking of domains (index 0 = most popular).
    ranking: Vec<Domain>,
    /// Cumulative Zipf distribution over ranks.
    cdf: Vec<f64>,
    emitted: usize,
    next_id: u64,
}

impl TraceGenerator {
    pub fn new(seed: u64, config: TraceConfig) -> Self {
        let n = Domain::ALL.len();
        let weights: Vec<f64> = (1..=n)
            .map(|rank| 1.0 / (rank as f64).powf(config.skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        TraceGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            ranking: Domain::ALL.to_vec(),
            cdf,
            emitted: 0,
            next_id: 0,
        }
    }

    /// Draws the next request.
    pub fn next_prompt(&mut self) -> Prompt {
        if self.config.drift_period > 0
            && self.emitted > 0
            && self.emitted.is_multiple_of(self.config.drift_period)
        {
            // Drift: the least popular domain becomes the new favorite.
            self.ranking.rotate_right(1);
        }
        self.emitted += 1;
        let u: f64 = self.rng.gen();
        let rank = self
            .cdf
            .partition_point(|&c| c < u)
            .min(self.ranking.len() - 1);
        let id = self.next_id;
        self.next_id += 1;
        Prompt {
            id,
            domain: self.ranking[rank],
            tokens: self.config.prompt_tokens,
        }
    }

    /// Draws a batch.
    pub fn batch(&mut self, n: usize) -> Vec<Prompt> {
        (0..n).map(|_| self.next_prompt()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn domain_counts(trace: &mut TraceGenerator, n: usize) -> HashMap<Domain, usize> {
        let mut counts = HashMap::new();
        for _ in 0..n {
            *counts.entry(trace.next_prompt().domain).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn traces_are_seed_deterministic() {
        let cfg = TraceConfig::default();
        let a: Vec<Prompt> = TraceGenerator::new(1, cfg).batch(64);
        let b: Vec<Prompt> = TraceGenerator::new(1, cfg).batch(64);
        let c: Vec<Prompt> = TraceGenerator::new(2, cfg).batch(64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn skew_concentrates_traffic() {
        let cfg = TraceConfig {
            skew: 1.2,
            drift_period: 0,
            prompt_tokens: 64,
        };
        let mut trace = TraceGenerator::new(3, cfg);
        let counts = domain_counts(&mut trace, 2000);
        let mut sorted: Vec<usize> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top2: usize = sorted.iter().take(2).sum();
        assert!(
            top2 * 2 > 2000,
            "top-2 domains should carry >50%: {top2}/2000"
        );
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let cfg = TraceConfig {
            skew: 0.0,
            drift_period: 0,
            prompt_tokens: 64,
        };
        let mut trace = TraceGenerator::new(4, cfg);
        let counts = domain_counts(&mut trace, 5000);
        for (&d, &c) in &counts {
            assert!(
                (300..=700).contains(&c),
                "{d:?} drew {c} of 5000 under uniform skew"
            );
        }
    }

    #[test]
    fn drift_rotates_the_hot_domain() {
        let cfg = TraceConfig {
            skew: 1.5,
            drift_period: 500,
            prompt_tokens: 64,
        };
        let mut trace = TraceGenerator::new(5, cfg);
        let early = domain_counts(&mut trace, 400);
        // Skip across several drift periods.
        for _ in 0..4000 {
            trace.next_prompt();
        }
        let late = domain_counts(&mut trace, 400);
        let hot =
            |m: &HashMap<Domain, usize>| *m.iter().max_by_key(|(_, &c)| c).expect("non-empty").0;
        assert_ne!(hot(&early), hot(&late), "popularity should have drifted");
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut trace = TraceGenerator::new(6, TraceConfig::default());
        let batch = trace.batch(100);
        for (i, p) in batch.iter().enumerate() {
            assert_eq!(p.id, i as u64);
        }
    }
}
