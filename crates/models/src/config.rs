//! Transformer model descriptions for the Table II benchmarks.
//!
//! Dimensions follow the published model cards; parameter counts are
//! validated against the advertised sizes in tests.

use serde::{Deserialize, Serialize};
use sn_arch::Bytes;
use sn_dataflow::DType;

/// Normalization flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Norm {
    /// RMSNorm (Llama/Mistral family).
    Rms,
    /// LayerNorm (Bloom/Falcon family).
    Layer,
}

/// MLP activation flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Gated SiLU (SwiGLU): three MLP matrices.
    SwiGlu,
    /// Plain GELU: two MLP matrices.
    Gelu,
}

/// Attention layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attention {
    /// Full multi-head attention (as many KV heads as query heads).
    MultiHead,
    /// Grouped-query attention with this many KV heads.
    Grouped { kv_heads: usize },
}

/// Mixture-of-Experts MLP configuration (§II: "a CoE can leverage expert
/// models that are implemented internally as MoEs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Experts per MLP layer.
    pub experts: usize,
    /// Experts activated per token.
    pub top_k: usize,
}

/// A decoder-only transformer description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerConfig {
    pub name: String,
    pub hidden: usize,
    pub layers: usize,
    pub heads: usize,
    pub intermediate: usize,
    pub vocab: usize,
    pub norm: Norm,
    pub activation: Activation,
    pub attention: Attention,
    /// Rotary position embeddings (Llama family); Bloom uses ALiBi, which
    /// adds a bias instead of a rotation.
    pub rope: bool,
    /// Sliding-window attention span (Mistral); decode reads at most this
    /// many cached positions.
    pub sliding_window: Option<usize>,
    /// Attention and MLP run in parallel from one norm (Falcon).
    pub parallel_blocks: bool,
    /// Weight density for sparse training (sparseGPT is 87.5% sparse, so
    /// density 0.125); `1.0` means dense.
    pub weight_density: f64,
    /// Storage type of the weights (BF16 by default; INT8 for quantized
    /// experts, which doubles CoE capacity per byte of DDR).
    pub weight_dtype: DType,
    /// Mixture-of-Experts MLP, if this model is an MoE internally.
    pub moe: Option<MoeConfig>,
}

impl TransformerConfig {
    /// Llama2-7B: the expert and router architecture of Samba-CoE (§II).
    pub fn llama2_7b() -> Self {
        TransformerConfig {
            name: "llama2-7b".to_string(),
            hidden: 4096,
            layers: 32,
            heads: 32,
            intermediate: 11008,
            vocab: 32000,
            norm: Norm::Rms,
            activation: Activation::SwiGlu,
            attention: Attention::MultiHead,
            rope: true,
            sliding_window: None,
            parallel_blocks: false,
            weight_density: 1.0,
            weight_dtype: DType::Bf16,
            moe: None,
        }
    }

    /// Llama2-70B (GQA with 8 KV heads).
    pub fn llama2_70b() -> Self {
        TransformerConfig {
            name: "llama2-70b".to_string(),
            hidden: 8192,
            layers: 80,
            heads: 64,
            intermediate: 28672,
            vocab: 32000,
            norm: Norm::Rms,
            activation: Activation::SwiGlu,
            attention: Attention::Grouped { kv_heads: 8 },
            rope: true,
            sliding_window: None,
            parallel_blocks: false,
            weight_density: 1.0,
            weight_dtype: DType::Bf16,
            moe: None,
        }
    }

    /// Mistral-7B (GQA, sliding-window attention of 4096).
    pub fn mistral_7b() -> Self {
        TransformerConfig {
            name: "mistral-7b".to_string(),
            hidden: 4096,
            layers: 32,
            heads: 32,
            intermediate: 14336,
            vocab: 32000,
            norm: Norm::Rms,
            activation: Activation::SwiGlu,
            attention: Attention::Grouped { kv_heads: 8 },
            rope: true,
            sliding_window: Some(4096),
            parallel_blocks: false,
            weight_density: 1.0,
            weight_dtype: DType::Bf16,
            moe: None,
        }
    }

    /// Falcon-40B (GQA, parallel attention/MLP blocks, GELU, LayerNorm).
    pub fn falcon_40b() -> Self {
        TransformerConfig {
            name: "falcon-40b".to_string(),
            hidden: 8192,
            layers: 60,
            heads: 128,
            intermediate: 32768,
            vocab: 65024,
            norm: Norm::Layer,
            activation: Activation::Gelu,
            attention: Attention::Grouped { kv_heads: 8 },
            rope: true,
            sliding_window: None,
            parallel_blocks: true,
            weight_density: 1.0,
            weight_dtype: DType::Bf16,
            moe: None,
        }
    }

    /// Bloom-176B (ALiBi positions, LayerNorm, GELU).
    pub fn bloom_176b() -> Self {
        TransformerConfig {
            name: "bloom-176b".to_string(),
            hidden: 14336,
            layers: 70,
            heads: 112,
            intermediate: 57344,
            vocab: 250880,
            norm: Norm::Layer,
            activation: Activation::Gelu,
            attention: Attention::MultiHead,
            rope: false,
            sliding_window: None,
            parallel_blocks: false,
            weight_density: 1.0,
            weight_dtype: DType::Bf16,
            moe: None,
        }
    }

    /// LLaVA-1.5-7B's language model (Llama2-7B backbone; the multimodal
    /// benchmark prepends 576 vision tokens to the prompt).
    pub fn llava15_7b() -> Self {
        let mut cfg = Self::llama2_7b();
        cfg.name = "llava1.5-7b".to_string();
        cfg
    }

    /// The sparseGPT 13B training benchmark: Llama-13B dimensions with
    /// 87.5% unstructured weight sparsity (Table II).
    pub fn sparsegpt_13b() -> Self {
        TransformerConfig {
            name: "sparsegpt-13b".to_string(),
            hidden: 5120,
            layers: 40,
            heads: 40,
            intermediate: 13824,
            vocab: 32000,
            norm: Norm::Rms,
            activation: Activation::SwiGlu,
            attention: Attention::MultiHead,
            rope: true,
            sliding_window: None,
            parallel_blocks: false,
            weight_density: 0.125,
            weight_dtype: DType::Bf16,
            moe: None,
        }
    }

    /// A Mixtral-8x7B-style MoE (8 experts, top-2) on the Mistral-7B
    /// backbone — the "expert models implemented internally as MoEs" case.
    pub fn mixtral_8x7b() -> Self {
        let mut cfg = Self::mistral_7b();
        cfg.name = "mixtral-8x7b".to_string();
        cfg.moe = Some(MoeConfig {
            experts: 8,
            top_k: 2,
        });
        cfg
    }

    /// Returns this config with INT8-quantized weights.
    pub fn quantized_int8(mut self) -> Self {
        self.name = format!("{}-int8", self.name);
        self.weight_dtype = DType::Int8;
        self
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// KV heads (equals query heads for MHA).
    pub fn kv_heads(&self) -> usize {
        match self.attention {
            Attention::MultiHead => self.heads,
            Attention::Grouped { kv_heads } => kv_heads,
        }
    }

    /// Total parameter count (embeddings + layers + head).
    pub fn param_count(&self) -> u64 {
        let h = self.hidden as u64;
        let kv = (self.kv_heads() * self.head_dim()) as u64;
        let attn = h * h + 2 * h * kv + h * h; // Wq, Wk, Wv, Wo
        let mlp_one = match self.activation {
            Activation::SwiGlu => 3 * h * self.intermediate as u64,
            Activation::Gelu => 2 * h * self.intermediate as u64,
        };
        let mlp = match self.moe {
            Some(m) => mlp_one * m.experts as u64 + h * m.experts as u64, // + gate
            None => mlp_one,
        };
        let norms = 2 * h;
        let per_layer = attn + mlp + norms;
        let embed = self.vocab as u64 * h;
        // Tied or untied head: count one embedding plus one LM head.
        per_layer * self.layers as u64 + 2 * embed + h
    }

    /// Parameter bytes in the configured weight storage type.
    pub fn param_bytes(&self) -> Bytes {
        Bytes::new(self.param_count() * self.weight_dtype.size_bytes())
    }

    /// KV-cache bytes for one sequence of `tokens`, across all layers
    /// (both K and V), in BF16.
    pub fn kv_cache_bytes(&self, tokens: usize) -> Bytes {
        let per_layer = 2 * tokens as u64 * (self.kv_heads() * self.head_dim()) as u64 * 2;
        Bytes::new(per_layer * self.layers as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_match_model_cards() {
        let checks = [
            (TransformerConfig::llama2_7b(), 6.7e9, 0.4e9),
            (TransformerConfig::llama2_70b(), 69.0e9, 3.0e9),
            (TransformerConfig::mistral_7b(), 7.2e9, 0.5e9),
            (TransformerConfig::falcon_40b(), 41.0e9, 4.0e9),
            (TransformerConfig::bloom_176b(), 176.0e9, 9.0e9),
            (TransformerConfig::sparsegpt_13b(), 13.0e9, 1.0e9),
        ];
        for (cfg, expect, tol) in checks {
            let got = cfg.param_count() as f64;
            assert!(
                (got - expect).abs() < tol,
                "{}: {:.2}B params, expected ~{:.0}B",
                cfg.name,
                got / 1e9,
                expect / 1e9
            );
        }
    }

    #[test]
    fn expert_weights_are_about_13_5_gb() {
        // The Figure 1 / §VI-B arithmetic: a Llama2-7B expert is ~13.5 GB
        // of BF16 weights.
        let bytes = TransformerConfig::llama2_7b().param_bytes();
        assert!((bytes.as_gb() - 13.5).abs() < 1.0, "got {bytes}");
    }

    #[test]
    fn gqa_reduces_kv_cache() {
        let mha = TransformerConfig::llama2_7b().kv_cache_bytes(4096);
        let gqa = TransformerConfig::mistral_7b().kv_cache_bytes(4096);
        assert!(gqa.as_u64() * 3 < mha.as_u64());
    }

    #[test]
    fn head_dim_is_128_for_llama() {
        assert_eq!(TransformerConfig::llama2_7b().head_dim(), 128);
        assert_eq!(TransformerConfig::llama2_70b().head_dim(), 128);
    }

    #[test]
    fn mixtral_has_8x_mlp_parameters_but_top2_compute() {
        let dense = TransformerConfig::mistral_7b();
        let moe = TransformerConfig::mixtral_8x7b();
        let ratio = moe.param_count() as f64 / dense.param_count() as f64;
        // Mixtral is ~46.7B vs 7.2B: most parameters are MLP experts.
        assert!(ratio > 5.0 && ratio < 8.0, "param ratio {ratio:.1}");
    }

    #[test]
    fn int8_quantization_halves_expert_bytes() {
        let bf16 = TransformerConfig::llama2_7b();
        let int8 = TransformerConfig::llama2_7b().quantized_int8();
        assert_eq!(int8.param_count(), bf16.param_count());
        assert_eq!(int8.param_bytes().as_u64() * 2, bf16.param_bytes().as_u64());
    }

    #[test]
    fn sparsegpt_is_87_5_percent_sparse() {
        assert!((TransformerConfig::sparsegpt_13b().weight_density - 0.125).abs() < 1e-12);
    }
}
