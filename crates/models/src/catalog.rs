//! The Table II benchmark catalog.
//!
//! Each entry names a model, a phase, and the sequence configuration used
//! in §VI-A's fusion study (Figure 10/11). LLaVA's vision encoder is
//! folded into the prompt as 576 extra prefix tokens (the projector and
//! ViT contribute ~0.3B parameters and a proportionally small share of the
//! FLOPs; the decoder dominates).

use crate::config::TransformerConfig;
use crate::llm::{build, Phase};
use serde::{Deserialize, Serialize};
use sn_dataflow::Graph;

/// Vision prefix tokens for the LLaVA-1.5 multimodal benchmark.
pub const LLAVA_VISION_TOKENS: usize = 576;

/// Phase tag used in benchmark names (Table II "Configurations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkPhase {
    Prefill,
    Decode,
    Train,
}

impl BenchmarkPhase {
    pub fn tag(self) -> &'static str {
        match self {
            BenchmarkPhase::Prefill => "inf-prefill",
            BenchmarkPhase::Decode => "inf-decode",
            BenchmarkPhase::Train => "train",
        }
    }
}

/// One Figure 10 / Figure 11 benchmark.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Figure 10-style label, e.g. `llama7B-4k-inf-prefill`.
    pub name: String,
    pub config: TransformerConfig,
    pub phase: BenchmarkPhase,
    pub seq: usize,
    /// Batch size used in the fusion study.
    pub batch: usize,
    /// Sockets the benchmark runs on (FlashFFTConv uses one; everything
    /// else uses the 8-socket node — §VI-A).
    pub sockets: usize,
    /// Whether this entry is the FlashFFTConv kernel rather than an LLM.
    pub fft_conv: bool,
}

impl Benchmark {
    fn llm(config: TransformerConfig, phase: BenchmarkPhase, seq: usize, short: &str) -> Benchmark {
        let name = format!("{short}-{}k-{}", seq / 1024, phase.tag());
        Benchmark {
            name,
            config,
            phase,
            seq,
            batch: 1,
            sockets: 8,
            fft_conv: false,
        }
    }

    /// Builds this benchmark's per-socket dataflow graph.
    ///
    /// # Panics
    ///
    /// Panics on internal builder errors (a bug, covered by tests).
    pub fn build_graph(&self) -> Graph {
        if self.fft_conv {
            // 1M-element sequences via a 3-level radix-32 Monarch
            // decomposition per Table II, batched over 8 heads/filters
            // on one socket.
            return sn_dataflow::monarch::flash_fft_conv(8, 32, 4);
        }
        let phase = match self.phase {
            BenchmarkPhase::Prefill => Phase::Prefill {
                prompt_tokens: self.seq,
            },
            BenchmarkPhase::Decode => Phase::Decode {
                past_tokens: self.seq,
            },
            BenchmarkPhase::Train => Phase::Train { seq: self.seq },
        };
        build(&self.config, phase, self.batch, self.sockets)
            .expect("catalog benchmarks are well-formed")
    }
}

/// The full Table II suite in the paper's order.
pub fn table2() -> Vec<Benchmark> {
    let mut v = Vec::new();
    let llama7 = TransformerConfig::llama2_7b();
    v.push(Benchmark::llm(
        llama7.clone(),
        BenchmarkPhase::Prefill,
        4096,
        "llama7B",
    ));
    v.push(Benchmark::llm(
        llama7.clone(),
        BenchmarkPhase::Decode,
        4096,
        "llama7B",
    ));
    v.push(Benchmark::llm(
        llama7,
        BenchmarkPhase::Train,
        4096,
        "llama7B",
    ));
    v.push(Benchmark::llm(
        TransformerConfig::sparsegpt_13b(),
        BenchmarkPhase::Train,
        2048,
        "sparseGPT-13B",
    ));
    let llama70 = TransformerConfig::llama2_70b();
    v.push(Benchmark::llm(
        llama70.clone(),
        BenchmarkPhase::Prefill,
        4096,
        "llama70B",
    ));
    v.push(Benchmark::llm(
        llama70,
        BenchmarkPhase::Decode,
        4096,
        "llama70B",
    ));
    let bloom = TransformerConfig::bloom_176b();
    v.push(Benchmark::llm(
        bloom.clone(),
        BenchmarkPhase::Prefill,
        8192,
        "bloom176B",
    ));
    v.push(Benchmark::llm(
        bloom,
        BenchmarkPhase::Decode,
        8192,
        "bloom176B",
    ));
    let mistral = TransformerConfig::mistral_7b();
    v.push(Benchmark::llm(
        mistral.clone(),
        BenchmarkPhase::Prefill,
        2048,
        "mistral7B",
    ));
    v.push(Benchmark::llm(
        mistral.clone(),
        BenchmarkPhase::Decode,
        2048,
        "mistral7B",
    ));
    v.push(Benchmark::llm(
        mistral.clone(),
        BenchmarkPhase::Prefill,
        4096,
        "mistral7B",
    ));
    v.push(Benchmark::llm(
        mistral,
        BenchmarkPhase::Decode,
        4096,
        "mistral7B",
    ));
    let falcon = TransformerConfig::falcon_40b();
    v.push(Benchmark::llm(
        falcon.clone(),
        BenchmarkPhase::Prefill,
        2048,
        "falcon40B",
    ));
    v.push(Benchmark::llm(
        falcon,
        BenchmarkPhase::Decode,
        2048,
        "falcon40B",
    ));
    // LLaVA: prompt plus vision prefix.
    let llava = TransformerConfig::llava15_7b();
    let mut pf = Benchmark::llm(llava.clone(), BenchmarkPhase::Prefill, 4096, "llava1.5-7B");
    pf.seq = 4096 + LLAVA_VISION_TOKENS;
    v.push(pf);
    let mut dec = Benchmark::llm(llava, BenchmarkPhase::Decode, 4096, "llava1.5-7B");
    dec.seq = 4096 + LLAVA_VISION_TOKENS;
    v.push(dec);
    v.push(Benchmark {
        name: "FlashFFTConv-1M".to_string(),
        config: TransformerConfig::llama2_7b(), // unused placeholder config
        phase: BenchmarkPhase::Prefill,
        seq: 1 << 20,
        batch: 1,
        sockets: 1,
        fft_conv: true,
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_table2() {
        let t = table2();
        assert_eq!(t.len(), 17);
        let names: Vec<&str> = t.iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"llama7B-4k-inf-prefill"));
        assert!(names.contains(&"sparseGPT-13B-2k-train"));
        assert!(names.contains(&"bloom176B-8k-inf-decode"));
        assert!(names.contains(&"FlashFFTConv-1M"));
    }

    #[test]
    fn every_benchmark_builds() {
        for b in table2() {
            let g = b.build_graph();
            assert!(g.node_count() > 0, "{} built empty", b.name);
        }
    }

    #[test]
    fn fftconv_runs_on_one_socket() {
        let t = table2();
        let fft = t.iter().find(|b| b.fft_conv).unwrap();
        assert_eq!(fft.sockets, 1);
        assert_eq!(fft.seq, 1 << 20);
        for b in t.iter().filter(|b| !b.fft_conv) {
            assert_eq!(b.sockets, 8, "{} should use the 8-socket node", b.name);
        }
    }
}
