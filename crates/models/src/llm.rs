//! Lowering transformer configs to dataflow graphs.
//!
//! Graphs are built **per socket** for a tensor-parallel degree `tp`:
//! query/KV projections and the first MLP matrices are column-parallel,
//! output projections are row-parallel followed by an AllReduce — the
//! standard Megatron mapping the paper uses for its TP8 deployments
//! (§VI-B). Every transformer layer is its own scheduling region, so the
//! fusion pass emits identical, reusable kernel programs per layer.
//!
//! Attention is modeled with explicit reshapes, per-head batched GEMMs,
//! softmax, and (for GQA) an explicit KV head expansion — the operator
//! mix whose reorders break conventional GPU fusion (§III-A).

use crate::config::{Activation, Norm, TransformerConfig};
use sn_dataflow::{
    BinaryKind, DType, Graph, GraphBuilder, GraphError, OpKind, ReduceKind, Shape, TensorId,
    TensorKind, UnaryKind,
};

/// Which phase of the workload to build (Table II's configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// First-token generation: process the whole prompt, build the KV
    /// cache.
    Prefill { prompt_tokens: usize },
    /// One autoregressive decoding step against a KV cache of
    /// `past_tokens`.
    Decode { past_tokens: usize },
    /// One training step (forward + backward) over sequences of `seq`.
    Train { seq: usize },
}

impl Phase {
    /// Tokens entering the decoder stack per sequence.
    pub fn tokens_per_seq(&self) -> usize {
        match *self {
            Phase::Prefill { prompt_tokens } => prompt_tokens,
            Phase::Decode { .. } => 1,
            Phase::Train { seq } => seq,
        }
    }

    /// Length of the attention context (keys visible to each query).
    pub fn context(&self) -> usize {
        match *self {
            Phase::Prefill { prompt_tokens } => prompt_tokens,
            Phase::Decode { past_tokens } => past_tokens + 1,
            Phase::Train { seq } => seq,
        }
    }

    /// Whether a backward pass is included.
    pub fn is_training(&self) -> bool {
        matches!(self, Phase::Train { .. })
    }
}

/// Builds the per-socket dataflow graph for a model/phase/batch/TP combo.
///
/// # Errors
///
/// Propagates [`GraphError`] (which indicates a bug in the builder or an
/// inconsistent config, e.g. `tp` not dividing the head counts evenly).
///
/// # Panics
///
/// Panics if `tp` is zero or does not divide `heads`.
pub fn build(
    cfg: &TransformerConfig,
    phase: Phase,
    batch: usize,
    tp: usize,
) -> Result<Graph, GraphError> {
    assert!(tp >= 1, "tensor parallel degree must be at least 1");
    assert_eq!(
        cfg.heads % tp,
        0,
        "{}: tp {tp} must divide {} heads",
        cfg.name,
        cfg.heads
    );
    Builder::new(cfg, phase, batch, tp).build()
}

struct Builder<'a> {
    cfg: &'a TransformerConfig,
    phase: Phase,
    batch: usize,
    tp: usize,
    b: GraphBuilder,
}

impl<'a> Builder<'a> {
    fn new(cfg: &'a TransformerConfig, phase: Phase, batch: usize, tp: usize) -> Self {
        let phase_tag = match phase {
            Phase::Prefill { prompt_tokens } => format!("prefill{prompt_tokens}"),
            Phase::Decode { past_tokens } => format!("decode@{past_tokens}"),
            Phase::Train { seq } => format!("train{seq}"),
        };
        let b = GraphBuilder::new(format!("{}-{}-bs{}-tp{}", cfg.name, phase_tag, batch, tp));
        Builder {
            cfg,
            phase,
            batch,
            tp,
            b,
        }
    }

    /// Tokens flowing through the stack on this socket.
    fn tokens(&self) -> usize {
        self.batch * self.phase.tokens_per_seq()
    }

    /// Query heads per socket.
    fn heads_t(&self) -> usize {
        self.cfg.heads / self.tp
    }

    /// KV heads per socket (at least one; small-KV models replicate).
    fn kv_heads_t(&self) -> usize {
        (self.cfg.kv_heads() / self.tp).max(1)
    }

    fn head_dim(&self) -> usize {
        self.cfg.head_dim()
    }

    /// Attention context length, clipped by a sliding window if any.
    fn context(&self) -> usize {
        let ctx = self.phase.context();
        match self.cfg.sliding_window {
            Some(w) => ctx.min(w),
            None => ctx,
        }
    }

    fn weight(&mut self, name: &str, rows: usize, cols: usize) -> TensorId {
        self.b.tensor(
            name,
            Shape::mat(rows, cols),
            self.cfg.weight_dtype,
            TensorKind::Weight,
        )
    }

    fn gemm(&mut self, name: &str, x: TensorId, w: TensorId) -> Result<TensorId, GraphError> {
        let op = if self.cfg.weight_density < 1.0 {
            OpKind::SparseGemm {
                density: self.cfg.weight_density,
                transpose_b: false,
            }
        } else {
            OpKind::Gemm { transpose_b: false }
        };
        self.b.node(name, op, &[x, w])
    }

    fn norm(&mut self, name: &str, x: TensorId) -> Result<TensorId, GraphError> {
        let op = match self.cfg.norm {
            Norm::Rms => OpKind::RmsNorm,
            Norm::Layer => OpKind::LayerNorm,
        };
        self.b.node(name, op, &[x])
    }

    fn allreduce(&mut self, name: &str, x: TensorId) -> Result<TensorId, GraphError> {
        if self.tp > 1 {
            self.b.node(
                name,
                OpKind::AllReduce {
                    participants: self.tp,
                },
                &[x],
            )
        } else {
            Ok(x)
        }
    }

    /// Expands KV heads to query heads for grouped-query attention.
    fn expand_kv(&mut self, name: &str, kv: TensorId) -> Result<TensorId, GraphError> {
        let groups = self.heads_t() / self.kv_heads_t();
        if groups <= 1 {
            return Ok(kv);
        }
        let inputs = vec![kv; groups];
        self.b.node(name, OpKind::Concat { axis: 0 }, &inputs)
    }

    /// The attention block from the normed input; returns the un-reduced
    /// row-parallel output projection.
    fn attention(&mut self, layer: usize, normed: TensorId) -> Result<TensorId, GraphError> {
        let cfg = self.cfg;
        let h = cfg.hidden;
        let d = self.head_dim();
        let tokens = self.tokens();
        let q_out = self.heads_t() * d;
        let kv_out = self.kv_heads_t() * d;
        let bh = self.batch * self.heads_t();
        let s_q = self.phase.tokens_per_seq();
        let s_k = self.context();

        let wq = self.weight(&format!("L{layer}.wq"), h, q_out);
        let wk = self.weight(&format!("L{layer}.wk"), h, kv_out);
        let wv = self.weight(&format!("L{layer}.wv"), h, kv_out);
        let wo = self.weight(&format!("L{layer}.wo"), q_out, h);

        let mut q = self.gemm("q_proj", normed, wq)?;
        let mut k = self.gemm("k_proj", normed, wk)?;
        let v = self.gemm("v_proj", normed, wv)?;
        if cfg.rope {
            q = self.b.node("rope_q", OpKind::Rope, &[q])?;
            k = self.b.node("rope_k", OpKind::Rope, &[k])?;
        }

        // Per-head views.
        let q3 = self.b.node(
            "q_heads",
            OpKind::Reshape {
                dims: vec![bh, s_q, d],
            },
            &[q],
        )?;
        let (k_ctx, v_ctx) = match self.phase {
            Phase::Decode { .. } => {
                // Append this step's K/V into the caches and read the
                // visible window back.
                let bkv = self.batch * self.kv_heads_t();
                let k_cache = self.b.tensor(
                    format!("L{layer}.k_cache"),
                    Shape::new(vec![bkv, s_k, d]),
                    DType::Bf16,
                    TensorKind::KvCache,
                );
                let v_cache = self.b.tensor(
                    format!("L{layer}.v_cache"),
                    Shape::new(vec![bkv, s_k, d]),
                    DType::Bf16,
                    TensorKind::KvCache,
                );
                let k_new = self.b.node(
                    "k_rows",
                    OpKind::Reshape {
                        dims: vec![bkv, s_q, d],
                    },
                    &[k],
                )?;
                let v_new = self.b.node(
                    "v_rows",
                    OpKind::Reshape {
                        dims: vec![bkv, s_q, d],
                    },
                    &[v],
                )?;
                let k_all = self
                    .b
                    .node("k_append", OpKind::KvAppend, &[k_cache, k_new])?;
                let v_all = self
                    .b
                    .node("v_append", OpKind::KvAppend, &[v_cache, v_new])?;
                (k_all, v_all)
            }
            _ => {
                let bkv = self.batch * self.kv_heads_t();
                let k3 = self.b.node(
                    "k_heads",
                    OpKind::Reshape {
                        dims: vec![bkv, s_k, d],
                    },
                    &[k],
                )?;
                let v3 = self.b.node(
                    "v_heads",
                    OpKind::Reshape {
                        dims: vec![bkv, s_k, d],
                    },
                    &[v],
                )?;
                (k3, v3)
            }
        };
        let k_exp = self.expand_kv("k_expand", k_ctx)?;
        let v_exp = self.expand_kv("v_expand", v_ctx)?;
        let k_t = self.b.node(
            "k_t",
            OpKind::Transpose {
                perm: vec![0, 2, 1],
            },
            &[k_exp],
        )?;
        let scores = self
            .b
            .node("scores", OpKind::Gemm { transpose_b: false }, &[q3, k_t])?;
        let scaled = self
            .b
            .node("scale", OpKind::Unary(UnaryKind::Scale), &[scores])?;
        // Causal mask / ALiBi bias is generated on-chip (§IV-E pad
        // generation); decode steps attend to everything and skip it.
        let masked = if matches!(self.phase, Phase::Decode { .. }) {
            scaled
        } else {
            let mask = self.b.tensor(
                format!("L{layer}.mask"),
                Shape::new(vec![bh, s_q, s_k]),
                DType::Bf16,
                TensorKind::Generated,
            );
            self.b
                .node("mask", OpKind::Binary(BinaryKind::Add), &[scaled, mask])?
        };
        let probs = self.b.node("softmax", OpKind::Softmax, &[masked])?;
        let ctx = self.b.node(
            "context",
            OpKind::Gemm { transpose_b: false },
            &[probs, v_exp],
        )?;
        let merged = self.b.node(
            "merge_heads",
            OpKind::Reshape {
                dims: vec![tokens, q_out],
            },
            &[ctx],
        )?;
        self.gemm("o_proj", merged, wo)
    }

    /// The MLP block from the normed input; returns the un-reduced
    /// row-parallel down projection. For MoE models this is the gate plus
    /// `top_k` expert FFNs whose outputs are summed (§II: experts
    /// "implemented internally as MoEs").
    fn mlp(&mut self, layer: usize, normed: TensorId) -> Result<TensorId, GraphError> {
        if let Some(moe) = self.cfg.moe {
            return self.moe_mlp(layer, normed, moe);
        }
        self.dense_mlp(layer, normed, &format!("L{layer}"))
    }

    fn moe_mlp(
        &mut self,
        layer: usize,
        normed: TensorId,
        moe: crate::config::MoeConfig,
    ) -> Result<TensorId, GraphError> {
        let h = self.cfg.hidden;
        // Gate: score every expert, normalize.
        let wg = self.weight(&format!("L{layer}.moe_gate"), h, moe.experts);
        let scores = self.gemm("moe_gate", normed, wg)?;
        let _probs = self.b.node("moe_softmax", OpKind::Softmax, &[scores])?;
        // Statically model the top-k activated experts: each token runs
        // `top_k` FFNs; results are combined. (Weights for the remaining
        // experts exist in the binary — they count toward capacity — but
        // contribute no FLOPs; we declare one resident set per activated
        // slot and account the rest via the config's parameter count.)
        let mut acc: Option<TensorId> = None;
        for slot in 0..moe.top_k {
            let out = self.dense_mlp(layer, normed, &format!("L{layer}.e{slot}"))?;
            acc = Some(match acc {
                None => out,
                Some(prev) => {
                    self.b
                        .node("moe_combine", OpKind::Binary(BinaryKind::Add), &[prev, out])?
                }
            });
        }
        Ok(acc.expect("top_k >= 1"))
    }

    fn dense_mlp(
        &mut self,
        _layer: usize,
        normed: TensorId,
        prefix: &str,
    ) -> Result<TensorId, GraphError> {
        let h = self.cfg.hidden;
        let inter_t = (self.cfg.intermediate / self.tp).max(1);
        match self.cfg.activation {
            Activation::SwiGlu => {
                let wg = self.weight(&format!("{prefix}.w_gate"), h, inter_t);
                let wu = self.weight(&format!("{prefix}.w_up"), h, inter_t);
                let wd = self.weight(&format!("{prefix}.w_down"), inter_t, h);
                let gate = self.gemm("gate_proj", normed, wg)?;
                let act = self
                    .b
                    .node("silu", OpKind::Unary(UnaryKind::Silu), &[gate])?;
                let up = self.gemm("up_proj", normed, wu)?;
                let mixed = self
                    .b
                    .node("gate_mul", OpKind::Binary(BinaryKind::Mul), &[act, up])?;
                self.gemm("down_proj", mixed, wd)
            }
            Activation::Gelu => {
                let wu = self.weight(&format!("{prefix}.w_up"), h, inter_t);
                let wd = self.weight(&format!("{prefix}.w_down"), inter_t, h);
                let up = self.gemm("up_proj", normed, wu)?;
                let act = self.b.node("gelu", OpKind::Unary(UnaryKind::Gelu), &[up])?;
                self.gemm("down_proj", act, wd)
            }
        }
    }

    /// One decoder layer; returns the residual stream.
    fn layer(&mut self, layer: usize, x: TensorId) -> Result<TensorId, GraphError> {
        if self.cfg.parallel_blocks {
            // Falcon: one norm feeds attention and MLP in parallel.
            let normed = self.norm("input_norm", x)?;
            let attn = self.attention(layer, normed)?;
            let mlp = self.mlp(layer, normed)?;
            let summed = self
                .b
                .node("block_sum", OpKind::Binary(BinaryKind::Add), &[attn, mlp])?;
            let reduced = self.allreduce("block_allreduce", summed)?;
            self.b
                .node("residual", OpKind::Binary(BinaryKind::Add), &[x, reduced])
        } else {
            let normed = self.norm("input_norm", x)?;
            let attn = self.attention(layer, normed)?;
            let attn = self.allreduce("attn_allreduce", attn)?;
            let x = self
                .b
                .node("attn_residual", OpKind::Binary(BinaryKind::Add), &[x, attn])?;
            let normed2 = self.norm("post_attn_norm", x)?;
            let mlp = self.mlp(layer, normed2)?;
            let mlp = self.allreduce("mlp_allreduce", mlp)?;
            self.b
                .node("mlp_residual", OpKind::Binary(BinaryKind::Add), &[x, mlp])
        }
    }

    /// Appends an approximate backward pass for one layer: two GEMMs per
    /// forward weight GEMM (input and weight gradients) plus derivative
    /// elementwise work. Gradients flow from `d_out`; returns the gradient
    /// with respect to the layer input.
    fn layer_backward(
        &mut self,
        layer: usize,
        x: TensorId,
        d_out: TensorId,
    ) -> Result<TensorId, GraphError> {
        let h = self.cfg.hidden;
        let inter_t = (self.cfg.intermediate / self.tp).max(1);
        let q_out = self.heads_t() * self.head_dim();
        let tokens = self.tokens();
        let mut d = d_out;
        // dX through the MLP down/up/gate projections.
        let wd = self.weight(&format!("L{layer}.w_down.g"), inter_t, h);
        let d_mid = self
            .b
            .node("d_down", OpKind::Gemm { transpose_b: true }, &[d, wd])?;
        let x_t = self
            .b
            .node("x_t", OpKind::Transpose { perm: vec![1, 0] }, &[d_mid])?;
        let _dw_down = self
            .b
            .node("dw_down", OpKind::Gemm { transpose_b: false }, &[x_t, d])?;
        let d_act = self
            .b
            .node("d_silu", OpKind::Binary(BinaryKind::Mul), &[d_mid, d_mid])?;
        let wu = self.weight(&format!("L{layer}.w_up.g"), h, inter_t);
        let d_up = self
            .b
            .node("d_up", OpKind::Gemm { transpose_b: true }, &[d_act, wu])?;
        let up_t = self
            .b
            .node("up_t", OpKind::Transpose { perm: vec![1, 0] }, &[d_act])?;
        let _dw_up = self
            .b
            .node("dw_up", OpKind::Gemm { transpose_b: false }, &[up_t, d_act])?;
        if self.cfg.activation == Activation::SwiGlu {
            let wg = self.weight(&format!("L{layer}.w_gate.g"), h, inter_t);
            let d_gate = self
                .b
                .node("d_gate", OpKind::Gemm { transpose_b: true }, &[d_act, wg])?;
            d = self
                .b
                .node("d_mlp_in", OpKind::Binary(BinaryKind::Add), &[d_up, d_gate])?;
        } else {
            d = d_up;
        }
        // Norm backward: elementwise plus a row reduction.
        let d_norm = self
            .b
            .node("d_norm_mul", OpKind::Binary(BinaryKind::Mul), &[d, d])?;
        let _stats = self
            .b
            .node("d_norm_red", OpKind::Reduce(ReduceKind::Sum), &[d_norm])?;
        // Attention backward: gradients through O, context, scores, QKV.
        let wo = self.weight(&format!("L{layer}.wo.g"), q_out, h);
        let d_attn = self
            .b
            .node("d_o", OpKind::Gemm { transpose_b: true }, &[d, wo])?;
        let attn_t = self
            .b
            .node("attn_t", OpKind::Transpose { perm: vec![1, 0] }, &[d_attn])?;
        let _dw_o = self
            .b
            .node("dw_o", OpKind::Gemm { transpose_b: false }, &[attn_t, d])?;
        let d_soft = self.b.node(
            "d_softmax",
            OpKind::Binary(BinaryKind::Mul),
            &[d_attn, d_attn],
        )?;
        let wq = self.weight(&format!("L{layer}.wq.g"), h, q_out);
        let d_q = self
            .b
            .node("d_q", OpKind::Gemm { transpose_b: true }, &[d_soft, wq])?;
        let q_t = self
            .b
            .node("q_t", OpKind::Transpose { perm: vec![1, 0] }, &[d_soft])?;
        let _dw_q = self
            .b
            .node("dw_q", OpKind::Gemm { transpose_b: false }, &[q_t, d_soft])?;
        let d_in = self
            .b
            .node("d_layer_in", OpKind::Binary(BinaryKind::Add), &[d_q, x])?;
        let d_in = self.allreduce("bwd_allreduce", d_in)?;
        let _ = tokens;
        Ok(d_in)
    }

    fn build(mut self) -> Result<Graph, GraphError> {
        let cfg = self.cfg;
        let tokens = self.tokens();
        let h = cfg.hidden;
        let vocab_t = (cfg.vocab / self.tp).max(1);

        // Embedding (region 0): vocab-sharded gather plus AllReduce.
        self.b.set_region(0);
        let ids = self.b.tensor(
            "token_ids",
            Shape::new(vec![tokens]),
            DType::Int32,
            TensorKind::Input,
        );
        let table = self.b.tensor(
            "embed_table",
            Shape::mat(vocab_t, h),
            self.cfg.weight_dtype,
            TensorKind::Weight,
        );
        let emb = self.b.node("embed", OpKind::Embedding, &[table, ids])?;
        let emb = self.b.node(
            "embed_view",
            OpKind::Reshape {
                dims: vec![tokens, h],
            },
            &[emb],
        )?;
        let mut x = self.allreduce("embed_allreduce", emb)?;

        // Decoder layers (regions 1..=layers).
        for l in 0..cfg.layers {
            self.b.set_region(1 + l as u32);
            x = self.layer(l, x)?;
        }

        // LM head (last region): final norm, last-token slice for
        // inference, vocab-sharded logits.
        self.b.set_region(1 + cfg.layers as u32);
        let fin = self.norm("final_norm", x)?;
        let head_in = if self.phase.tokens_per_seq() > 1 && !self.phase.is_training() {
            self.b.node(
                "last_token",
                OpKind::Slice {
                    axis: 0,
                    parts: self.phase.tokens_per_seq(),
                    index: self.phase.tokens_per_seq() - 1,
                },
                &[fin],
            )?
        } else {
            fin
        };
        let w_head = self.b.tensor(
            "lm_head",
            Shape::mat(h, vocab_t),
            self.cfg.weight_dtype,
            TensorKind::Weight,
        );
        let logits = self.b.node_with_dtype(
            "logits",
            OpKind::Gemm { transpose_b: false },
            &[head_in, w_head],
            Some(DType::Fp32),
        )?;
        let mut out = logits;

        // Backward pass for training (reverse region order so layer
        // programs stay distinct per layer pair).
        if self.phase.is_training() {
            let d_logits = self.b.node_with_dtype(
                "d_logits",
                OpKind::Unary(UnaryKind::Scale),
                &[logits],
                Some(DType::Bf16),
            )?;
            let w_head_g = self.b.tensor(
                "lm_head.g",
                Shape::mat(h, vocab_t),
                DType::Bf16,
                TensorKind::Weight,
            );
            let mut d = self.b.node(
                "d_head",
                OpKind::Gemm { transpose_b: true },
                &[d_logits, w_head_g],
            )?;
            for l in (0..cfg.layers).rev() {
                self.b
                    .set_region(1 + cfg.layers as u32 + (cfg.layers - l) as u32);
                d = self.layer_backward(l, x, d)?;
            }
            out = d;
        }

        self.b.mark_output(out);
        self.b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_arch::Flops;

    fn flops_of(cfg: &TransformerConfig, phase: Phase, batch: usize, tp: usize) -> Flops {
        build(cfg, phase, batch, tp).unwrap().total_flops()
    }

    #[test]
    fn prefill_flops_match_2nd_rule() {
        // Rule of thumb: prefill FLOPs ~ 2 * params * tokens (per socket:
        // divided by tp). Attention adds the seq^2 term on top.
        let cfg = TransformerConfig::llama2_7b();
        let tokens = 4096;
        let per_socket = flops_of(
            &cfg,
            Phase::Prefill {
                prompt_tokens: tokens,
            },
            1,
            8,
        );
        let expect = 2.0 * cfg.param_count() as f64 * tokens as f64 / 8.0;
        let ratio = per_socket.as_f64() / expect;
        assert!(ratio > 0.95 && ratio < 1.6, "ratio {ratio}");
    }

    #[test]
    fn decode_flops_match_2n_rule() {
        let cfg = TransformerConfig::llama2_7b();
        let per_socket = flops_of(&cfg, Phase::Decode { past_tokens: 4096 }, 1, 8);
        let expect = 2.0 * cfg.param_count() as f64 / 8.0;
        let ratio = per_socket.as_f64() / expect;
        assert!(ratio > 0.9 && ratio < 1.6, "ratio {ratio}");
    }

    #[test]
    fn train_is_about_3x_prefill() {
        let cfg = TransformerConfig::llama2_7b();
        let fwd = flops_of(
            &cfg,
            Phase::Prefill {
                prompt_tokens: 2048,
            },
            1,
            8,
        );
        let train = flops_of(&cfg, Phase::Train { seq: 2048 }, 1, 8);
        let ratio = train.as_f64() / fwd.as_f64();
        assert!(ratio > 2.0 && ratio < 4.0, "train/prefill ratio {ratio}");
    }

    #[test]
    fn tp_divides_work() {
        let cfg = TransformerConfig::llama2_7b();
        let tp1 = flops_of(
            &cfg,
            Phase::Prefill {
                prompt_tokens: 1024,
            },
            1,
            1,
        );
        let tp8 = flops_of(
            &cfg,
            Phase::Prefill {
                prompt_tokens: 1024,
            },
            1,
            8,
        );
        let ratio = tp1.as_f64() / tp8.as_f64();
        assert!(ratio > 6.0 && ratio < 9.0, "tp split ratio {ratio}");
    }

    #[test]
    fn batch_scales_tokens() {
        let cfg = TransformerConfig::llama2_7b();
        let b1 = flops_of(&cfg, Phase::Decode { past_tokens: 1024 }, 1, 8);
        let b8 = flops_of(&cfg, Phase::Decode { past_tokens: 1024 }, 8, 8);
        let ratio = b8.as_f64() / b1.as_f64();
        assert!(ratio > 6.0 && ratio < 9.0, "batch ratio {ratio}");
    }

    #[test]
    fn sliding_window_caps_decode_context() {
        let mistral = TransformerConfig::mistral_7b();
        let short = build(&mistral, Phase::Decode { past_tokens: 2048 }, 1, 8).unwrap();
        let long = build(&mistral, Phase::Decode { past_tokens: 65536 }, 1, 8).unwrap();
        // Past the window, decode FLOPs stop growing.
        let ratio = long.total_flops().as_f64() / short.total_flops().as_f64();
        assert!(ratio < 1.5, "window should cap context, ratio {ratio}");
    }

    #[test]
    fn decode_reads_kv_cache() {
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, Phase::Decode { past_tokens: 4096 }, 1, 8).unwrap();
        assert!(
            g.kv_cache_bytes().as_u64() > 0,
            "decode graph must carry KV tensors"
        );
    }

    #[test]
    fn per_socket_weights_are_a_tp_share() {
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, Phase::Decode { past_tokens: 128 }, 1, 8).unwrap();
        let shard = g.weight_bytes().as_f64();
        let full = cfg.param_bytes().as_f64();
        let ratio = full / shard;
        assert!(ratio > 5.0 && ratio < 10.0, "weight shard ratio {ratio}");
    }

    #[test]
    fn layer_regions_produce_reusable_structure() {
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, Phase::Decode { past_tokens: 512 }, 1, 8).unwrap();
        let regions: std::collections::HashSet<u32> = g.nodes().iter().map(|n| n.region).collect();
        // Embedding + 32 layers + head.
        assert_eq!(regions.len(), 34);
    }

    #[test]
    fn falcon_parallel_blocks_have_one_allreduce_per_layer() {
        let falcon = TransformerConfig::falcon_40b();
        let g = build(&falcon, Phase::Decode { past_tokens: 1024 }, 1, 8).unwrap();
        let allreduces = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::AllReduce { .. }))
            .count();
        // One per layer plus the embedding reduce.
        assert_eq!(allreduces, falcon.layers + 1);
    }

    #[test]
    fn llama_has_two_allreduce_per_layer() {
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, Phase::Decode { past_tokens: 1024 }, 1, 8).unwrap();
        let allreduces = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::AllReduce { .. }))
            .count();
        assert_eq!(allreduces, 2 * cfg.layers + 1);
    }

    #[test]
    fn tp1_has_no_allreduce() {
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, Phase::Decode { past_tokens: 64 }, 1, 1).unwrap();
        assert!(!g
            .nodes()
            .iter()
            .any(|n| matches!(n.op, OpKind::AllReduce { .. })));
    }

    #[test]
    fn sparse_model_uses_sparse_gemms() {
        let cfg = TransformerConfig::sparsegpt_13b();
        let g = build(&cfg, Phase::Train { seq: 2048 }, 1, 8).unwrap();
        assert!(g
            .nodes()
            .iter()
            .any(|n| matches!(n.op, OpKind::SparseGemm { .. })));
        // Sparse training is much cheaper than dense would be.
        let mut dense = cfg.clone();
        dense.weight_density = 1.0;
        let gd = build(&dense, Phase::Train { seq: 2048 }, 1, 8).unwrap();
        assert!(g.total_flops() < gd.total_flops());
    }
}

#[cfg(test)]
mod moe_tests {
    use super::*;

    #[test]
    fn mixtral_runs_top2_experts_per_layer() {
        let moe = TransformerConfig::mixtral_8x7b();
        let dense = TransformerConfig::mistral_7b();
        let gm = build(&moe, Phase::Decode { past_tokens: 1024 }, 1, 8).unwrap();
        let gd = build(&dense, Phase::Decode { past_tokens: 1024 }, 1, 8).unwrap();
        // Top-2 roughly doubles MLP FLOPs but attention is unchanged, so
        // the total sits well under 2x dense.
        let ratio = gm.total_flops().as_f64() / gd.total_flops().as_f64();
        assert!(ratio > 1.3 && ratio < 2.2, "MoE flops ratio {ratio:.2}");
        // Gate softmax appears once per layer.
        let gates = gm
            .nodes()
            .iter()
            .filter(|n| n.name.starts_with("moe_softmax"))
            .count();
        assert_eq!(gates, moe.layers);
    }

    #[test]
    fn int8_weights_halve_graph_weight_bytes() {
        let bf16 = TransformerConfig::llama2_7b();
        let int8 = TransformerConfig::llama2_7b().quantized_int8();
        let gb = build(&bf16, Phase::Decode { past_tokens: 512 }, 1, 8).unwrap();
        let gi = build(&int8, Phase::Decode { past_tokens: 512 }, 1, 8).unwrap();
        let ratio = gb.weight_bytes().as_f64() / gi.weight_bytes().as_f64();
        assert!((ratio - 2.0).abs() < 0.05, "weight byte ratio {ratio:.2}");
        // Same math, same FLOPs.
        let fr = gb.total_flops().as_f64() / gi.total_flops().as_f64();
        assert!((fr - 1.0).abs() < 1e-9);
    }
}
