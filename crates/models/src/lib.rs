//! LLM workload builders for the paper's benchmark suite (Table II).
//!
//! Each model is described by a [`TransformerConfig`] and lowered to a
//! [`sn_dataflow::Graph`] for one of three phases: *prefill* (first-token
//! generation over the whole prompt), *decode* (one autoregressive step
//! against the KV cache), and *train* (forward plus backward). Graphs are
//! built per-socket for a given tensor-parallel degree, with
//! [`sn_dataflow::OpKind::AllReduce`] nodes where Megatron-style TP
//! requires them.
//!
//! # Example
//!
//! ```
//! use sn_models::{TransformerConfig, Phase, build};
//!
//! let cfg = TransformerConfig::llama2_7b();
//! assert!((cfg.param_count() as f64 - 6.7e9).abs() < 0.4e9);
//! let g = build(&cfg, Phase::Decode { past_tokens: 4096 }, 1, 8).unwrap();
//! assert!(g.node_count() > 100);
//! ```

pub mod catalog;
pub mod config;
pub mod llm;
pub mod vision;

pub use catalog::{table2, Benchmark, BenchmarkPhase};
pub use config::MoeConfig;
pub use config::{Activation, Attention, Norm, TransformerConfig};
pub use llm::{build, Phase};
pub use vision::{build_vit, llava_pipeline, VitConfig};
