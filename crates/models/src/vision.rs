//! Vision encoder for the LLaVA multimodal benchmark (Table II).
//!
//! LLaVA-1.5 feeds a CLIP ViT-L/14 image encoding (576 patch tokens after
//! the projector) into the Llama decoder. The encoder is an
//! encoder-style transformer: bidirectional attention (no KV cache, no
//! causal mask), LayerNorm, GELU, learned positions (no RoPE).

use crate::config::{Activation, Attention, Norm, TransformerConfig};
use crate::llm::{build, Phase};
use serde::{Deserialize, Serialize};
use sn_dataflow::{Graph, GraphError};

/// Vision-encoder description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VitConfig {
    /// The transformer body (as a decoder-config reused in encoder mode).
    pub body: TransformerConfig,
    /// Patch tokens per image (24 x 24 for ViT-L/14 at 336 px).
    pub patches: usize,
    /// Output tokens after the multimodal projector.
    pub projected_tokens: usize,
}

impl VitConfig {
    /// CLIP ViT-L/14-336: 24 layers, hidden 1024, 16 heads, MLP 4096.
    pub fn clip_vit_l14() -> Self {
        VitConfig {
            body: TransformerConfig {
                name: "clip-vit-l14".to_string(),
                hidden: 1024,
                layers: 24,
                heads: 16,
                intermediate: 4096,
                vocab: 1024, // patch-embedding table stand-in
                norm: Norm::Layer,
                activation: Activation::Gelu,
                attention: Attention::MultiHead,
                rope: false,
                sliding_window: None,
                parallel_blocks: false,
                weight_density: 1.0,
                weight_dtype: sn_dataflow::DType::Bf16,
                moe: None,
            },
            patches: 576,
            projected_tokens: 576,
        }
    }

    /// Encoder parameter count.
    pub fn param_count(&self) -> u64 {
        self.body.param_count()
    }
}

/// Builds the encoder graph for `images` images on a `tp`-way shard.
/// Encoders process all patches "prefill-style" (full bidirectional
/// attention over the patch sequence).
///
/// # Errors
///
/// Propagates [`GraphError`] from the underlying builder.
pub fn build_vit(cfg: &VitConfig, images: usize, tp: usize) -> Result<Graph, GraphError> {
    build(
        &cfg.body,
        Phase::Prefill {
            prompt_tokens: cfg.patches,
        },
        images,
        tp,
    )
}

/// The two-stage LLaVA pipeline: vision encoder plus language decoder
/// prefill over `prompt_tokens + projected_tokens`.
///
/// # Errors
///
/// Propagates [`GraphError`] from the underlying builders.
pub fn llava_pipeline(
    prompt_tokens: usize,
    images: usize,
    tp: usize,
) -> Result<(Graph, Graph), GraphError> {
    let vit = VitConfig::clip_vit_l14();
    let encoder = build_vit(&vit, images, tp)?;
    let llm = TransformerConfig::llava15_7b();
    let decoder = build(
        &llm,
        Phase::Prefill {
            prompt_tokens: prompt_tokens + vit.projected_tokens * images,
        },
        1,
        tp,
    )?;
    Ok((encoder, decoder))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_vit_is_about_300m_params() {
        let v = VitConfig::clip_vit_l14();
        let p = v.param_count() as f64;
        assert!(p > 0.25e9 && p < 0.45e9, "ViT-L ~0.3B, got {:.2}B", p / 1e9);
    }

    #[test]
    fn encoder_flops_are_a_small_fraction_of_the_decoder() {
        // The DESIGN.md substitution (vision tokens folded into the
        // prompt) is justified because the encoder is a rounding error
        // next to the 7B decoder prefill.
        let (encoder, decoder) = llava_pipeline(4096, 1, 8).unwrap();
        let ratio = encoder.total_flops().as_f64() / decoder.total_flops().as_f64();
        assert!(ratio < 0.10, "encoder share {:.3}", ratio);
    }

    #[test]
    fn multiple_images_scale_encoder_work() {
        let one = build_vit(&VitConfig::clip_vit_l14(), 1, 8).unwrap();
        let four = build_vit(&VitConfig::clip_vit_l14(), 4, 8).unwrap();
        let ratio = four.total_flops().as_f64() / one.total_flops().as_f64();
        assert!(ratio > 3.5 && ratio < 4.5, "batch scaling {ratio:.2}");
    }

    #[test]
    fn encoder_uses_no_rope_or_kv_cache() {
        let g = build_vit(&VitConfig::clip_vit_l14(), 1, 8).unwrap();
        assert!(!g
            .nodes()
            .iter()
            .any(|n| matches!(n.op, sn_dataflow::OpKind::Rope)));
        assert_eq!(g.kv_cache_bytes().as_u64(), 0);
    }
}
