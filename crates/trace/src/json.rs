//! Minimal recursive-descent JSON parser.
//!
//! The vendored `serde` is a marker stub with no real (de)serialization, so
//! validating that [`crate::chrome`] output is well-formed JSON — and that
//! it has the Chrome trace shape Perfetto expects — needs a real parser.
//! This one supports the full JSON grammar minus `\uXXXX` surrogate pairs
//! (unneeded: the writer only emits `\u00XX` control escapes).

use std::collections::BTreeMap;

/// A parsed JSON value. Objects use a [`BTreeMap`] so traversal order is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object's field, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), JsonValue::Number(-150.0));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"c"},false],"d":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&JsonValue::Object(BTreeMap::new())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn control_escapes_roundtrip() {
        assert_eq!(
            parse("\"\\u0001\"").unwrap(),
            JsonValue::String("\u{0001}".into())
        );
    }

    #[test]
    fn parses_writer_output() {
        use crate::chrome::to_chrome_json;
        use crate::event::{ArgValue, EventKind, TraceEvent, Track};
        let e = TraceEvent {
            name: "sw\"itch".into(),
            track: Track::Coe,
            tid: 2,
            ts_us: 3.25,
            kind: EventKind::Complete { dur_us: 1.0 },
            args: vec![("bytes", ArgValue::U64(7)), ("hit", ArgValue::Bool(false))],
        };
        let v = parse(&to_chrome_json(&[e])).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // Metadata record + the event itself.
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("sw\"itch"));
        assert_eq!(events[1].get("ts").unwrap().as_f64(), Some(3.25));
    }
}
