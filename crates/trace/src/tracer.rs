//! The [`Tracer`] handle instrumented simulators record through.
//!
//! A tracer is cheap to clone (an `Option<Arc<..>>`) and thread-safe (the
//! shared state sits behind a `parking_lot::Mutex`). Disabled tracers hold
//! `None`: every recording method is an inlined null check followed by an
//! immediate return, so instrumentation costs nothing when off.

use crate::counter::{Counter, Histogram, Metric};
use crate::event::{ArgValue, EventKind, TraceEvent, Track};
use crate::report::MetricsReport;
use parking_lot::Mutex;
use sn_arch::TimeSecs;
use std::sync::Arc;

struct State {
    events: Vec<TraceEvent>,
    counters: [u64; Counter::COUNT],
    histograms: Vec<Histogram>,
    /// Per-track timeline cursor in microseconds: sequential spans emitted
    /// through [`Tracer::span`] lay out end to end.
    cursors: [f64; Track::ALL.len()],
}

impl State {
    fn new() -> Self {
        State {
            events: Vec::new(),
            counters: [0; Counter::COUNT],
            histograms: vec![Histogram::new(); Metric::COUNT],
            cursors: [0.0; Track::ALL.len()],
        }
    }
}

/// Handle through which instrumented code records events and counters.
///
/// Holds either a shared buffer (enabled) or nothing (disabled). Clones
/// share the same buffer, so a serving node, its runtime, its executor,
/// and its DMA engines all append to one stream.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<State>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(s) => write!(f, "Tracer(enabled, {} events)", s.lock().events.len()),
        }
    }
}

impl Tracer {
    /// A disabled tracer: every recording call is a no-op. This is also
    /// the `Default`, so un-instrumented constructions change nothing.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer with an empty buffer.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(State::new()))),
        }
    }

    /// Whether this tracer records anything. Inlined so the disabled path
    /// in instrumented code reduces to a branch on a `None` discriminant.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to a typed counter.
    #[inline]
    pub fn count(&self, counter: Counter, delta: u64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().counters[counter.index()] += delta;
    }

    /// Records one latency observation into a histogram. Negative or
    /// non-finite durations are clamped to zero.
    #[inline]
    pub fn observe(&self, metric: Metric, duration: TimeSecs) {
        let Some(inner) = &self.inner else { return };
        inner.lock().histograms[metric.index()].record(secs_to_ns(duration));
    }

    /// Emits a complete (duration) event at the track's cursor and
    /// advances the cursor past it — sequential calls tile the timeline.
    #[inline]
    pub fn span(
        &self,
        track: Track,
        name: impl Into<String>,
        duration: TimeSecs,
        args: &[(&'static str, ArgValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        let mut s = inner.lock();
        let ts_us = s.cursors[track.index()];
        let dur_us = secs_to_us(duration);
        s.cursors[track.index()] = ts_us + dur_us;
        s.events.push(TraceEvent {
            name: name.into(),
            track,
            tid: 0,
            ts_us,
            kind: EventKind::Complete { dur_us },
            args: args.to_vec(),
        });
    }

    /// Emits a complete event at an explicit start time on an explicit
    /// thread lane, without touching the track cursor — for overlapping
    /// work (prefetch, concurrent cluster nodes).
    #[inline]
    pub fn span_at(
        &self,
        track: Track,
        tid: u32,
        name: impl Into<String>,
        start: TimeSecs,
        duration: TimeSecs,
        args: &[(&'static str, ArgValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        inner.lock().events.push(TraceEvent {
            name: name.into(),
            track,
            tid,
            ts_us: secs_to_us(start),
            kind: EventKind::Complete {
                dur_us: secs_to_us(duration),
            },
            args: args.to_vec(),
        });
    }

    /// Emits a zero-duration marker at the track's cursor.
    #[inline]
    pub fn instant(
        &self,
        track: Track,
        name: impl Into<String>,
        args: &[(&'static str, ArgValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        let mut s = inner.lock();
        let ts_us = s.cursors[track.index()];
        s.events.push(TraceEvent {
            name: name.into(),
            track,
            tid: 0,
            ts_us,
            kind: EventKind::Instant,
            args: args.to_vec(),
        });
    }

    /// Emits a counter-track sample (rendered as a graph in Perfetto) at
    /// the track's cursor.
    #[inline]
    pub fn counter_sample(&self, track: Track, name: impl Into<String>, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut s = inner.lock();
        let ts_us = s.cursors[track.index()];
        s.events.push(TraceEvent {
            name: name.into(),
            track,
            tid: 0,
            ts_us,
            kind: EventKind::Counter { value },
            args: Vec::new(),
        });
    }

    /// Current cursor position of a track, in microseconds of model time
    /// (0.0 on a disabled tracer).
    pub fn cursor_us(&self, track: Track) -> f64 {
        match &self.inner {
            None => 0.0,
            Some(inner) => inner.lock().cursors[track.index()],
        }
    }

    /// Moves a track's cursor forward to `ts_us` (never backward) — used
    /// to align a track with work accounted elsewhere.
    pub fn advance_cursor_us(&self, track: Track, ts_us: f64) {
        let Some(inner) = &self.inner else { return };
        let mut s = inner.lock();
        let c = &mut s.cursors[track.index()];
        if ts_us > *c {
            *c = ts_us;
        }
    }

    /// Number of buffered events (0 on a disabled tracer).
    pub fn event_count(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner.lock().events.len(),
        }
    }

    /// Snapshot of the buffered events, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.lock().events.clone(),
        }
    }

    /// Current value of one counter (0 on a disabled tracer); prefer
    /// [`Tracer::metrics`] for a full snapshot.
    pub fn counter(&self, counter: Counter) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.lock().counters[counter.index()],
        }
    }

    /// Aggregated snapshot of all counters and histograms.
    pub fn metrics(&self) -> MetricsReport {
        match &self.inner {
            None => MetricsReport::empty(),
            Some(inner) => {
                let s = inner.lock();
                MetricsReport::from_raw(&s.counters, &s.histograms)
            }
        }
    }

    /// `Some(metrics)` when enabled, `None` when disabled — the shape
    /// serving reports attach.
    pub fn metrics_opt(&self) -> Option<MetricsReport> {
        self.inner.as_ref().map(|_| self.metrics())
    }

    /// Serializes the buffered events as Chrome trace JSON (see
    /// [`crate::chrome`]).
    pub fn chrome_trace_json(&self) -> String {
        crate::chrome::to_chrome_json(&self.events())
    }
}

fn secs_to_us(t: TimeSecs) -> f64 {
    let us = t.as_micros();
    if us.is_finite() && us > 0.0 {
        us
    } else {
        0.0
    }
}

fn secs_to_ns(t: TimeSecs) -> u64 {
    let ns = t.as_secs() * 1e9;
    if ns.is_finite() && ns > 0.0 {
        ns as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.count(Counter::ExpertHits, 5);
        t.observe(Metric::Request, TimeSecs::from_millis(1.0));
        t.span(Track::Coe, "x", TimeSecs::from_millis(1.0), &[]);
        t.instant(Track::Coe, "y", &[]);
        t.counter_sample(Track::Coe, "z", 1.0);
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.counter(Counter::ExpertHits), 0);
        assert!(t.metrics_opt().is_none());
        assert!(!t.is_enabled());
    }

    #[test]
    fn spans_tile_the_track_cursor() {
        let t = Tracer::enabled();
        t.span(Track::Coe, "a", TimeSecs::from_micros(10.0), &[]);
        t.span(Track::Coe, "b", TimeSecs::from_micros(5.0), &[]);
        // A different track has its own cursor.
        t.span(Track::Memsim, "c", TimeSecs::from_micros(2.0), &[]);
        let ev = t.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].ts_us, 0.0);
        assert_eq!(ev[1].ts_us, 10.0);
        assert_eq!(ev[2].ts_us, 0.0);
        assert!((t.cursor_us(Track::Coe) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::enabled();
        let u = t.clone();
        u.count(Counter::ExpertMisses, 2);
        t.count(Counter::ExpertMisses, 1);
        assert_eq!(t.counter(Counter::ExpertMisses), 3);
        assert_eq!(u.counter(Counter::ExpertMisses), 3);
    }

    #[test]
    fn cursor_only_moves_forward() {
        let t = Tracer::enabled();
        t.advance_cursor_us(Track::Runtime, 100.0);
        t.advance_cursor_us(Track::Runtime, 50.0);
        assert_eq!(t.cursor_us(Track::Runtime), 100.0);
    }

    #[test]
    fn metrics_snapshot_counters_and_histograms() {
        let t = Tracer::enabled();
        t.count(Counter::KernelLaunches, 7);
        t.observe(Metric::KernelRun, TimeSecs::from_micros(3.0));
        let m = t.metrics();
        assert_eq!(m.counter(Counter::KernelLaunches), 7);
        let h = m.histogram(Metric::KernelRun).expect("recorded");
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_ns(), 3000);
    }
}
