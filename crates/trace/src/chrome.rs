//! Chrome trace event format writer.
//!
//! Serializes a tracer's event buffer into the JSON Object Format of the
//! Chrome Trace Event specification — loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. The vendored `serde`
//! is a marker stub, so serialization is hand-rolled here; output is
//! deterministic: fixed key order, events in emission order, and `{:?}`
//! (shortest-roundtrip) float formatting.
//!
//! Emitted phases:
//!
//! - `"M"` — process metadata naming each used [`Track`];
//! - `"X"` — complete (duration) events;
//! - `"i"` — instant markers;
//! - `"C"` — counter samples.

use crate::event::{ArgValue, EventKind, TraceEvent, Track};

/// Serializes events into a Chrome-trace JSON document
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
///
/// A process-name metadata record is emitted for every track that appears
/// in `events`, in [`Track::ALL`] order, before the events themselves.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(128 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for track in Track::ALL {
        if events.iter().any(|e| e.track == track) {
            if !first {
                out.push(',');
            }
            first = false;
            write_metadata(&mut out, track);
        }
    }
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        write_event(&mut out, e);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn write_metadata(out: &mut String, track: Track) {
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
    out.push_str(&track.pid().to_string());
    out.push_str(",\"tid\":0,\"args\":{\"name\":");
    write_json_string(out, track.name());
    out.push_str("}}");
}

fn write_event(out: &mut String, e: &TraceEvent) {
    out.push_str("{\"name\":");
    write_json_string(out, &e.name);
    let ph = match e.kind {
        EventKind::Complete { .. } => "X",
        EventKind::Instant => "i",
        EventKind::Counter { .. } => "C",
    };
    out.push_str(",\"ph\":\"");
    out.push_str(ph);
    out.push_str("\",\"pid\":");
    out.push_str(&e.track.pid().to_string());
    out.push_str(",\"tid\":");
    out.push_str(&e.tid.to_string());
    out.push_str(",\"ts\":");
    write_f64(out, e.ts_us);
    match e.kind {
        EventKind::Complete { dur_us } => {
            out.push_str(",\"dur\":");
            write_f64(out, dur_us);
        }
        EventKind::Instant => {
            // Thread-scoped instant: renders as a marker on the tid lane.
            out.push_str(",\"s\":\"t\"");
        }
        EventKind::Counter { .. } => {}
    }
    out.push_str(",\"args\":{");
    match e.kind {
        EventKind::Counter { value } => {
            out.push_str("\"value\":");
            write_f64(out, value);
        }
        _ => {
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_arg(out, v);
            }
        }
    }
    out.push_str("}}");
}

fn write_arg(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => out.push_str(&n.to_string()),
        ArgValue::F64(x) => write_f64(out, *x),
        ArgValue::Str(s) => write_json_string(out, s),
        ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Writes a finite float using Rust's shortest-roundtrip `{:?}` formatting
/// (deterministic across runs); non-finite values degrade to 0.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push('0');
    }
}

/// Escapes and quotes a string per JSON rules.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_valid_shape() {
        let json = to_chrome_json(&[]);
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }

    #[test]
    fn complete_event_has_phase_x_and_dur() {
        let e = TraceEvent {
            name: "kernel".into(),
            track: Track::Runtime,
            tid: 0,
            ts_us: 1.5,
            kind: EventKind::Complete { dur_us: 2.25 },
            args: vec![("launches", ArgValue::U64(3))],
        };
        let json = to_chrome_json(&[e]);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":2.25"));
        assert!(json.contains("\"launches\":3"));
        // Metadata names the runtime process.
        assert!(json.contains("process_name"));
        assert!(json.contains("runtime (kernel launches)"));
    }

    #[test]
    fn strings_are_escaped() {
        let e = TraceEvent {
            name: "a\"b\\c\n".into(),
            track: Track::Coe,
            tid: 0,
            ts_us: 0.0,
            kind: EventKind::Instant,
            args: vec![],
        };
        let json = to_chrome_json(&[e]);
        assert!(json.contains("a\\\"b\\\\c\\n"));
        assert!(json.contains("\"s\":\"t\""));
    }

    #[test]
    fn counter_event_carries_value() {
        let e = TraceEvent {
            name: "hbm_used".into(),
            track: Track::Memsim,
            tid: 0,
            ts_us: 0.0,
            kind: EventKind::Counter { value: 0.5 },
            args: vec![],
        };
        let json = to_chrome_json(&[e]);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":0.5"));
    }

    #[test]
    fn non_finite_floats_degrade_to_zero() {
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        write_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "00");
    }

    /// Serializes one instant event with the given name and string arg,
    /// parses the document back, and returns the (name, arg) strings the
    /// parser saw.
    fn round_trip(name: &str, arg: &str) -> (String, String) {
        let e = TraceEvent {
            name: name.into(),
            track: Track::Coe,
            tid: 0,
            ts_us: 0.0,
            kind: EventKind::Instant,
            args: vec![("detail", ArgValue::Str(arg.into()))],
        };
        let doc = crate::json::parse(&to_chrome_json(&[e])).expect("writer emits valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        let event = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .expect("instant event present");
        let parsed_name = event.get("name").and_then(|n| n.as_str()).unwrap();
        let parsed_arg = event
            .get("args")
            .and_then(|a| a.get("detail"))
            .and_then(|d| d.as_str())
            .unwrap();
        (parsed_name.to_string(), parsed_arg.to_string())
    }

    #[test]
    fn escaped_names_round_trip_through_the_parser() {
        for s in [
            "plain",
            "has \"double quotes\"",
            "back\\slash and \\\\ doubled",
            "tab\there, newline\nthere, return\rback",
            "control \u{01}\u{02}\u{1f} chars",
            "non-ASCII: naïve café 日本語 🚀",
            "mixed \"q\\u\\\"ote\" \n\t 終",
        ] {
            let (name, arg) = round_trip(s, s);
            assert_eq!(name, s, "event name must round-trip");
            assert_eq!(arg, s, "string arg must round-trip");
        }
    }

    #[test]
    fn counter_names_round_trip_through_the_parser() {
        let e = TraceEvent {
            name: "hbm \"used\" \\ fraction".into(),
            track: Track::Memsim,
            tid: 0,
            ts_us: 0.0,
            kind: EventKind::Counter { value: 0.25 },
            args: vec![],
        };
        let doc = crate::json::parse(&to_chrome_json(&[e])).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let counter = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .expect("counter event present");
        assert_eq!(
            counter.get("name").and_then(|n| n.as_str()),
            Some("hbm \"used\" \\ fraction")
        );
        assert_eq!(
            counter
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(|v| v.as_f64()),
            Some(0.25)
        );
    }
}
