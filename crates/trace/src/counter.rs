//! Typed hardware counters and latency histograms.
//!
//! Every counter documents its **unit** and the **paper mechanism** it
//! observes, so a number in a [`crate::MetricsReport`] can always be traced
//! back to the claim it supports. Counters are monotonic sums over a
//! tracer's lifetime; histograms aggregate per-operation latencies into
//! power-of-two buckets.

use serde::{Deserialize, Serialize};

/// A monotonic counter exported by the instrumented simulation stack.
///
/// Each variant's documentation states the unit and the paper mechanism it
/// observes. Counters are accumulated in a fixed array inside the tracer
/// (indexed by [`Counter::index`]), so aggregation order never depends on
/// hash-map iteration and reports are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Counter {
    /// Unit: cycles. Total PMU scratchpad vector-access cycles, including
    /// serialization from bank conflicts (§IV-B: banked scratchpad with
    /// programmable bank bits).
    PmuAccessCycles,
    /// Unit: cycles. Cycles *lost* to PMU bank conflicts: the excess of an
    /// access over the one-cycle conflict-free ideal. The quantity the
    /// SN40L's programmable bank bits and diagonally striped transpose
    /// layout drive to zero (§IV-B, §VII).
    PmuBankConflictCycles,
    /// Unit: units. PCUs occupied by mapped kernel stages on the tile mesh
    /// (§IV-A, Figure 4: gangs of Pattern Compute Units per stage).
    PcusOccupied,
    /// Unit: units. PMUs occupied as stage buffers by mapped kernels
    /// (§IV-B: decoupling stage buffers between pipeline stages).
    PmusOccupied,
    /// Unit: cycles. Total RDN mesh-simulation cycles until all packets of
    /// all flows delivered (§IV-C: the Reconfigurable Dataflow Network).
    RdnCycles,
    /// Unit: cycles. Output-port stalls from exhausted credits summed over
    /// all RDN switches — the congestion signal the paper's packet
    /// throttling attacks (§IV-C credit flow control, §VII "Managing
    /// bandwidth in software").
    RdnStallCycles,
    /// Unit: packets. Packets delivered to RDN local ports (§IV-C).
    RdnPacketsDelivered,
    /// Unit: flows. Flows deferred to a serial follow-up phase by flow-ID
    /// exhaustion — the SN10 penalty the SN40L's MPLS-style relabeling
    /// removes (§IV-E).
    RdnDeferredFlows,
    /// Unit: cycles. Cycles fused-pipeline stages spent blocked on a full
    /// downstream stage buffer (Figure 4 back-pressure; finite PMU buffer
    /// depths).
    PipelineBlockedCycles,
    /// Unit: transfers. DMA transfers executed between memory tiers
    /// (§IV-D: AGCU-streamed transfers).
    DmaTransfers,
    /// Unit: bytes. Bytes moved DDR→HBM — the model-switch route whose
    /// bandwidth makes Composition of Experts viable on the SN40L (§V-B,
    /// Figure 1).
    DmaBytesDdrToHbm,
    /// Unit: bytes. Bytes moved HBM→DDR (dirty-state copy-back on expert
    /// eviction, §V-B).
    DmaBytesHbmToDdr,
    /// Unit: bytes. Bytes moved host↔device over PCIe — the slow
    /// model-switch path conventional GPUs are stuck with (§III-B,
    /// Figure 1's DGX bars).
    DmaBytesHost,
    /// Unit: count. Injected DMA failures observed at the transfer site
    /// (PR 1 fault framework; transfers abort and are retried upstream).
    DmaFaultsInjected,
    /// Unit: launches. Kernel launches issued by the executor. With
    /// spatial fusion the paper collapses this by 3–19× (Figure 11).
    KernelLaunches,
    /// Unit: loads. One-time program-configuration loads — paid per
    /// distinct kernel, amortized across relaunches (§IV-D, §VI-A).
    ProgramLoads,
    /// Unit: activations. Expert activations that found the expert already
    /// HBM-resident (§V-B: the CoE runtime's HBM cache).
    ExpertHits,
    /// Unit: activations. Expert activations that had to copy weights
    /// DDR→HBM (§V-B; each miss costs a Figure 1 "model switching" bar).
    ExpertMisses,
    /// Unit: evictions. Experts evicted from HBM to make room (LRU; §V-B).
    ExpertEvictions,
    /// Unit: bytes. Total bytes moved by expert switches (copy-in plus
    /// dirty copy-back; read-only weights skip the return trip, §V-B).
    ExpertSwitchBytes,
    /// Unit: decisions. Router classifications issued — one per prompt
    /// (§II, §VI-B: the CoE router is itself a Llama2-7B-class model).
    RouterDecisions,
    /// Unit: prompts. Prompts served to completion across all batches.
    PromptsServed,
    /// Unit: retries. Failed attempts absorbed by retry policies across
    /// routing, expert loads, and execution (PR 1 degraded-mode serving;
    /// recovery time appears in `ServeReport::recovery`).
    RetriesAbsorbed,
    /// Unit: experts. Experts re-homed onto surviving nodes after their
    /// home node failed (PR 1 cluster failover).
    ExpertsRehomed,
    /// Unit: prompts. Prompts dropped because no survivor could adopt
    /// their expert (availability loss under faults).
    PromptsDropped,
    /// Unit: requests. Requests admitted from the online scheduler's
    /// arrival queue into the continuous-batching loop (PR 4 online
    /// serving; admission happens at decode-iteration boundaries).
    RequestsAdmitted,
    /// Unit: waves. Admission waves opened by the online scheduler — each
    /// wave pays one router pass over its newly admitted requests (PR 4
    /// online serving).
    AdmissionWaves,
    /// Unit: requests. Requests submitted through the multi-tenant
    /// frontend, before any admission control (PR 6 tenancy).
    TenantRequests,
    /// Unit: requests. Requests shed by admission control or the engine —
    /// rate-limited, queue-full, timed out, or lost to capacity (PR 6
    /// tenancy; every shed is a first-class report outcome).
    RequestsShed,
    /// Unit: requests. In-flight batch-class requests bumped from a wave
    /// by interactive traffic at a wave boundary; progress is kept and
    /// they resume later (PR 6 tenancy).
    RequestsPreempted,
    /// Unit: events. Capacity-controller scale-up actions: a node added
    /// and experts rebalanced onto it (PR 6 autoscaling).
    ScaleUps,
    /// Unit: events. Capacity-controller scale-down actions: a node
    /// drained (experts re-homed off it) and taken out of service (PR 6
    /// autoscaling).
    ScaleDowns,
    /// Unit: prefetches. Speculative DDR→HBM expert loads issued at wave
    /// boundaries by the prefetch policy (PR 7 placement; each one is a
    /// real transfer charged at model-switch bandwidth).
    PrefetchIssued,
    /// Unit: prefetches. Prefetched experts that the next wave's router
    /// pass actually landed on — the activation became a free HBM hit
    /// instead of a cold switch (PR 7 placement).
    PrefetchHits,
    /// Unit: bytes. Bytes copied DDR→HBM for prefetched experts that were
    /// *not* used before leaving HBM — the bandwidth cost of misprediction
    /// (PR 7 placement).
    PrefetchWastedBytes,
    /// Unit: pages. KV-cache pages evicted from HBM under the shared
    /// weights/KV budget (PR 7 paged KV cache; cost-aware LRU).
    KvPagesEvicted,
    /// Unit: experts. Hot-expert replicas created on additional nodes by
    /// the placement policy so router bursts split across sockets (PR 7
    /// placement).
    ExpertsReplicated,
    /// Unit: alerts. Alert rules that transitioned to firing during the
    /// run — each transition, not each breaching wave (PR 8 obs).
    AlertsFired,
    /// Unit: alerts. Alert rules that transitioned back to resolved
    /// during the run (PR 8 obs).
    AlertsResolved,
    /// Unit: bundles. Post-mortem flight-recorder bundles frozen during
    /// the run — one per incident window, alert- or chaos-triggered
    /// (PR 8 obs).
    PostmortemsCaptured,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 40] = [
        Counter::PmuAccessCycles,
        Counter::PmuBankConflictCycles,
        Counter::PcusOccupied,
        Counter::PmusOccupied,
        Counter::RdnCycles,
        Counter::RdnStallCycles,
        Counter::RdnPacketsDelivered,
        Counter::RdnDeferredFlows,
        Counter::PipelineBlockedCycles,
        Counter::DmaTransfers,
        Counter::DmaBytesDdrToHbm,
        Counter::DmaBytesHbmToDdr,
        Counter::DmaBytesHost,
        Counter::DmaFaultsInjected,
        Counter::KernelLaunches,
        Counter::ProgramLoads,
        Counter::ExpertHits,
        Counter::ExpertMisses,
        Counter::ExpertEvictions,
        Counter::ExpertSwitchBytes,
        Counter::RouterDecisions,
        Counter::PromptsServed,
        Counter::RetriesAbsorbed,
        Counter::ExpertsRehomed,
        Counter::PromptsDropped,
        Counter::RequestsAdmitted,
        Counter::AdmissionWaves,
        Counter::TenantRequests,
        Counter::RequestsShed,
        Counter::RequestsPreempted,
        Counter::ScaleUps,
        Counter::ScaleDowns,
        Counter::PrefetchIssued,
        Counter::PrefetchHits,
        Counter::PrefetchWastedBytes,
        Counter::KvPagesEvicted,
        Counter::ExpertsReplicated,
        Counter::AlertsFired,
        Counter::AlertsResolved,
        Counter::PostmortemsCaptured,
    ];

    /// Number of counters (size of the tracer's accumulation array).
    pub const COUNT: usize = Counter::ALL.len();

    /// Stable array index of this counter.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Snake-case name used in reports and trace args.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::PmuAccessCycles => "pmu_access_cycles",
            Counter::PmuBankConflictCycles => "pmu_bank_conflict_cycles",
            Counter::PcusOccupied => "pcus_occupied",
            Counter::PmusOccupied => "pmus_occupied",
            Counter::RdnCycles => "rdn_cycles",
            Counter::RdnStallCycles => "rdn_stall_cycles",
            Counter::RdnPacketsDelivered => "rdn_packets_delivered",
            Counter::RdnDeferredFlows => "rdn_deferred_flows",
            Counter::PipelineBlockedCycles => "pipeline_blocked_cycles",
            Counter::DmaTransfers => "dma_transfers",
            Counter::DmaBytesDdrToHbm => "dma_bytes_ddr_to_hbm",
            Counter::DmaBytesHbmToDdr => "dma_bytes_hbm_to_ddr",
            Counter::DmaBytesHost => "dma_bytes_host",
            Counter::DmaFaultsInjected => "dma_faults_injected",
            Counter::KernelLaunches => "kernel_launches",
            Counter::ProgramLoads => "program_loads",
            Counter::ExpertHits => "expert_hits",
            Counter::ExpertMisses => "expert_misses",
            Counter::ExpertEvictions => "expert_evictions",
            Counter::ExpertSwitchBytes => "expert_switch_bytes",
            Counter::RouterDecisions => "router_decisions",
            Counter::PromptsServed => "prompts_served",
            Counter::RetriesAbsorbed => "retries_absorbed",
            Counter::ExpertsRehomed => "experts_rehomed",
            Counter::PromptsDropped => "prompts_dropped",
            Counter::RequestsAdmitted => "requests_admitted",
            Counter::AdmissionWaves => "admission_waves",
            Counter::TenantRequests => "tenant_requests",
            Counter::RequestsShed => "requests_shed",
            Counter::RequestsPreempted => "requests_preempted",
            Counter::ScaleUps => "scale_ups",
            Counter::ScaleDowns => "scale_downs",
            Counter::PrefetchIssued => "prefetch_issued",
            Counter::PrefetchHits => "prefetch_hits",
            Counter::PrefetchWastedBytes => "prefetch_wasted_bytes",
            Counter::KvPagesEvicted => "kv_pages_evicted",
            Counter::ExpertsReplicated => "experts_replicated",
            Counter::AlertsFired => "alerts_fired",
            Counter::AlertsResolved => "alerts_resolved",
            Counter::PostmortemsCaptured => "postmortems_captured",
        }
    }

    /// Unit string for report rendering.
    pub const fn unit(self) -> &'static str {
        match self {
            Counter::PmuAccessCycles
            | Counter::PmuBankConflictCycles
            | Counter::RdnCycles
            | Counter::RdnStallCycles
            | Counter::PipelineBlockedCycles => "cycles",
            Counter::PcusOccupied | Counter::PmusOccupied => "units",
            Counter::RdnPacketsDelivered => "packets",
            Counter::RdnDeferredFlows => "flows",
            Counter::DmaTransfers => "transfers",
            Counter::DmaBytesDdrToHbm
            | Counter::DmaBytesHbmToDdr
            | Counter::DmaBytesHost
            | Counter::ExpertSwitchBytes
            | Counter::PrefetchWastedBytes => "bytes",
            Counter::DmaFaultsInjected => "faults",
            Counter::KernelLaunches => "launches",
            Counter::ProgramLoads => "loads",
            Counter::ExpertHits | Counter::ExpertMisses => "activations",
            Counter::ExpertEvictions => "evictions",
            Counter::RouterDecisions => "decisions",
            Counter::PromptsServed | Counter::PromptsDropped => "prompts",
            Counter::RetriesAbsorbed => "retries",
            Counter::ExpertsRehomed | Counter::ExpertsReplicated => "experts",
            Counter::RequestsAdmitted
            | Counter::TenantRequests
            | Counter::RequestsShed
            | Counter::RequestsPreempted => "requests",
            Counter::AdmissionWaves => "waves",
            Counter::ScaleUps | Counter::ScaleDowns => "events",
            Counter::PrefetchIssued | Counter::PrefetchHits => "prefetches",
            Counter::KvPagesEvicted => "pages",
            Counter::AlertsFired | Counter::AlertsResolved => "alerts",
            Counter::PostmortemsCaptured => "bundles",
        }
    }
}

/// A latency histogram identity: which operation's durations are being
/// aggregated. All histograms record **nanoseconds of model time**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Per-transfer DMA latency (§IV-D). Spread reveals the mix of small
    /// argument transfers and multi-gigabyte expert copies.
    DmaTransfer,
    /// Per-activation expert switch time DDR→HBM (§V-B, the Figure 1
    /// "model switching" component).
    ExpertSwitch,
    /// Per-call kernel execution time, launch overheads included (§IV-D).
    KernelRun,
    /// Per-prompt end-to-end latency: router share + exposed switch +
    /// execution + recovery (Figure 12's per-request quantity).
    Request,
    /// Per-request queueing delay in the online scheduler: admission time
    /// minus arrival time (zero for an uncontended burst).
    QueueDelay,
    /// Per-request time-to-first-token in the online scheduler: arrival to
    /// end of the request's prefill (router + switch + queue included).
    Ttft,
}

impl Metric {
    /// Every histogram, in report order.
    pub const ALL: [Metric; 6] = [
        Metric::DmaTransfer,
        Metric::ExpertSwitch,
        Metric::KernelRun,
        Metric::Request,
        Metric::QueueDelay,
        Metric::Ttft,
    ];

    /// Number of histograms (size of the tracer's aggregation array).
    pub const COUNT: usize = Metric::ALL.len();

    /// Stable array index of this metric.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Snake-case name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            Metric::DmaTransfer => "dma_transfer_ns",
            Metric::ExpertSwitch => "expert_switch_ns",
            Metric::KernelRun => "kernel_run_ns",
            Metric::Request => "request_ns",
            Metric::QueueDelay => "queue_delay_ns",
            Metric::Ttft => "ttft_ns",
        }
    }
}

/// Number of power-of-two buckets: bucket `i` holds values in
/// `[2^(i-1), 2^i)` ns (bucket 0 holds zero), covering up to ~2.3 years of
/// model time — far beyond any simulated latency.
pub const HISTOGRAM_BUCKETS: usize = 56;

/// A power-of-two latency histogram over nanoseconds of model time.
///
/// Deterministic by construction: recording is a pure function of the
/// value, and bucket order is fixed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    const fn bucket_of(value_ns: u64) -> usize {
        let b = (u64::BITS - value_ns.leading_zeros()) as usize;
        if b >= HISTOGRAM_BUCKETS {
            HISTOGRAM_BUCKETS - 1
        } else {
            b
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value_ns: u64) {
        self.buckets[Self::bucket_of(value_ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(value_ns);
        if value_ns < self.min_ns {
            self.min_ns = value_ns;
        }
        if value_ns > self.max_ns {
            self.max_ns = value_ns;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Smallest observation in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest observation in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean observation in nanoseconds (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Percentile estimate in nanoseconds: the public quantile API used by
    /// report printers and the `sn-profile` analysis layer.
    ///
    /// Semantics are those of [`Histogram::quantile_upper_ns`]: the
    /// exclusive upper bound of the power-of-two bucket holding rank
    /// `ceil(q * count)` — a conservative (never under-reporting) estimate
    /// whose error is bounded by the bucket width. `q` is clamped to
    /// `[0, 1]`; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_upper_ns(q)
    }

    /// Upper bound (exclusive, in ns) of the bucket holding the requested
    /// quantile `q` in `[0, 1]` — a conservative percentile estimate with
    /// power-of-two resolution. Returns 0 when empty.
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max_ns
    }

    /// Non-empty buckets as `(upper_bound_ns, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }

    /// Merges another histogram into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_indices_match_all_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?}");
        }
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(m.index(), i, "{m:?}");
        }
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in [100, 200, 400, 800] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_ns(), 1500);
        assert_eq!(h.min_ns(), 100);
        assert_eq!(h.max_ns(), 800);
        assert!((h.mean_ns() - 375.0).abs() < 1e-9);
        // p100 upper bound covers the max.
        assert!(h.quantile_upper_ns(1.0) >= 800);
    }

    #[test]
    fn zero_and_huge_values_stay_in_range() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.nonzero_buckets().len(), 2);
        assert_eq!(h.nonzero_buckets()[0], (0, 1));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_ns(), 10);
        assert_eq!(a.max_ns(), 1000);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut filled = Histogram::new();
        for v in [5, 50, 500] {
            filled.record(v);
        }
        let reference = filled.clone();
        // Merging an empty histogram in changes nothing — in particular the
        // empty side's min_ns sentinel (u64::MAX) must not leak.
        filled.merge(&Histogram::new());
        assert_eq!(filled, reference);
        // Merging into an empty histogram reproduces the other side.
        let mut empty = Histogram::new();
        empty.merge(&reference);
        assert_eq!(empty, reference);
        assert_eq!(empty.min_ns(), 5);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let xs = [0u64, 1, 2, 1023, 1024, 65_000];
        let ys = [3u64, 1024, 2048, u64::MAX];
        let mut merged = Histogram::new();
        for &v in &xs {
            merged.record(v);
        }
        let mut other = Histogram::new();
        for &v in &ys {
            other.record(v);
        }
        merged.merge(&other);
        let mut direct = Histogram::new();
        for &v in xs.iter().chain(&ys) {
            direct.record(v);
        }
        assert_eq!(merged, direct);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
    }

    #[test]
    fn quantile_of_single_sample_bounds_it_at_every_q() {
        let mut h = Histogram::new();
        h.record(700); // bucket [512, 1024) -> upper bound 1024
        for q in [0.0, 0.01, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 1024);
        }
        // A lone zero lives in bucket 0, reported as 0.
        let mut z = Histogram::new();
        z.record(0);
        assert_eq!(z.quantile(0.5), 0);
    }

    #[test]
    fn quantile_at_bucket_boundaries() {
        // 1024 = 2^10 is the *inclusive lower* edge of bucket 11
        // ([1024, 2048)), while 1023 still sits in bucket 10 ([512, 1024)).
        let mut below = Histogram::new();
        below.record(1023);
        assert_eq!(below.quantile(1.0), 1024);
        let mut at = Histogram::new();
        at.record(1024);
        assert_eq!(at.quantile(1.0), 2048);
        // q is clamped: out-of-range requests behave like 0.0 / 1.0.
        assert_eq!(at.quantile(-1.0), at.quantile(0.0));
        assert_eq!(at.quantile(2.0), at.quantile(1.0));
    }

    #[test]
    fn u64_saturation_stays_well_defined() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        // The sum saturates instead of wrapping.
        assert_eq!(h.sum_ns(), u64::MAX);
        assert_eq!(h.max_ns(), u64::MAX);
        // Values beyond the last bucket clamp into it, so the quantile
        // reports that bucket's upper bound, 1 << (HISTOGRAM_BUCKETS - 1);
        // max_ns still holds the exact extreme.
        assert_eq!(h.quantile(1.0), 1u64 << (HISTOGRAM_BUCKETS - 1));
        let mut merged = Histogram::new();
        merged.record(u64::MAX);
        merged.merge(&h);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum_ns(), u64::MAX, "merge saturates too");
    }

    #[test]
    fn quantile_matches_quantile_upper_ns() {
        let mut h = Histogram::new();
        for v in [3, 17, 900, 4096, 100_000] {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), h.quantile_upper_ns(q));
        }
    }

    proptest! {
        /// Quantile upper bounds are monotone in q and bound the data.
        #[test]
        fn quantiles_are_monotone(values in proptest::collection::vec(0u64..1_000_000_000, 1..100)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let qs = [0.1, 0.5, 0.9, 0.99, 1.0];
            let mut prev = 0;
            for &q in &qs {
                let u = h.quantile_upper_ns(q);
                prop_assert!(u >= prev, "quantiles must be monotone");
                prev = u;
            }
            prop_assert!(h.quantile_upper_ns(1.0) >= h.max_ns());
        }

        /// Merging two histograms is indistinguishable from recording the
        /// concatenated sample stream into one: identical state, and
        /// therefore identical quantiles at every q.
        #[test]
        fn merged_quantiles_equal_concatenated_quantiles(
            xs in proptest::collection::vec(0u64..1_000_000_000, 0..100),
            ys in proptest::collection::vec(0u64..1_000_000_000, 0..100),
        ) {
            let mut merged = Histogram::new();
            for &v in &xs {
                merged.record(v);
            }
            let mut other = Histogram::new();
            for &v in &ys {
                other.record(v);
            }
            merged.merge(&other);
            let mut concat = Histogram::new();
            for &v in xs.iter().chain(&ys) {
                concat.record(v);
            }
            prop_assert_eq!(&merged, &concat);
            for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
                prop_assert_eq!(
                    merged.quantile(q),
                    concat.quantile(q),
                    "q={} diverged after merge", q
                );
            }
        }
    }
}
