//! Aggregated metrics: the counter/histogram half of the observability
//! layer, attached to serving reports and rendered by `repro`.

use crate::counter::{Counter, Histogram, Metric};
use serde::{Deserialize, Serialize};

/// Snapshot of every non-zero counter and non-empty histogram a tracer
/// accumulated, in the fixed order of [`Counter::ALL`] / [`Metric::ALL`]
/// (never hash-map order), so two same-seed runs produce identical
/// reports.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Non-zero counters in [`Counter::ALL`] order.
    pub counters: Vec<(Counter, u64)>,
    /// Non-empty histograms in [`Metric::ALL`] order.
    pub histograms: Vec<(Metric, Histogram)>,
}

impl MetricsReport {
    /// A report with nothing recorded.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a report from the tracer's raw accumulation arrays, keeping
    /// only non-zero counters and non-empty histograms.
    pub(crate) fn from_raw(counters: &[u64; Counter::COUNT], histograms: &[Histogram]) -> Self {
        MetricsReport {
            counters: Counter::ALL
                .iter()
                .filter(|c| counters[c.index()] != 0)
                .map(|&c| (c, counters[c.index()]))
                .collect(),
            histograms: Metric::ALL
                .iter()
                .filter(|m| !histograms[m.index()].is_empty())
                .map(|&m| (m, histograms[m.index()].clone()))
                .collect(),
        }
    }

    /// Value of one counter (0 if it never fired).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(c, _)| *c == counter)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Histogram for one metric, if anything was recorded.
    pub fn histogram(&self, metric: Metric) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(m, _)| *m == metric)
            .map(|(_, h)| h)
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Renders the report as an aligned plain-text table (the `repro`
    /// console output).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("  (no metrics recorded)\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("  counter                        value  unit\n");
            for &(c, v) in &self.counters {
                out.push_str(&format!("  {:<28} {:>9}  {}\n", c.name(), v, c.unit()));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(
                "  histogram (ns)        count       mean        p50        p99        max\n",
            );
            for (m, h) in &self.histograms {
                out.push_str(&format!(
                    "  {:<18} {:>8} {:>10.0} {:>10} {:>10} {:>10}\n",
                    m.name(),
                    h.count(),
                    h.mean_ns(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max_ns(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_raw_keeps_only_nonzero_in_all_order() {
        let mut counters = [0u64; Counter::COUNT];
        counters[Counter::ExpertMisses.index()] = 3;
        counters[Counter::PmuAccessCycles.index()] = 9;
        let mut hists = vec![Histogram::new(); Metric::COUNT];
        hists[Metric::Request.index()].record(42);
        let r = MetricsReport::from_raw(&counters, &hists);
        // PmuAccessCycles precedes ExpertMisses in Counter::ALL.
        assert_eq!(
            r.counters,
            vec![(Counter::PmuAccessCycles, 9), (Counter::ExpertMisses, 3)]
        );
        assert_eq!(r.counter(Counter::ExpertHits), 0);
        assert_eq!(r.histograms.len(), 1);
        assert!(r.histogram(Metric::Request).is_some());
        assert!(r.histogram(Metric::KernelRun).is_none());
    }

    #[test]
    fn table_renders_names_and_units() {
        let mut counters = [0u64; Counter::COUNT];
        counters[Counter::DmaTransfers.index()] = 12;
        let mut hists = vec![Histogram::new(); Metric::COUNT];
        hists[Metric::DmaTransfer.index()].record(1000);
        let r = MetricsReport::from_raw(&counters, &hists);
        let t = r.render_table();
        assert!(t.contains("dma_transfers"));
        assert!(t.contains("transfers"));
        assert!(t.contains("dma_transfer_ns"));
    }

    #[test]
    fn empty_report() {
        let r = MetricsReport::empty();
        assert!(r.is_empty());
        assert!(r.render_table().contains("no metrics"));
    }

    #[test]
    fn zero_sample_gauges_render_zero_not_nan() {
        // Regression for the empty-window-NaN class of bug: a histogram
        // whose only samples are zero-valued, and a hand-built report
        // carrying a fully empty histogram, must both render finite
        // numbers (mean 0, quantiles 0) — never NaN.
        let mut counters = [0u64; Counter::COUNT];
        counters[Counter::AlertsFired.index()] = 0; // stays filtered out
        let mut hists = vec![Histogram::new(); Metric::COUNT];
        hists[Metric::Request.index()].record(0);
        hists[Metric::Request.index()].record(0);
        let r = MetricsReport::from_raw(&counters, &hists);
        let h = r.histogram(Metric::Request).unwrap();
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min_ns(), 0);
        let table = r.render_table();
        assert!(!table.contains("NaN"), "table: {table}");

        // A report constructed with an empty histogram (bypassing the
        // from_raw filter) still renders finite stats.
        let forced = MetricsReport {
            counters: vec![],
            histograms: vec![(Metric::Request, Histogram::new())],
        };
        let empty = forced.histogram(Metric::Request).unwrap();
        assert_eq!(empty.mean_ns(), 0.0);
        assert_eq!(empty.quantile(0.5), 0);
        assert!(!forced.render_table().contains("NaN"));
    }
}
