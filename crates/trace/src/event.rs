//! Structured trace events: the timeline half of the observability layer.
//!
//! Events map one-to-one onto the Chrome trace format (see [`crate::chrome`]):
//! a [`Track`] becomes a process row in Perfetto, complete events become
//! duration slices, counter events become counter tracks, and instants
//! become markers.

use serde::{Deserialize, Serialize};

/// A timeline row: each instrumented subsystem gets its own process id in
/// the Chrome trace so Perfetto groups its events together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Track {
    /// On-chip cycle-level simulation (`sn-rdusim`): PCU/PMU occupancy,
    /// bank conflicts, RDN credit stalls. Timestamps on this track are in
    /// *simulated cycles*, rendered at 1 cycle = 1 ns (nominal 1 GHz).
    Rdusim,
    /// Off-chip memory traffic (`sn-memsim`): DMA transfers per route,
    /// queue depth, per-tier bandwidth.
    Memsim,
    /// Kernel launches and execution sections (`sn-runtime`).
    Runtime,
    /// CoE serving (`sn-coe`): router decisions, expert switches, per
    /// prompt execution, fault recovery.
    Coe,
    /// Multi-node serving (`sn-coe::cluster`): per-node lanes keyed by the
    /// event's thread id.
    Cluster,
}

impl Track {
    /// Every track, in process-id order.
    pub const ALL: [Track; 5] = [
        Track::Rdusim,
        Track::Memsim,
        Track::Runtime,
        Track::Coe,
        Track::Cluster,
    ];

    /// Stable process id used in the Chrome trace (1-based; 0 is reserved).
    pub const fn pid(self) -> u32 {
        match self {
            Track::Rdusim => 1,
            Track::Memsim => 2,
            Track::Runtime => 3,
            Track::Coe => 4,
            Track::Cluster => 5,
        }
    }

    /// Process name shown in Perfetto.
    pub const fn name(self) -> &'static str {
        match self {
            Track::Rdusim => "rdusim (on-chip, 1 cycle = 1 ns)",
            Track::Memsim => "memsim (DMA / memory tiers)",
            Track::Runtime => "runtime (kernel launches)",
            Track::Coe => "coe serving",
            Track::Cluster => "coe cluster",
        }
    }

    pub(crate) const fn index(self) -> usize {
        self.pid() as usize - 1
    }
}

/// What kind of mark an event puts on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A slice with a duration (Chrome phase `"X"`).
    Complete {
        /// Duration in microseconds of model time.
        dur_us: f64,
    },
    /// A zero-duration marker (Chrome phase `"i"`).
    Instant,
    /// A sampled counter value rendered as a counter track (phase `"C"`).
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// A typed argument value attached to an event (`args` in Chrome trace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArgValue {
    /// Unsigned integer payload (counts, bytes, indices).
    U64(u64),
    /// Floating payload (times, fractions).
    F64(f64),
    /// String payload (names).
    Str(String),
    /// Boolean payload (hit/miss style flags).
    Bool(bool),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event name (the slice label in Perfetto).
    pub name: String,
    /// Timeline row this event belongs to.
    pub track: Track,
    /// Thread id within the track (cluster events use the node index).
    pub tid: u32,
    /// Start timestamp in microseconds of model time.
    pub ts_us: f64,
    /// Slice, instant, or counter sample.
    pub kind: EventKind,
    /// Typed key/value payload (`args` in the Chrome trace).
    pub args: Vec<(&'static str, ArgValue)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pids_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for t in Track::ALL {
            assert!(seen.insert(t.pid()), "duplicate pid for {t:?}");
            assert_eq!(Track::ALL[t.index()], t, "index roundtrips");
        }
    }

    #[test]
    fn arg_conversions() {
        assert_eq!(ArgValue::from(3usize), ArgValue::U64(3));
        assert_eq!(ArgValue::from("x"), ArgValue::Str("x".into()));
        assert_eq!(ArgValue::from(true), ArgValue::Bool(true));
    }
}
