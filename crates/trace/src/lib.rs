//! Observability layer for the SN40L simulation stack: structured event
//! tracing, typed hardware counters, and aggregated metrics.
//!
//! The paper's performance claims (Figs. 10–12, Table 1) hinge on
//! *mechanisms* — operator fusion depth (§VI-A), PMU bank conflicts
//! (§IV-B), RDN switch credit stalls (§IV-C, §VII), HBM/DDR bandwidth
//! saturation and DMA overlap (§V-B) — that the simulator models but could
//! not show until this crate existed. Instrumented crates (`sn-rdusim`,
//! `sn-memsim`, `sn-runtime`, `sn-coe`) hold a [`Tracer`] handle and emit
//! events and counters through it; two sinks consume the result:
//!
//! - a Chrome-trace/Perfetto-compatible JSON timeline
//!   ([`Tracer::chrome_trace_json`], written by `repro --trace out.json`);
//! - an aggregated [`MetricsReport`] (typed [`Counter`]s plus
//!   [`Histogram`]s) attached to serving reports.
//!
//! # Zero overhead when disabled
//!
//! A [`Tracer`] is either *enabled* (holds a shared buffer) or *disabled*
//! (holds nothing — [`Tracer::disabled`], also the `Default`). Every
//! recording method starts with an inlined null check on the inner
//! `Option`, so the disabled path compiles down to a branch on a
//! known-`None` discriminant and the instrumented simulators produce
//! bit-identical numbers with tracing off. The bench-parity guard in
//! `tests/trace.rs` enforces this.
//!
//! # Determinism
//!
//! Event order is the instrumentation call order, counters live in fixed
//! arrays indexed by enum discriminant, and timestamps derive from the
//! same deterministic model arithmetic as the reports — so two same-seed
//! runs emit byte-identical trace streams (also enforced by
//! `tests/trace.rs`).
//!
//! # Example
//!
//! ```
//! use sn_trace::{Counter, Metric, Tracer, Track};
//! use sn_arch::TimeSecs;
//!
//! let tracer = Tracer::enabled();
//! tracer.count(Counter::ExpertMisses, 1);
//! tracer.observe(Metric::ExpertSwitch, TimeSecs::from_millis(13.0));
//! tracer.span(Track::Coe, "switch:expert7", TimeSecs::from_millis(13.0), &[]);
//! let json = tracer.chrome_trace_json();
//! assert!(json.contains("\"traceEvents\""));
//! assert_eq!(tracer.metrics().counter(Counter::ExpertMisses), 1);
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod counter;
pub mod event;
pub mod json;
pub mod report;
pub mod tracer;

pub use counter::{Counter, Histogram, Metric};
pub use event::{ArgValue, EventKind, TraceEvent, Track};
pub use report::MetricsReport;
pub use tracer::Tracer;
