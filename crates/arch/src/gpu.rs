//! GPU and DGX baseline descriptions (§VI-B).
//!
//! The paper estimates DGX latencies from published model-latency numbers
//! and "optimistic model switching estimates based on DGX specs". We follow
//! the same methodology: spec numbers below come from NVIDIA datasheets
//! cited by the paper (its references 17, 18, 20, and 21).

use crate::units::{Bandwidth, Bytes, FlopRate, TimeSecs};
use serde::{Deserialize, Serialize};

/// One GPU's roofline-relevant characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    pub name: String,
    /// Peak dense BF16 tensor-core throughput.
    pub peak_bf16: FlopRate,
    pub hbm_capacity: Bytes,
    pub hbm_bandwidth: Bandwidth,
    /// Achievable fraction of HBM bandwidth for large streaming kernels.
    pub hbm_efficiency: f64,
    /// Achievable fraction of HBM bandwidth for the many small unfusable
    /// kernels of autoregressive decoding at small batch (gaps between
    /// launches, low per-kernel occupancy). Calibrated in
    /// [`crate::calib::Calibration`]'s documentation.
    pub hbm_efficiency_small_kernels: f64,
    /// CPU-side kernel launch overhead per kernel.
    pub kernel_launch: TimeSecs,
    /// CUDA-graph style reduced launch overhead (the strongest launch-cost
    /// mitigation we credit the baseline with).
    pub graph_launch: TimeSecs,
    /// Host-to-GPU copy bandwidth per GPU (PCIe).
    pub host_link: Bandwidth,
    /// Maximum operators conventional fusion can combine into one kernel
    /// (§VIII-3: "conventional operator fusion targets 1-5 operators").
    pub max_fused_ops: usize,
}

impl GpuSpec {
    /// NVIDIA A100 SXM 80 GB: 312 BF16 TFLOPS dense, 2.04 TB/s HBM2e,
    /// 32 GB/s host-to-GPU (PCIe Gen4 x16 effective, per the paper's §VI-B).
    pub fn a100() -> Self {
        GpuSpec {
            name: "A100".to_string(),
            peak_bf16: FlopRate::from_tflops(312.0),
            hbm_capacity: Bytes::from_gib(80),
            hbm_bandwidth: Bandwidth::from_tb_per_s(2.039),
            hbm_efficiency: 0.80,
            hbm_efficiency_small_kernels: 0.30,
            kernel_launch: TimeSecs::from_micros(8.0),
            graph_launch: TimeSecs::from_micros(1.5),
            host_link: Bandwidth::from_gb_per_s(32.0),
            max_fused_ops: 5,
        }
    }

    /// NVIDIA H100 SXM 80 GB: 989 BF16 TFLOPS dense, 3.35 TB/s HBM3,
    /// 64 GB/s host-to-GPU (per the paper's §VI-B).
    pub fn h100() -> Self {
        GpuSpec {
            name: "H100".to_string(),
            peak_bf16: FlopRate::from_tflops(989.0),
            hbm_capacity: Bytes::from_gib(80),
            hbm_bandwidth: Bandwidth::from_tb_per_s(3.35),
            hbm_efficiency: 0.80,
            hbm_efficiency_small_kernels: 0.24,
            kernel_launch: TimeSecs::from_micros(6.0),
            graph_launch: TimeSecs::from_micros(1.2),
            host_link: Bandwidth::from_gb_per_s(64.0),
            max_fused_ops: 5,
        }
    }

    /// Machine balance in FLOPs/byte (the paper quotes ~150 for the A100).
    pub fn balance(&self) -> f64 {
        self.peak_bf16 / self.hbm_bandwidth
    }

    /// Effective streaming bandwidth for large kernels.
    pub fn effective_hbm_bandwidth(&self) -> Bandwidth {
        self.hbm_bandwidth.scale(self.hbm_efficiency)
    }
}

/// A DGX node: eight GPUs, NVLink, and host DRAM that overflows experts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DgxSpec {
    pub name: String,
    pub gpu: GpuSpec,
    pub gpus: usize,
    /// Host DRAM capacity (DGX A100/H100 ship with 2 TiB).
    pub host_dram: Bytes,
    /// Fraction of host DRAM usable for expert weights (the OS, runtime,
    /// pinned buffers, and page tables consume the rest). Calibrated so that
    /// a DGX runs out of memory at the paper's 150-expert mark.
    pub host_dram_usable: f64,
    /// Aggregate NVLink all-reduce bandwidth per GPU.
    pub nvlink: Bandwidth,
    /// HBM reserved per node for the router, KV cache, activations, and
    /// framework state; the remainder holds resident experts. Calibrated so
    /// that the Figure 12 latency spike lands "around 50" experts.
    pub hbm_reserved: Bytes,
}

impl DgxSpec {
    /// DGX A100 (8x A100-80GB, 2 TiB host DRAM).
    pub fn dgx_a100() -> Self {
        DgxSpec {
            name: "DGX A100".to_string(),
            gpu: GpuSpec::a100(),
            gpus: 8,
            host_dram: Bytes::from_tib(2),
            host_dram_usable: 0.63,
            nvlink: Bandwidth::from_gb_per_s(300.0),
            hbm_reserved: Bytes::from_gib(40),
        }
    }

    /// DGX H100 (8x H100-80GB, 2 TiB host DRAM).
    pub fn dgx_h100() -> Self {
        DgxSpec {
            name: "DGX H100".to_string(),
            gpu: GpuSpec::h100(),
            gpus: 8,
            host_dram: Bytes::from_tib(2),
            host_dram_usable: 0.63,
            nvlink: Bandwidth::from_gb_per_s(450.0),
            hbm_reserved: Bytes::from_gib(40),
        }
    }

    /// Aggregate HBM capacity across GPUs.
    pub fn hbm_capacity(&self) -> Bytes {
        self.gpu.hbm_capacity * self.gpus as u64
    }

    /// HBM available for resident expert weights.
    pub fn hbm_for_experts(&self) -> Bytes {
        self.hbm_capacity().saturating_sub(self.hbm_reserved)
    }

    /// Host DRAM available for overflow expert weights.
    pub fn host_dram_for_experts(&self) -> Bytes {
        self.host_dram.scale(self.host_dram_usable)
    }

    /// Total weight capacity before out-of-memory.
    pub fn total_expert_capacity(&self) -> Bytes {
        self.hbm_for_experts() + self.host_dram_for_experts()
    }

    /// Host-to-GPU copy bandwidth available when switching an expert in.
    ///
    /// The paper's §VI-B speedup arithmetic (31x vs 32 GB/s on DGX A100,
    /// ~16x vs 64 GB/s on DGX H100, against the SN40L Node's >1 TB/s)
    /// treats the DGX host-to-GPU path as a single stream at the quoted
    /// per-GPU PCIe rate — host DRAM readout and the PCIe switch topology
    /// keep the eight links from scaling the copy. We model the same.
    pub fn model_switch_bandwidth(&self) -> Bandwidth {
        self.gpu.host_link
    }

    /// Aggregate peak BF16 compute.
    pub fn peak_bf16(&self) -> FlopRate {
        self.gpu.peak_bf16.scale(self.gpus as f64)
    }

    /// Aggregate peak HBM bandwidth.
    pub fn hbm_bandwidth(&self) -> Bandwidth {
        self.gpu.hbm_bandwidth.scale(self.gpus as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_balance_matches_paper_estimate() {
        // Paper §III-A: "approximately 300/2 = 150".
        let b = GpuSpec::a100().balance();
        assert!((b - 153.0).abs() < 5.0, "balance {b}");
    }

    #[test]
    fn dgx_ooms_near_150_experts() {
        // §VI-B: "DGXs run out of memory at 150 experts".
        let expert = Bytes::from_gb(13.48);
        for dgx in [DgxSpec::dgx_a100(), DgxSpec::dgx_h100()] {
            let max = (dgx.total_expert_capacity().as_f64() / expert.as_f64()) as usize;
            assert!(
                (145..=155).contains(&max),
                "{} holds {max} experts",
                dgx.name
            );
        }
    }

    #[test]
    fn dgx_hbm_holds_around_45_experts() {
        // Figure 12's latency spike "around 50 7B experts".
        let expert = Bytes::from_gb(13.48);
        let dgx = DgxSpec::dgx_a100();
        let resident = (dgx.hbm_for_experts().as_f64() / expert.as_f64()) as usize;
        assert!((42..=50).contains(&resident), "{resident} resident experts");
    }

    #[test]
    fn switch_bandwidth_ratios_match_paper() {
        // §VI-B: the SN40L Node's DDR->HBM copy (>1 TB/s) is 31x faster
        // than DGX A100 (32 GB/s host-to-GPU) and ~16x faster than DGX
        // H100 (64 GB/s host-to-GPU).
        let sn = crate::node::NodeSpec::sn40l_node().model_switch_bandwidth();
        let a = DgxSpec::dgx_a100().model_switch_bandwidth();
        let h = DgxSpec::dgx_h100().model_switch_bandwidth();
        assert!((sn / a) > 28.0 && (sn / a) < 36.0, "vs A100: {}", sn / a);
        assert!((sn / h) > 14.0 && (sn / h) < 18.0, "vs H100: {}", sn / h);
    }
}
