//! Roofline arithmetic (§III-A).
//!
//! The paper's fusion argument is a roofline argument: raising operational
//! intensity past the machine balance moves a kernel from the bandwidth
//! slope onto the compute ceiling. This module gives that argument a
//! first-class API used by the compiler's estimates and by examples.

use crate::units::{Bandwidth, FlopRate};
use serde::{Deserialize, Serialize};

/// A machine's roofline: a compute ceiling and a memory-bandwidth slope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    pub peak: FlopRate,
    pub bandwidth: Bandwidth,
}

/// Which side of the balance point a kernel sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regime {
    MemoryBound,
    ComputeBound,
}

impl Roofline {
    pub fn new(peak: FlopRate, bandwidth: Bandwidth) -> Self {
        Roofline { peak, bandwidth }
    }

    /// The machine balance: FLOPs/byte at the ridge point.
    pub fn balance(&self) -> f64 {
        self.peak / self.bandwidth
    }

    /// Attainable throughput at a given operational intensity.
    ///
    /// ```
    /// use sn_arch::prelude::*;
    /// use sn_arch::roofline::Roofline;
    /// let r = Roofline::new(FlopRate::from_tflops(300.0), Bandwidth::from_tb_per_s(2.0));
    /// // Below the ridge (150), bandwidth-limited.
    /// assert!((r.attainable(75.0).as_tflops() - 150.0).abs() < 1e-9);
    /// // Above the ridge, the compute ceiling.
    /// assert!((r.attainable(400.0).as_tflops() - 300.0).abs() < 1e-9);
    /// ```
    pub fn attainable(&self, intensity: f64) -> FlopRate {
        assert!(intensity >= 0.0, "intensity cannot be negative");
        let bw_limited = FlopRate::from_flops_per_s(self.bandwidth.as_bytes_per_s() * intensity);
        bw_limited.min(self.peak)
    }

    /// Classifies an intensity.
    pub fn regime(&self, intensity: f64) -> Regime {
        if intensity < self.balance() {
            Regime::MemoryBound
        } else {
            Regime::ComputeBound
        }
    }

    /// Fraction of peak achieved at a given intensity (the utilization a
    /// perfectly scheduled kernel could reach).
    pub fn efficiency_at(&self, intensity: f64) -> f64 {
        self.attainable(intensity) / self.peak
    }

    /// Attained-vs-attainable ratio: how close a measured FLOP rate comes
    /// to what this roofline allows at the given intensity, clamped to
    /// `[0, 1]`. Returns 0.0 when nothing is attainable (zero intensity on
    /// the bandwidth slope) — the profiler's "no useful FLOPs here" case.
    pub fn utilization(&self, attained: FlopRate, intensity: f64) -> f64 {
        let ceiling = self.attainable(intensity);
        if ceiling.as_flops_per_s() == 0.0 {
            0.0
        } else {
            (attained / ceiling).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::SocketSpec;

    fn a100_like() -> Roofline {
        Roofline::new(
            FlopRate::from_tflops(312.0),
            Bandwidth::from_tb_per_s(2.039),
        )
    }

    #[test]
    fn ridge_point_separates_regimes() {
        let r = a100_like();
        let b = r.balance();
        assert_eq!(r.regime(b * 0.5), Regime::MemoryBound);
        assert_eq!(r.regime(b * 2.0), Regime::ComputeBound);
    }

    #[test]
    fn attainable_is_continuous_at_ridge() {
        let r = a100_like();
        let b = r.balance();
        let below = r.attainable(b * 0.999).as_tflops();
        let above = r.attainable(b * 1.001).as_tflops();
        assert!((below - above).abs() / above < 0.01);
    }

    #[test]
    fn sn40l_roofline_classifies_table1() {
        // The Table I story on the SN40L's own roofline: only the fully
        // fused level is compute-bound.
        let s = SocketSpec::sn40l();
        let r = Roofline::new(s.peak_bf16(), s.hbm.bandwidth);
        assert_eq!(r.regime(34.9), Regime::MemoryBound);
        assert_eq!(r.regime(126.7), Regime::MemoryBound);
        assert_eq!(r.regime(368.5), Regime::ComputeBound);
    }

    #[test]
    fn utilization_compares_attained_to_attainable() {
        let r = a100_like();
        // Memory-bound intensity 50: attainable = 2.039 TB/s * 50.
        let ceiling = r.attainable(50.0);
        assert!((r.utilization(ceiling, 50.0) - 1.0).abs() < 1e-12);
        assert!((r.utilization(ceiling.scale(0.5), 50.0) - 0.5).abs() < 1e-12);
        // Over-attainment clamps instead of reporting >100%.
        assert_eq!(r.utilization(ceiling.scale(2.0), 50.0), 1.0);
        // Zero intensity: nothing attainable, utilization defined as zero.
        assert_eq!(r.utilization(FlopRate::from_tflops(1.0), 0.0), 0.0);
    }

    #[test]
    fn efficiency_saturates_at_one() {
        let r = a100_like();
        assert!(r.efficiency_at(10.0) < 0.1);
        assert!((r.efficiency_at(10_000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_intensity_panics() {
        let _ = a100_like().attainable(-1.0);
    }
}
