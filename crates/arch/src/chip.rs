//! RDU chip-level hardware descriptions: PCUs, PMUs, AGCUs, and tiles.
//!
//! The numbers in the SN40L preset come straight from the paper (§IV):
//! 1040 PCUs and 1040 PMUs per socket, 520 MiB of distributed SRAM, 638 BF16
//! TFLOPS peak. Microarchitectural parameters that the paper does not state
//! (clock, systolic dimensions, bank counts) are chosen so that the published
//! aggregates are met exactly; each such choice is documented on the field.

use crate::units::{Bandwidth, Bytes, FlopRate, Frequency};
use serde::{Deserialize, Serialize};

/// Pattern Compute Unit description (§IV-A).
///
/// A PCU's body is configurable as an output-stationary systolic array or as
/// a pipelined SIMD core; the tail performs transcendental and conversion
/// operations fused with the body.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcuSpec {
    /// Rows of the systolic array (MACs along one side).
    pub systolic_rows: usize,
    /// Columns of the systolic array.
    pub systolic_cols: usize,
    /// SIMD lanes when configured as a pipelined vector core.
    pub simd_lanes: usize,
    /// SIMD pipeline stages available for chained elementwise work.
    pub simd_stages: usize,
    /// Whether the PCU supports dynamic per-packet destinations
    /// (SN40L yes, SN10 no — §IV-E "dynamic dataflows").
    pub dynamic_destinations: bool,
    /// Whether GEMM-with-integrated-bias is supported (SN40L addition).
    pub fused_bias: bool,
}

impl PcuSpec {
    /// SN40L PCU: 16x16 output-stationary systolic array, 32-lane /
    /// 6-stage SIMD pipeline. Dimensions are chosen such that 1040 PCUs at
    /// the SN40L clock reach the published 638 BF16 TFLOPS
    /// (1040 x 16 x 16 x 2 FLOP x 1.2 GHz = 638.98e12).
    pub fn sn40l() -> Self {
        PcuSpec {
            systolic_rows: 16,
            systolic_cols: 16,
            simd_lanes: 32,
            simd_stages: 6,
            dynamic_destinations: true,
            fused_bias: true,
        }
    }

    /// SN10 PCU (prior generation, §IV-E): same datapath shape but without
    /// the SN40L feature additions.
    pub fn sn10() -> Self {
        PcuSpec {
            systolic_rows: 16,
            systolic_cols: 16,
            simd_lanes: 32,
            simd_stages: 6,
            dynamic_destinations: false,
            fused_bias: false,
        }
    }

    /// Peak multiply-accumulates per cycle in systolic mode.
    pub fn macs_per_cycle(&self) -> usize {
        self.systolic_rows * self.systolic_cols
    }

    /// Peak FLOPs per cycle in systolic mode (2 FLOPs per MAC).
    pub fn flops_per_cycle(&self) -> usize {
        2 * self.macs_per_cycle()
    }

    /// Peak elementwise operations per cycle in SIMD mode.
    pub fn simd_ops_per_cycle(&self) -> usize {
        self.simd_lanes
    }

    /// Peak BF16 throughput of one PCU at the given clock.
    pub fn peak_bf16(&self, clock: Frequency) -> FlopRate {
        FlopRate::from_flops_per_s(self.flops_per_cycle() as f64 * clock.as_hz())
    }
}

/// Pattern Memory Unit description (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmuSpec {
    /// Scratchpad capacity of one PMU. 520 MiB / 1040 PMUs = 512 KiB.
    pub scratchpad: Bytes,
    /// Number of independently addressable SRAM banks.
    pub banks: usize,
    /// Vector access width in bytes per cycle per direction (read and write
    /// are concurrent and non-blocking, §III-A requirement 2).
    pub vector_width: Bytes,
    /// Integer ALU stages available for read/write address generation; the
    /// pipeline can be partitioned between the two generators (§IV-B).
    pub addr_alu_stages: usize,
    /// Whether bank-bit locations are software-programmable (SN40L yes).
    pub programmable_bank_bits: bool,
    /// Whether the data-alignment unit has the SN40L high-throughput lane
    /// shuffle/masking extensions for FFT and sorts (§IV-E).
    pub lane_shuffle: bool,
}

impl PmuSpec {
    /// SN40L PMU: 512 KiB scratchpad over 16 banks, 64 B/cycle per
    /// direction. 1040 PMUs x (64+64) B/cycle x 1.2 GHz = 160 TB/s aggregate
    /// on-chip bandwidth, matching the paper's "hundreds of TBps".
    pub fn sn40l() -> Self {
        PmuSpec {
            scratchpad: Bytes::from_kib(512),
            banks: 16,
            vector_width: Bytes::new(64),
            addr_alu_stages: 6,
            programmable_bank_bits: true,
            lane_shuffle: true,
        }
    }

    /// SN10 PMU: same storage, fixed bank-bit mapping, no lane shuffles.
    pub fn sn10() -> Self {
        PmuSpec {
            scratchpad: Bytes::from_kib(512),
            banks: 16,
            vector_width: Bytes::new(64),
            addr_alu_stages: 6,
            programmable_bank_bits: false,
            lane_shuffle: false,
        }
    }

    /// Capacity of one scratchpad bank.
    pub fn bank_capacity(&self) -> Bytes {
        self.scratchpad / self.banks as u64
    }

    /// Peak read (or write) bandwidth of one PMU at the given clock.
    pub fn peak_bandwidth(&self, clock: Frequency) -> Bandwidth {
        Bandwidth::from_bytes_per_s(self.vector_width.as_f64() * clock.as_hz())
    }
}

/// Address Generation and Coalescing Unit description (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgcuSpec {
    /// Concurrent outstanding DMA streams one AGCU can sustain.
    pub dma_streams: usize,
    /// Whether the AGCU supports hardware kernel-launch orchestration
    /// (offloading a static kernel schedule; §IV-D).
    pub hardware_orchestration: bool,
    /// Whether the streaming peer-to-peer protocol is available.
    pub p2p: bool,
}

impl AgcuSpec {
    pub fn sn40l() -> Self {
        AgcuSpec {
            dma_streams: 8,
            hardware_orchestration: true,
            p2p: true,
        }
    }

    pub fn sn10() -> Self {
        AgcuSpec {
            dma_streams: 8,
            hardware_orchestration: false,
            p2p: true,
        }
    }
}

/// Physical arrangement of dataflow cores on one die's tile.
///
/// The RDN is a 2-D mesh (§IV); PCUs and PMUs alternate in a checkerboard
/// with AGCUs on the periphery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileGeometry {
    /// Mesh rows of compute/memory units.
    pub rows: usize,
    /// Mesh columns of compute/memory units.
    pub cols: usize,
    /// AGCUs on the tile periphery.
    pub agcus: usize,
}

impl TileGeometry {
    /// Total unit positions in the mesh.
    pub fn positions(&self) -> usize {
        self.rows * self.cols
    }
}

/// Whole-chip RDU description: a socket contains `dies` identical dies, each
/// carrying one tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RduChipSpec {
    /// Human-readable generation name ("SN40L", "SN10").
    pub name: String,
    /// Dies per socket (SN40L is a dual-die CoWoS package).
    pub dies: usize,
    /// PCUs per socket (across all dies).
    pub pcus: usize,
    /// PMUs per socket (across all dies).
    pub pmus: usize,
    /// Tile geometry of one die.
    pub tile: TileGeometry,
    /// Core clock.
    pub clock: Frequency,
    pub pcu: PcuSpec,
    pub pmu: PmuSpec,
    pub agcu: AgcuSpec,
    /// Die-to-die streaming bandwidth (data moves between dies without a
    /// trip through off-chip memory, §IV).
    pub d2d_bandwidth: Bandwidth,
    /// Fraction of peak performance lost to voltage-droop mitigation.
    /// SN10's conservative software mitigation cost up to 25% (§IV-E);
    /// SN40L's hardware management makes this negligible.
    pub droop_penalty: f64,
}

impl RduChipSpec {
    /// The SN40L: TSMC 5nm, dual-die, 1040 PCUs + 1040 PMUs per socket,
    /// 638 BF16 TFLOPS, 520 MiB SRAM (§I, §IV).
    pub fn sn40l() -> Self {
        // 1040 units per socket over 2 dies = 520 PCUs + 520 PMUs per die;
        // a 32-column x 33-row checkerboard region holds 1056 positions, but
        // we model the documented counts directly and use a 40x26 mesh per
        // die (1040 positions = 520 PCU + 520 PMU).
        RduChipSpec {
            name: "SN40L".to_string(),
            dies: 2,
            pcus: 1040,
            pmus: 1040,
            tile: TileGeometry {
                rows: 40,
                cols: 26,
                agcus: 32,
            },
            clock: Frequency::from_ghz(1.2),
            pcu: PcuSpec::sn40l(),
            pmu: PmuSpec::sn40l(),
            agcu: AgcuSpec::sn40l(),
            d2d_bandwidth: Bandwidth::from_tb_per_s(1.0),
            droop_penalty: 0.0,
        }
    }

    /// The SN10 (prior generation, 7nm, §IV-E): used for feature ablations.
    /// Counts follow the published Hot Chips material (640 PCUs/PMUs); the
    /// droop penalty reflects the paper's "up to 25%" figure.
    pub fn sn10() -> Self {
        RduChipSpec {
            name: "SN10".to_string(),
            dies: 1,
            pcus: 640,
            pmus: 640,
            tile: TileGeometry {
                rows: 40,
                cols: 32,
                agcus: 32,
            },
            clock: Frequency::from_ghz(1.0),
            pcu: PcuSpec::sn10(),
            pmu: PmuSpec::sn10(),
            agcu: AgcuSpec::sn10(),
            d2d_bandwidth: Bandwidth::ZERO,
            droop_penalty: 0.25,
        }
    }

    /// Peak BF16 throughput of the whole socket, after droop penalty.
    pub fn peak_bf16(&self) -> FlopRate {
        self.pcu
            .peak_bf16(self.clock)
            .scale(self.pcus as f64)
            .scale(1.0 - self.droop_penalty)
    }

    /// Total distributed on-chip SRAM (the first memory tier).
    pub fn total_sram(&self) -> Bytes {
        self.pmu.scratchpad * self.pmus as u64
    }

    /// Aggregate on-chip PMU bandwidth (read + write), the "hundreds of
    /// TBps" figure from §I.
    pub fn aggregate_sram_bandwidth(&self) -> Bandwidth {
        self.pmu
            .peak_bandwidth(self.clock)
            .scale(2.0 * self.pmus as f64)
    }

    /// PCUs per die.
    pub fn pcus_per_die(&self) -> usize {
        self.pcus / self.dies
    }

    /// PMUs per die.
    pub fn pmus_per_die(&self) -> usize {
        self.pmus / self.dies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sn40l_peak_matches_paper() {
        let chip = RduChipSpec::sn40l();
        let tflops = chip.peak_bf16().as_tflops();
        assert!(
            (tflops - 638.0).abs() < 2.0,
            "peak {tflops} TFLOPS should be ~638"
        );
    }

    #[test]
    fn sn40l_sram_is_520_mib() {
        assert_eq!(RduChipSpec::sn40l().total_sram(), Bytes::from_mib(520));
    }

    #[test]
    fn sn40l_unit_counts_match_paper() {
        let chip = RduChipSpec::sn40l();
        assert_eq!(chip.pcus, 1040);
        assert_eq!(chip.pmus, 1040);
        assert_eq!(chip.dies, 2);
        assert_eq!(chip.pcus_per_die(), 520);
    }

    #[test]
    fn sram_bandwidth_is_hundreds_of_tbps() {
        let bw = RduChipSpec::sn40l().aggregate_sram_bandwidth();
        assert!(bw.as_tb_per_s() > 100.0, "got {bw}");
        assert!(bw.as_tb_per_s() < 500.0, "got {bw}");
    }

    #[test]
    fn sn10_droop_penalty_reduces_peak() {
        let sn10 = RduChipSpec::sn10();
        let mut undrooped = sn10.clone();
        undrooped.droop_penalty = 0.0;
        let ratio = sn10.peak_bf16() / undrooped.peak_bf16();
        assert!((ratio - 0.75).abs() < 1e-9);
    }

    #[test]
    fn pmu_bank_capacity_divides_scratchpad() {
        let pmu = PmuSpec::sn40l();
        assert_eq!(pmu.bank_capacity() * pmu.banks as u64, pmu.scratchpad);
    }

    #[test]
    fn tile_positions_cover_units_per_die() {
        let chip = RduChipSpec::sn40l();
        assert!(chip.tile.positions() >= chip.pcus_per_die() + chip.pmus_per_die());
    }
}
