//! Calibration constants: every number in the reproduction that is neither
//! in the paper nor on a datasheet lives here, with its provenance.
//!
//! The macro results (Figures 10–13, Tables I and III) are driven by the
//! specs in [`crate::socket`] / [`crate::gpu`] plus the handful of overhead
//! and efficiency constants below. Keeping them in one struct makes the
//! model auditable and lets benches run sensitivity sweeps.

use crate::units::TimeSecs;
use serde::{Deserialize, Serialize};

/// Who sequences kernel launches (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Orchestration {
    /// The host runtime issues Program Load / Argument Load / Kernel
    /// Execute per kernel: flexible and visible, but each launch pays a
    /// host round trip.
    Software,
    /// A static kernel schedule is offloaded to the AGCU, leaving only a
    /// residual per-kernel tick (§IV-D).
    Hardware,
}

/// Tunable constants of the performance model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Host-side dispatch cost per kernel under *software-orchestrated*
    /// launches (§IV-D): driver call, argument marshalling, and the
    /// host-to-AGCU round trip. Chosen at the microsecond scale typical of
    /// PCIe-attached accelerators; Figure 10's HO-vs-SO decode gains
    /// (1.4x–8x) emerge from this constant against per-kernel execution
    /// times.
    pub so_launch_overhead: TimeSecs,
    /// Residual per-kernel cost under *hardware-orchestrated* launches: the
    /// AGCU walks a static schedule, so only a program-load tick remains.
    pub ho_launch_overhead: TimeSecs,
    /// One-time cost to load a kernel's configuration bitstream onto the
    /// tile (Program Load + Argument Load, §IV-D), amortized across an
    /// execution; charged once per distinct kernel per launch sequence.
    pub program_load: TimeSecs,
    /// Fraction of peak PCU throughput a well-parallelized *compute-bound*
    /// kernel sustains on the RDU (pipeline fill/drain, imperfect tiling).
    pub rdu_compute_efficiency: f64,
    /// Fraction of peak sustained by *unfused* single-operator kernels on
    /// the RDU: each operator still runs parallelized across the tile
    /// (§VI-A "each kernel is still parallelized to run efficiently").
    pub rdu_unfused_compute_efficiency: f64,
    /// Pipeline fill/drain penalty of a fused spatial pipeline, expressed
    /// as equivalent extra tiles of latency per pipeline stage.
    pub pipeline_fill_tiles_per_stage: f64,
    /// Fraction of a TP8 collective (AllReduce) hidden by fusing it into
    /// the consuming pipeline over P2P (§VII); the remainder is exposed.
    pub p2p_overlap: f64,
    /// GPU-side efficiency multiplier for attention/normalization-heavy
    /// unfusable sections during *prefill* (well-optimized handwritten
    /// kernels: FlashAttention etc.).
    pub gpu_prefill_efficiency: f64,
    /// Router execution cost expressed as equivalent decode steps of the
    /// router model (the router generates a single classification token
    /// plus feature pre/post-processing).
    pub router_equiv_decode_steps: f64,
}

impl Calibration {
    /// Per-kernel launch overhead under the given orchestration mode.
    pub fn launch_overhead(&self, orch: Orchestration) -> TimeSecs {
        match orch {
            Orchestration::Software => self.so_launch_overhead,
            Orchestration::Hardware => self.ho_launch_overhead,
        }
    }

    /// The default calibration used for all reported experiments.
    pub fn baseline() -> Self {
        Calibration {
            so_launch_overhead: TimeSecs::from_micros(20.0),
            ho_launch_overhead: TimeSecs::from_micros(0.5),
            program_load: TimeSecs::from_micros(10.0),
            rdu_compute_efficiency: 0.90,
            rdu_unfused_compute_efficiency: 0.85,
            pipeline_fill_tiles_per_stage: 1.0,
            p2p_overlap: 0.8,
            gpu_prefill_efficiency: 0.85,
            router_equiv_decode_steps: 2.0,
        }
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ho_is_much_cheaper_than_so() {
        let c = Calibration::baseline();
        let ratio = c.so_launch_overhead.as_secs() / c.ho_launch_overhead.as_secs();
        assert!(
            ratio > 10.0,
            "HO must eliminate most launch cost, ratio {ratio}"
        );
    }

    #[test]
    fn efficiencies_are_fractions() {
        let c = Calibration::baseline();
        for e in [
            c.rdu_compute_efficiency,
            c.rdu_unfused_compute_efficiency,
            c.p2p_overlap,
            c.gpu_prefill_efficiency,
        ] {
            assert!(e > 0.0 && e <= 1.0);
        }
    }

    #[test]
    fn default_is_baseline() {
        assert_eq!(Calibration::default(), Calibration::baseline());
    }
}
