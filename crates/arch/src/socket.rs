//! Socket-level descriptions: an RDU chip plus its two off-package memory
//! tiers (HBM and DDR) and external interfaces (§IV "Memory Interfaces").

use crate::chip::RduChipSpec;
use crate::units::{Bandwidth, Bytes, FlopRate};
use serde::{Deserialize, Serialize};

/// Co-packaged high-bandwidth memory tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmSpec {
    pub capacity: Bytes,
    /// Peak pin bandwidth.
    pub bandwidth: Bandwidth,
    /// Fraction of peak achievable by a well-tuned streaming kernel. The
    /// paper reports fused decoders saturating "close to 85% of HBM
    /// bandwidth" (§VI-B), which we adopt as the achievable ceiling.
    pub efficiency: f64,
}

impl HbmSpec {
    /// Effective bandwidth after the achievable-fraction derating.
    pub fn effective_bandwidth(&self) -> Bandwidth {
        self.bandwidth.scale(self.efficiency)
    }
}

/// Directly attached DDR DRAM tier (pluggable DIMMs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdrSpec {
    pub capacity: Bytes,
    /// Peak interface bandwidth.
    pub bandwidth: Bandwidth,
    /// Achievable fraction of peak for large sequential DMA. Chosen so that
    /// eight sockets deliver the paper's "over 1 TB/s" aggregate DDR-to-HBM
    /// copy rate (8 x 200 GB/s x 0.65 = 1.04 TB/s).
    pub efficiency: f64,
}

impl DdrSpec {
    /// Effective bandwidth after derating.
    pub fn effective_bandwidth(&self) -> Bandwidth {
        self.bandwidth.scale(self.efficiency)
    }
}

/// One SN40L socket: the chip plus HBM, DDR, host link, and P2P links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocketSpec {
    pub chip: RduChipSpec,
    pub hbm: HbmSpec,
    pub ddr: DdrSpec,
    /// PCIe link to the host CPU.
    pub host_link: Bandwidth,
    /// Peer-to-peer bandwidth to other sockets (per direction).
    pub p2p_bandwidth: Bandwidth,
}

impl SocketSpec {
    /// The SN40L socket (§IV): 64 GiB HBM at ~2 TB/s, up to 1.5 TiB DDR at
    /// over 200 GB/s, PCIe host interface.
    pub fn sn40l() -> Self {
        SocketSpec {
            chip: RduChipSpec::sn40l(),
            hbm: HbmSpec {
                capacity: Bytes::from_gib(64),
                bandwidth: Bandwidth::from_tb_per_s(2.0),
                efficiency: 0.85,
            },
            ddr: DdrSpec {
                capacity: Bytes::from_tib(1) + Bytes::from_gib(512),
                bandwidth: Bandwidth::from_gb_per_s(200.0),
                efficiency: 0.65,
            },
            host_link: Bandwidth::from_gb_per_s(32.0),
            p2p_bandwidth: Bandwidth::from_gb_per_s(100.0),
        }
    }

    /// The SN10 socket (no HBM tier: capacity zero; all model state lives in
    /// DDR). Used in ablations showing why the HBM tier was added (§IV-E).
    pub fn sn10() -> Self {
        SocketSpec {
            chip: RduChipSpec::sn10(),
            hbm: HbmSpec {
                capacity: Bytes::ZERO,
                bandwidth: Bandwidth::ZERO,
                efficiency: 0.0,
            },
            ddr: DdrSpec {
                capacity: Bytes::from_tib(1) + Bytes::from_gib(512),
                bandwidth: Bandwidth::from_gb_per_s(150.0),
                efficiency: 0.65,
            },
            host_link: Bandwidth::from_gb_per_s(16.0),
            p2p_bandwidth: Bandwidth::from_gb_per_s(50.0),
        }
    }

    /// Peak BF16 throughput of the socket.
    pub fn peak_bf16(&self) -> FlopRate {
        self.chip.peak_bf16()
    }

    /// Whether this socket has an HBM tier at all.
    pub fn has_hbm(&self) -> bool {
        self.hbm.capacity > Bytes::ZERO
    }

    /// Machine balance against HBM: FLOPs/byte at which kernels become
    /// compute-bound when streaming from HBM.
    pub fn hbm_balance(&self) -> f64 {
        self.peak_bf16() / self.hbm.bandwidth
    }

    /// The fastest path for bulk weight movement into HBM
    /// (accelerator-local DDR, not the host link).
    pub fn model_switch_bandwidth(&self) -> Bandwidth {
        self.ddr.effective_bandwidth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sn40l_memory_tiers_match_paper() {
        let s = SocketSpec::sn40l();
        assert_eq!(s.hbm.capacity, Bytes::from_gib(64));
        assert!((s.hbm.bandwidth.as_tb_per_s() - 2.0).abs() < 1e-9);
        assert_eq!(s.ddr.capacity, Bytes::from_gib(1536));
        assert!(s.ddr.bandwidth.as_gb_per_s() >= 200.0);
    }

    #[test]
    fn sn40l_balance_is_above_a100() {
        // 638 TFLOPS / 2 TB/s = 319 FLOPs/byte; higher than the A100's 150,
        // which is exactly why fusion (raising intensity) matters more.
        let s = SocketSpec::sn40l();
        assert!(s.hbm_balance() > 300.0 && s.hbm_balance() < 340.0);
    }

    #[test]
    fn switch_bandwidth_aggregates_past_1tbps_on_8_sockets() {
        let s = SocketSpec::sn40l();
        let node_bw = s.model_switch_bandwidth().scale(8.0);
        assert!(
            node_bw.as_tb_per_s() > 1.0,
            "paper: over 1 TB/s, got {node_bw}"
        );
    }

    #[test]
    fn sn10_has_no_hbm() {
        assert!(!SocketSpec::sn10().has_hbm());
        assert!(SocketSpec::sn40l().has_hbm());
    }
}
