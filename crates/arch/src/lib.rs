//! Typed units and hardware descriptions for the SN40L reproduction.
//!
//! This crate is the foundation of the workspace: every other crate talks
//! about time, bytes, bandwidth, and FLOPs through the newtypes defined in
//! [`units`], and instantiates hardware through the spec structs in [`chip`],
//! [`socket`], [`node`], and [`gpu`]. All numbers that cannot be derived from
//! the paper or public datasheets live in [`calib`] with documentation of
//! where they come from.
//!
//! # Example
//!
//! ```
//! use sn_arch::prelude::*;
//!
//! let socket = SocketSpec::sn40l();
//! // One SN40L socket: 638 BF16 TFLOPS, 64 GiB HBM, up to 1.5 TiB DDR.
//! assert!((socket.peak_bf16().as_tflops() - 638.0).abs() < 2.0);
//! assert_eq!(socket.hbm.capacity, Bytes::from_gib(64));
//! let node = NodeSpec::sn40l_node();
//! assert_eq!(node.sockets, 8);
//! ```

pub mod calib;
pub mod chip;
pub mod gpu;
pub mod node;
pub mod roofline;
pub mod socket;
pub mod units;

pub mod prelude {
    //! Convenient glob import of the most commonly used items.
    pub use crate::calib::{Calibration, Orchestration};
    pub use crate::chip::{AgcuSpec, PcuSpec, PmuSpec, RduChipSpec, TileGeometry};
    pub use crate::gpu::{DgxSpec, GpuSpec};
    pub use crate::node::NodeSpec;
    pub use crate::socket::{DdrSpec, HbmSpec, SocketSpec};
    pub use crate::units::{Bandwidth, Bytes, Cycles, FlopRate, Flops, Frequency, TimeSecs};
}

pub use prelude::*;
