//! Node-level descriptions: the 8-socket SN40L Node (§I, §V) and its
//! aggregate memory/compute characteristics under tensor parallelism.

use crate::roofline::Roofline;
use crate::socket::SocketSpec;
use crate::units::{Bandwidth, Bytes, FlopRate};
use serde::{Deserialize, Serialize};

/// A multi-socket RDU node with a host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    pub name: String,
    pub socket: SocketSpec,
    /// Socket count (the SN40L Node has eight).
    pub sockets: usize,
    /// Host DRAM capacity (only relevant as a last-resort spill tier; the
    /// paper's point is that the SN40L never needs it for CoE weights).
    pub host_dram: Bytes,
}

impl NodeSpec {
    /// The 8-socket SN40L Node used for all macro experiments.
    pub fn sn40l_node() -> Self {
        NodeSpec {
            name: "SN40L Node".to_string(),
            socket: SocketSpec::sn40l(),
            sockets: 8,
            host_dram: Bytes::from_tib(2),
        }
    }

    /// Aggregate peak BF16 compute across sockets (TP8 treats the node as
    /// one large accelerator).
    pub fn peak_bf16(&self) -> FlopRate {
        self.socket.peak_bf16().scale(self.sockets as f64)
    }

    /// Aggregate HBM capacity.
    pub fn hbm_capacity(&self) -> Bytes {
        self.socket.hbm.capacity * self.sockets as u64
    }

    /// Aggregate peak HBM bandwidth.
    pub fn hbm_bandwidth(&self) -> Bandwidth {
        self.socket.hbm.bandwidth.scale(self.sockets as f64)
    }

    /// Aggregate effective HBM bandwidth (after achievable-fraction derate).
    pub fn effective_hbm_bandwidth(&self) -> Bandwidth {
        self.socket
            .hbm
            .effective_bandwidth()
            .scale(self.sockets as f64)
    }

    /// Aggregate DDR capacity — the tier that holds the whole CoE.
    pub fn ddr_capacity(&self) -> Bytes {
        self.socket.ddr.capacity * self.sockets as u64
    }

    /// Aggregate effective DDR-to-HBM model-switch bandwidth. For the SN40L
    /// Node this exceeds 1 TB/s (§VI-B); a TP8-sharded expert copies its
    /// shard on every socket concurrently.
    pub fn model_switch_bandwidth(&self) -> Bandwidth {
        self.socket
            .model_switch_bandwidth()
            .scale(self.sockets as f64)
    }

    /// The node's HBM roofline: aggregate peak BF16 compute over aggregate
    /// *effective* HBM bandwidth — the ceiling/slope pair kernels streaming
    /// weights from HBM are measured against (§III-A).
    pub fn roofline(&self) -> Roofline {
        Roofline::new(self.peak_bf16(), self.effective_hbm_bandwidth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_aggregates_are_consistent() {
        let n = NodeSpec::sn40l_node();
        assert_eq!(n.hbm_capacity(), Bytes::from_gib(512));
        assert_eq!(n.ddr_capacity(), Bytes::from_tib(12));
        assert!((n.peak_bf16().as_tflops() - 8.0 * 638.0).abs() < 20.0);
    }

    #[test]
    fn node_switch_bandwidth_exceeds_1tbps() {
        let n = NodeSpec::sn40l_node();
        assert!(n.model_switch_bandwidth().as_tb_per_s() > 1.0);
    }

    #[test]
    fn node_roofline_uses_effective_hbm_bandwidth() {
        let n = NodeSpec::sn40l_node();
        let r = n.roofline();
        assert_eq!(r.peak, n.peak_bf16());
        assert_eq!(r.bandwidth, n.effective_hbm_bandwidth());
        // Derating raises the balance point above the peak-bandwidth one:
        // 638/2.0*... per socket ≈ 319/0.85 ≈ 375 ops/byte.
        assert!(r.balance() > 350.0 && r.balance() < 400.0);
    }

    #[test]
    fn node_ddr_holds_850_experts() {
        // §VI-B: a single SN40L Node can hold and serve a CoE of up to 850
        // Llama2-7B experts (13.48 GB each in BF16).
        let n = NodeSpec::sn40l_node();
        let expert = Bytes::from_gb(13.48);
        let fit = n.ddr_capacity().as_f64() / expert.as_f64();
        assert!(fit >= 850.0, "fits {fit} experts");
    }
}
