//! Physical-quantity newtypes used throughout the workspace.
//!
//! These types exist so that a bandwidth can never be added to a capacity and
//! a FLOP count can never be confused with a FLOP rate. Arithmetic between
//! them produces the physically meaningful result: `Bytes / Bandwidth`
//! yields [`TimeSecs`], `Flops / FlopRate` yields [`TimeSecs`], and
//! `Cycles / Frequency` yields [`TimeSecs`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A byte count (capacity or traffic volume).
///
/// ```
/// use sn_arch::units::Bytes;
/// let hbm = Bytes::from_gib(64);
/// assert_eq!(hbm.as_u64(), 64 * 1024 * 1024 * 1024);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count from a raw number of bytes.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a byte count from binary kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Creates a byte count from binary mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Creates a byte count from binary gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib * 1024 * 1024 * 1024)
    }

    /// Creates a byte count from binary tebibytes.
    pub const fn from_tib(tib: u64) -> Self {
        Bytes(tib * 1024 * 1024 * 1024 * 1024)
    }

    /// Creates a byte count from decimal gigabytes (used for datasheet
    /// numbers quoted in GB).
    pub fn from_gb(gb: f64) -> Self {
        Bytes((gb * 1e9) as u64)
    }

    pub const fn as_u64(self) -> u64 {
        self.0
    }

    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    pub fn as_gb(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; useful for "remaining capacity" computations.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of two byte counts.
    pub fn min(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.min(rhs.0))
    }

    /// Returns the larger of two byte counts.
    pub fn max(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.max(rhs.0))
    }

    /// Scales by a dimensionless factor, rounding to the nearest byte.
    pub fn scale(self, factor: f64) -> Bytes {
        Bytes((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}

impl Div<Bandwidth> for Bytes {
    type Output = TimeSecs;
    fn div(self, rhs: Bandwidth) -> TimeSecs {
        TimeSecs(self.0 as f64 / rhs.0)
    }
}

impl Div<Bytes> for Bytes {
    /// Dimensionless ratio of two byte counts.
    type Output = f64;
    fn div(self, rhs: Bytes) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1024.0 * 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} TiB", b / (1024.0f64.powi(4)))
        } else if b >= 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} GiB", b / (1024.0f64.powi(3)))
        } else if b >= 1024.0 * 1024.0 {
            write!(f, "{:.2} MiB", b / (1024.0 * 1024.0))
        } else if b >= 1024.0 {
            write!(f, "{:.2} KiB", b / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A data-transfer rate in bytes per second.
///
/// ```
/// use sn_arch::units::{Bandwidth, Bytes};
/// let hbm = Bandwidth::from_tb_per_s(2.0);
/// let t = Bytes::from_gb(13.5) / hbm;
/// assert!((t.as_secs() - 0.00675).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Creates a bandwidth from raw bytes per second.
    pub const fn from_bytes_per_s(bps: f64) -> Self {
        Bandwidth(bps)
    }

    /// Creates a bandwidth from decimal gigabytes per second.
    pub fn from_gb_per_s(gbps: f64) -> Self {
        Bandwidth(gbps * 1e9)
    }

    /// Creates a bandwidth from decimal terabytes per second.
    pub fn from_tb_per_s(tbps: f64) -> Self {
        Bandwidth(tbps * 1e12)
    }

    pub fn as_bytes_per_s(self) -> f64 {
        self.0
    }

    pub fn as_gb_per_s(self) -> f64 {
        self.0 / 1e9
    }

    pub fn as_tb_per_s(self) -> f64 {
        self.0 / 1e12
    }

    /// Scales by a dimensionless efficiency factor in `[0, 1]` (or any
    /// positive factor for aggregation).
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth(self.0 * factor)
    }

    /// Returns the smaller of two bandwidths (the bottleneck of a chain).
    pub fn min(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(rhs.0))
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 - rhs.0)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Mul<TimeSecs> for Bandwidth {
    type Output = Bytes;
    fn mul(self, rhs: TimeSecs) -> Bytes {
        Bytes((self.0 * rhs.0).round() as u64)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}

impl Div<Bandwidth> for Bandwidth {
    type Output = f64;
    fn div(self, rhs: Bandwidth) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e12 {
            write!(f, "{:.2} TB/s", self.0 / 1e12)
        } else if self.0 >= 1e9 {
            write!(f, "{:.2} GB/s", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.2} MB/s", self.0 / 1e6)
        } else {
            write!(f, "{:.0} B/s", self.0)
        }
    }
}

/// Simulated wall-clock time in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct TimeSecs(f64);

impl TimeSecs {
    pub const ZERO: TimeSecs = TimeSecs(0.0);

    pub const fn from_secs(s: f64) -> Self {
        TimeSecs(s)
    }

    pub fn from_millis(ms: f64) -> Self {
        TimeSecs(ms * 1e-3)
    }

    pub fn from_micros(us: f64) -> Self {
        TimeSecs(us * 1e-6)
    }

    pub fn from_nanos(ns: f64) -> Self {
        TimeSecs(ns * 1e-9)
    }

    pub fn as_secs(self) -> f64 {
        self.0
    }

    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the larger of two times (the critical path of parallel work).
    pub fn max(self, rhs: TimeSecs) -> TimeSecs {
        TimeSecs(self.0.max(rhs.0))
    }

    /// Returns the smaller of two times.
    pub fn min(self, rhs: TimeSecs) -> TimeSecs {
        TimeSecs(self.0.min(rhs.0))
    }

    /// True when this duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for TimeSecs {
    type Output = TimeSecs;
    fn add(self, rhs: TimeSecs) -> TimeSecs {
        TimeSecs(self.0 + rhs.0)
    }
}

impl AddAssign for TimeSecs {
    fn add_assign(&mut self, rhs: TimeSecs) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeSecs {
    type Output = TimeSecs;
    fn sub(self, rhs: TimeSecs) -> TimeSecs {
        TimeSecs(self.0 - rhs.0)
    }
}

impl Mul<f64> for TimeSecs {
    type Output = TimeSecs;
    fn mul(self, rhs: f64) -> TimeSecs {
        TimeSecs(self.0 * rhs)
    }
}

impl Div<f64> for TimeSecs {
    type Output = TimeSecs;
    fn div(self, rhs: f64) -> TimeSecs {
        TimeSecs(self.0 / rhs)
    }
}

impl Div<TimeSecs> for TimeSecs {
    /// Dimensionless ratio of two times (a speedup).
    type Output = f64;
    fn div(self, rhs: TimeSecs) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for TimeSecs {
    fn sum<I: Iterator<Item = TimeSecs>>(iter: I) -> TimeSecs {
        iter.fold(TimeSecs::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for TimeSecs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3} s")
        } else if s >= 1e-3 {
            write!(f, "{:.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3} us", s * 1e6)
        } else {
            write!(f, "{:.1} ns", s * 1e9)
        }
    }
}

/// A count of floating-point operations (work, not rate).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Flops(f64);

impl Flops {
    pub const ZERO: Flops = Flops(0.0);

    pub const fn new(flops: f64) -> Self {
        Flops(flops)
    }

    pub fn from_gflops(g: f64) -> Self {
        Flops(g * 1e9)
    }

    pub fn from_tflops(t: f64) -> Self {
        Flops(t * 1e12)
    }

    pub fn as_f64(self) -> f64 {
        self.0
    }

    pub fn as_gflops(self) -> f64 {
        self.0 / 1e9
    }

    pub fn as_tflops(self) -> f64 {
        self.0 / 1e12
    }

    /// Operational intensity in FLOPs per byte against the given traffic.
    ///
    /// Returns `f64::INFINITY` when `traffic` is zero bytes.
    pub fn intensity(self, traffic: Bytes) -> f64 {
        if traffic == Bytes::ZERO {
            f64::INFINITY
        } else {
            self.0 / traffic.as_f64()
        }
    }
}

impl Add for Flops {
    type Output = Flops;
    fn add(self, rhs: Flops) -> Flops {
        Flops(self.0 + rhs.0)
    }
}

impl AddAssign for Flops {
    fn add_assign(&mut self, rhs: Flops) {
        self.0 += rhs.0;
    }
}

impl Sub for Flops {
    type Output = Flops;
    fn sub(self, rhs: Flops) -> Flops {
        Flops(self.0 - rhs.0)
    }
}

impl Mul<f64> for Flops {
    type Output = Flops;
    fn mul(self, rhs: f64) -> Flops {
        Flops(self.0 * rhs)
    }
}

impl Div<FlopRate> for Flops {
    type Output = TimeSecs;
    fn div(self, rhs: FlopRate) -> TimeSecs {
        TimeSecs(self.0 / rhs.0)
    }
}

impl Div<Flops> for Flops {
    type Output = f64;
    fn div(self, rhs: Flops) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Flops {
    fn sum<I: Iterator<Item = Flops>>(iter: I) -> Flops {
        iter.fold(Flops::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Flops {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e12 {
            write!(f, "{:.2} TFLOPs", self.0 / 1e12)
        } else if self.0 >= 1e9 {
            write!(f, "{:.2} GFLOPs", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.2} MFLOPs", self.0 / 1e6)
        } else {
            write!(f, "{:.0} FLOPs", self.0)
        }
    }
}

/// A floating-point throughput in FLOPs per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct FlopRate(f64);

impl FlopRate {
    pub const ZERO: FlopRate = FlopRate(0.0);

    pub const fn from_flops_per_s(f: f64) -> Self {
        FlopRate(f)
    }

    pub fn from_tflops(t: f64) -> Self {
        FlopRate(t * 1e12)
    }

    pub fn as_flops_per_s(self) -> f64 {
        self.0
    }

    pub fn as_tflops(self) -> f64 {
        self.0 / 1e12
    }

    pub fn scale(self, factor: f64) -> FlopRate {
        FlopRate(self.0 * factor)
    }

    pub fn min(self, rhs: FlopRate) -> FlopRate {
        FlopRate(self.0.min(rhs.0))
    }
}

impl Add for FlopRate {
    type Output = FlopRate;
    fn add(self, rhs: FlopRate) -> FlopRate {
        FlopRate(self.0 + rhs.0)
    }
}

impl Mul<f64> for FlopRate {
    type Output = FlopRate;
    fn mul(self, rhs: f64) -> FlopRate {
        FlopRate(self.0 * rhs)
    }
}

impl Div<f64> for FlopRate {
    type Output = FlopRate;
    fn div(self, rhs: f64) -> FlopRate {
        FlopRate(self.0 / rhs)
    }
}

impl Div<FlopRate> for FlopRate {
    type Output = f64;
    fn div(self, rhs: FlopRate) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<Bandwidth> for FlopRate {
    /// Machine balance: the operational intensity (FLOPs/byte) at which a
    /// kernel transitions from memory-bound to compute-bound.
    type Output = f64;
    fn div(self, rhs: Bandwidth) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for FlopRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e12 {
            write!(f, "{:.1} TFLOPS", self.0 / 1e12)
        } else {
            write!(f, "{:.1} GFLOPS", self.0 / 1e9)
        }
    }
}

/// A clock-cycle count.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    pub const ZERO: Cycles = Cycles(0);

    pub const fn new(c: u64) -> Self {
        Cycles(c)
    }

    pub const fn as_u64(self) -> u64 {
        self.0
    }

    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<Frequency> for Cycles {
    type Output = TimeSecs;
    fn div(self, rhs: Frequency) -> TimeSecs {
        TimeSecs(self.0 as f64 / rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A clock frequency in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    pub const fn from_hz(hz: f64) -> Self {
        Frequency(hz)
    }

    pub fn from_ghz(ghz: f64) -> Self {
        Frequency(ghz * 1e9)
    }

    pub fn as_hz(self) -> f64 {
        self.0
    }

    pub fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// Converts a duration to a (rounded-up) cycle count at this frequency.
    pub fn cycles_in(self, t: TimeSecs) -> Cycles {
        Cycles((t.as_secs() * self.0).ceil() as u64)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GHz", self.0 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors_agree() {
        assert_eq!(Bytes::from_kib(1), Bytes::new(1024));
        assert_eq!(Bytes::from_mib(1), Bytes::from_kib(1024));
        assert_eq!(Bytes::from_gib(1), Bytes::from_mib(1024));
        assert_eq!(Bytes::from_tib(1), Bytes::from_gib(1024));
    }

    #[test]
    fn bytes_display_picks_unit() {
        assert_eq!(Bytes::new(512).to_string(), "512 B");
        assert_eq!(Bytes::from_kib(2).to_string(), "2.00 KiB");
        assert_eq!(Bytes::from_gib(64).to_string(), "64.00 GiB");
        assert_eq!(Bytes::from_tib(3).to_string(), "3.00 TiB");
    }

    #[test]
    fn transfer_time_is_bytes_over_bandwidth() {
        let t = Bytes::from_gb(32.0) / Bandwidth::from_gb_per_s(32.0);
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compute_time_is_flops_over_rate() {
        let t = Flops::from_tflops(638.0) / FlopRate::from_tflops(638.0);
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn machine_balance_matches_paper_a100_example() {
        // The paper: A100 has TFLOPS/TBps ~ 300/2 = 150.
        let balance = FlopRate::from_tflops(300.0) / Bandwidth::from_tb_per_s(2.0);
        assert!((balance - 150.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_of_zero_traffic_is_infinite() {
        assert!(Flops::new(10.0).intensity(Bytes::ZERO).is_infinite());
    }

    #[test]
    fn cycles_to_time_roundtrip() {
        let f = Frequency::from_ghz(1.2);
        let t = Cycles::new(1_200_000_000) / f;
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
        assert_eq!(
            f.cycles_in(TimeSecs::from_secs(1.0)),
            Cycles::new(1_200_000_000)
        );
    }

    #[test]
    fn time_display_scales() {
        assert_eq!(TimeSecs::from_secs(2.5).to_string(), "2.500 s");
        assert_eq!(TimeSecs::from_millis(1.5).to_string(), "1.500 ms");
        assert_eq!(TimeSecs::from_micros(3.0).to_string(), "3.000 us");
        assert_eq!(TimeSecs::from_nanos(12.0).to_string(), "12.0 ns");
    }

    #[test]
    fn bandwidth_times_time_is_bytes() {
        let b = Bandwidth::from_gb_per_s(100.0) * TimeSecs::from_secs(2.0);
        assert_eq!(b, Bytes::from_gb(200.0));
    }

    #[test]
    fn sums_accumulate() {
        let total: Bytes = (0..4).map(|_| Bytes::from_mib(1)).sum();
        assert_eq!(total, Bytes::from_mib(4));
        let t: TimeSecs = (0..4).map(|_| TimeSecs::from_millis(1.0)).sum();
        assert!((t.as_millis() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_time_ratio() {
        let speedup = TimeSecs::from_secs(6.6) / TimeSecs::from_secs(1.0);
        assert!((speedup - 6.6).abs() < 1e-12);
    }
}
