//! Address translation (§IV-D: the AGCU "provides an address translation
//! layer for memory management").
//!
//! Compiled kernels use device *virtual* addresses; the CoE runtime
//! relocates a model's segments every activation (a fresh HBM block each
//! time), so the AGCUs translate virtual ranges to the currently mapped
//! physical regions. This module implements that segment table with
//! overlap validation and fault reporting.

use crate::alloc::Region;
use serde::{Deserialize, Serialize};
use sn_arch::Bytes;
use std::error::Error;
use std::fmt;

/// A virtual address in a model's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VirtAddr(pub u64);

/// A translated physical location: tier plus byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysAddr {
    pub tier: crate::tier::MemoryTier,
    pub offset: u64,
}

/// Translation faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// No segment maps this virtual address.
    Unmapped(VirtAddr),
    /// A new segment overlaps an existing mapping.
    Overlap { base: VirtAddr, size: Bytes },
    /// An access crosses its segment's end.
    OutOfBounds { addr: VirtAddr, len: Bytes },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Unmapped(a) => write!(f, "unmapped virtual address {:#x}", a.0),
            TranslateError::Overlap { base, size } => {
                write!(
                    f,
                    "segment at {:#x}+{size} overlaps an existing mapping",
                    base.0
                )
            }
            TranslateError::OutOfBounds { addr, len } => {
                write!(f, "access {:#x}+{len} crosses its segment boundary", addr.0)
            }
        }
    }
}

impl Error for TranslateError {}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Segment {
    base: u64,
    size: u64,
    region: Region,
}

/// A per-model segment table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SegmentTable {
    /// Sorted by base, non-overlapping.
    segments: Vec<Segment>,
}

impl SegmentTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Maps `[base, base + region.size)` onto a physical region.
    ///
    /// # Errors
    ///
    /// [`TranslateError::Overlap`] if the virtual range intersects an
    /// existing segment.
    pub fn map(&mut self, base: VirtAddr, region: Region) -> Result<(), TranslateError> {
        let size = region.size.as_u64();
        let end = base.0 + size;
        let pos = self.segments.partition_point(|s| s.base < base.0);
        let clash = (pos > 0 && self.segments[pos - 1].base + self.segments[pos - 1].size > base.0)
            || (pos < self.segments.len() && self.segments[pos].base < end);
        if clash {
            return Err(TranslateError::Overlap {
                base,
                size: region.size,
            });
        }
        self.segments.insert(
            pos,
            Segment {
                base: base.0,
                size,
                region,
            },
        );
        Ok(())
    }

    /// Unmaps the segment at `base`; returns its region for freeing.
    ///
    /// # Errors
    ///
    /// [`TranslateError::Unmapped`] if no segment starts exactly there.
    pub fn unmap(&mut self, base: VirtAddr) -> Result<Region, TranslateError> {
        match self.segments.iter().position(|s| s.base == base.0) {
            Some(i) => Ok(self.segments.remove(i).region),
            None => Err(TranslateError::Unmapped(base)),
        }
    }

    /// Translates one virtual address.
    ///
    /// # Errors
    ///
    /// [`TranslateError::Unmapped`] when nothing maps the address.
    pub fn translate(&self, addr: VirtAddr) -> Result<PhysAddr, TranslateError> {
        let pos = self.segments.partition_point(|s| s.base <= addr.0);
        if pos == 0 {
            return Err(TranslateError::Unmapped(addr));
        }
        let s = &self.segments[pos - 1];
        if addr.0 >= s.base + s.size {
            return Err(TranslateError::Unmapped(addr));
        }
        Ok(PhysAddr {
            tier: s.region.tier,
            offset: s.region.offset + (addr.0 - s.base),
        })
    }

    /// Translates a contiguous access, enforcing that it stays inside one
    /// segment (AGCU descriptors never straddle segments).
    ///
    /// # Errors
    ///
    /// [`TranslateError::Unmapped`] or [`TranslateError::OutOfBounds`].
    pub fn translate_range(&self, addr: VirtAddr, len: Bytes) -> Result<PhysAddr, TranslateError> {
        let p = self.translate(addr)?;
        let pos = self.segments.partition_point(|s| s.base <= addr.0);
        let s = &self.segments[pos - 1];
        if addr.0 + len.as_u64() > s.base + s.size {
            return Err(TranslateError::OutOfBounds { addr, len });
        }
        Ok(p)
    }

    /// Remaps an existing segment onto a new physical region of the same
    /// size — what activation does when a model's HBM block moves.
    ///
    /// # Errors
    ///
    /// [`TranslateError::Unmapped`] for a foreign base;
    /// [`TranslateError::OutOfBounds`] for a size mismatch.
    pub fn remap(&mut self, base: VirtAddr, region: Region) -> Result<(), TranslateError> {
        let seg = self
            .segments
            .iter_mut()
            .find(|s| s.base == base.0)
            .ok_or(TranslateError::Unmapped(base))?;
        if seg.size != region.size.as_u64() {
            return Err(TranslateError::OutOfBounds {
                addr: base,
                len: region.size,
            });
        }
        seg.region = region;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::MemoryTier;
    use proptest::prelude::*;

    fn region(tier: MemoryTier, offset: u64, size: u64) -> Region {
        Region {
            tier,
            offset,
            size: Bytes::new(size),
        }
    }

    #[test]
    fn translate_offsets_within_segment() {
        let mut t = SegmentTable::new();
        t.map(VirtAddr(0x1000), region(MemoryTier::Hbm, 0x4_0000, 0x1000))
            .unwrap();
        let p = t.translate(VirtAddr(0x1234)).unwrap();
        assert_eq!(p.tier, MemoryTier::Hbm);
        assert_eq!(p.offset, 0x4_0234);
    }

    #[test]
    fn unmapped_addresses_fault() {
        let mut t = SegmentTable::new();
        t.map(VirtAddr(0x1000), region(MemoryTier::Hbm, 0, 0x1000))
            .unwrap();
        assert!(matches!(
            t.translate(VirtAddr(0xfff)),
            Err(TranslateError::Unmapped(_))
        ));
        assert!(matches!(
            t.translate(VirtAddr(0x2000)),
            Err(TranslateError::Unmapped(_))
        ));
    }

    #[test]
    fn overlapping_maps_rejected() {
        let mut t = SegmentTable::new();
        t.map(VirtAddr(0x1000), region(MemoryTier::Hbm, 0, 0x1000))
            .unwrap();
        assert!(t
            .map(VirtAddr(0x1800), region(MemoryTier::Ddr, 0, 0x1000))
            .is_err());
        assert!(t
            .map(VirtAddr(0x800), region(MemoryTier::Ddr, 0, 0x900))
            .is_err());
        // Adjacent is fine.
        t.map(VirtAddr(0x2000), region(MemoryTier::Ddr, 0, 0x1000))
            .unwrap();
    }

    #[test]
    fn ranged_access_cannot_straddle() {
        let mut t = SegmentTable::new();
        t.map(VirtAddr(0), region(MemoryTier::Hbm, 0, 0x100))
            .unwrap();
        t.map(VirtAddr(0x100), region(MemoryTier::Ddr, 0, 0x100))
            .unwrap();
        assert!(t.translate_range(VirtAddr(0x80), Bytes::new(0x80)).is_ok());
        assert!(matches!(
            t.translate_range(VirtAddr(0x80), Bytes::new(0x81)),
            Err(TranslateError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn remap_models_hbm_activation() {
        // A model's weights live at a fixed virtual base; each activation
        // lands them in a different HBM block.
        let mut t = SegmentTable::new();
        let base = VirtAddr(0x10_0000);
        t.map(base, region(MemoryTier::Ddr, 0x999, 0x4000)).unwrap();
        assert_eq!(t.translate(base).unwrap().tier, MemoryTier::Ddr);
        t.remap(base, region(MemoryTier::Hbm, 0x7000, 0x4000))
            .unwrap();
        let p = t.translate(VirtAddr(0x10_0010)).unwrap();
        assert_eq!(p.tier, MemoryTier::Hbm);
        assert_eq!(p.offset, 0x7010);
        // Size mismatches are faults, not silent truncation.
        assert!(t.remap(base, region(MemoryTier::Hbm, 0, 0x2000)).is_err());
    }

    #[test]
    fn unmap_returns_the_region() {
        let mut t = SegmentTable::new();
        let r = region(MemoryTier::Hbm, 0x40, 0x10);
        t.map(VirtAddr(0x100), r).unwrap();
        assert_eq!(t.unmap(VirtAddr(0x100)).unwrap(), r);
        assert!(t.is_empty());
        assert!(t.unmap(VirtAddr(0x100)).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Round trip: every address inside a mapped segment translates to
        /// the region's offset plus the in-segment displacement, and every
        /// address outside faults.
        #[test]
        fn translation_is_exact(
            bases in proptest::collection::btree_set(0u64..1000, 1..6),
            size in 1u64..40,
        ) {
            let mut t = SegmentTable::new();
            let mut mapped = Vec::new();
            for (i, &b) in bases.iter().enumerate() {
                let va = VirtAddr(b * 100);
                let r = region(MemoryTier::Hbm, 10_000 * (i as u64 + 1), size);
                t.map(va, r).unwrap();
                mapped.push((va, r));
            }
            for (va, r) in &mapped {
                for d in [0, size / 2, size - 1] {
                    let p = t.translate(VirtAddr(va.0 + d)).unwrap();
                    prop_assert_eq!(p.offset, r.offset + d);
                }
                prop_assert!(t.translate(VirtAddr(va.0 + size)).is_err() ||
                    mapped.iter().any(|(o, _)| o.0 == va.0 + size));
            }
        }
    }
}
