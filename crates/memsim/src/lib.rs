//! Three-tier software-managed memory simulation (§IV "Memory Interfaces",
//! §V "Software Support").
//!
//! The SN40L exposes two software-managed off-chip address spaces — HBM and
//! DDR — below the distributed PMU SRAM. This crate provides:
//!
//! - [`tier`]: tier identities and specs;
//! - [`alloc`]: a first-fit region allocator with coalescing, used both by
//!   the compiler's static allocation and the CoE runtime's dynamic model
//!   blocks;
//! - [`device`]: per-socket device memory combining the tiers;
//! - [`dma`]: timed transfers between tiers with a traffic ledger.
//!
//! # Example
//!
//! ```
//! use sn_memsim::prelude::*;
//! use sn_arch::prelude::*;
//!
//! let socket = SocketSpec::sn40l();
//! let mut mem = DeviceMemory::new(&socket);
//! let expert = Bytes::from_gb(13.48);
//! let region = mem.alloc(MemoryTier::Hbm, expert).unwrap();
//! assert_eq!(region.size, expert);
//! mem.free(region).unwrap();
//! ```

pub mod alloc;
pub mod arbiter;
pub mod device;
pub mod dma;
pub mod tier;
pub mod translate;

pub mod prelude {
    //! Convenient glob import of the most commonly used items.
    pub use crate::alloc::{AllocError, Region, RegionAllocator};
    pub use crate::arbiter::{BandwidthArbiter, TransferReq};
    pub use crate::device::DeviceMemory;
    pub use crate::dma::{DmaEngine, DmaFault, Route, TrafficLedger};
    pub use crate::tier::MemoryTier;
    pub use crate::translate::{PhysAddr, SegmentTable, TranslateError, VirtAddr};
}

pub use prelude::*;
