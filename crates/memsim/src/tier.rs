//! Memory-tier identities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One level of the memory system. Ordered from fastest/smallest to
/// slowest/largest — `Sram < Hbm < Ddr < HostDram` — so tiers can be
/// compared by "distance from the compute".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemoryTier {
    /// Distributed on-chip PMU scratchpads (tier 1, 520 MiB on SN40L).
    Sram,
    /// Co-packaged high-bandwidth memory (tier 2, 64 GiB per socket).
    Hbm,
    /// Directly attached DDR DIMMs (tier 3, up to 1.5 TiB per socket).
    Ddr,
    /// Host CPU memory across PCIe — a last resort the SN40L avoids for
    /// model weights, but where GPU baselines must spill (§III-B).
    HostDram,
}

impl MemoryTier {
    /// All tiers, fastest first.
    pub const ALL: [MemoryTier; 4] = [
        MemoryTier::Sram,
        MemoryTier::Hbm,
        MemoryTier::Ddr,
        MemoryTier::HostDram,
    ];

    /// The next-larger (slower) tier, if any.
    pub fn spill_target(self) -> Option<MemoryTier> {
        match self {
            MemoryTier::Sram => Some(MemoryTier::Hbm),
            MemoryTier::Hbm => Some(MemoryTier::Ddr),
            MemoryTier::Ddr => Some(MemoryTier::HostDram),
            MemoryTier::HostDram => None,
        }
    }

    /// Whether this tier is on the accelerator side of the PCIe boundary.
    pub fn is_device_local(self) -> bool {
        !matches!(self, MemoryTier::HostDram)
    }
}

impl fmt::Display for MemoryTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryTier::Sram => "SRAM",
            MemoryTier::Hbm => "HBM",
            MemoryTier::Ddr => "DDR",
            MemoryTier::HostDram => "HostDRAM",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_order_by_distance() {
        assert!(MemoryTier::Sram < MemoryTier::Hbm);
        assert!(MemoryTier::Hbm < MemoryTier::Ddr);
        assert!(MemoryTier::Ddr < MemoryTier::HostDram);
    }

    #[test]
    fn spill_chain_terminates() {
        let mut t = MemoryTier::Sram;
        let mut hops = 0;
        while let Some(next) = t.spill_target() {
            t = next;
            hops += 1;
        }
        assert_eq!(hops, 3);
        assert_eq!(t, MemoryTier::HostDram);
    }

    #[test]
    fn device_locality() {
        assert!(MemoryTier::Ddr.is_device_local());
        assert!(!MemoryTier::HostDram.is_device_local());
    }
}
