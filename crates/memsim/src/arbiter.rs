//! Fair-share bandwidth arbitration for overlapping transfers.
//!
//! The AGCUs multiplex many concurrent DMA streams over one memory
//! interface (§IV-D); when streams overlap in time they share the
//! interface bandwidth. This module computes exact finish times under
//! equal-share arbitration using piecewise-constant progress simulation —
//! the building block for modeling batched expert activations and
//! concurrent spill traffic.

use serde::{Deserialize, Serialize};
use sn_arch::{Bandwidth, Bytes, TimeSecs};

/// One transfer request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferReq {
    /// When the transfer becomes ready.
    pub start: TimeSecs,
    pub bytes: Bytes,
}

impl TransferReq {
    pub fn at(start: TimeSecs, bytes: Bytes) -> Self {
        TransferReq { start, bytes }
    }

    /// Ready immediately.
    pub fn now(bytes: Bytes) -> Self {
        TransferReq {
            start: TimeSecs::ZERO,
            bytes,
        }
    }
}

/// Equal-share arbitration over a fixed-capacity link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthArbiter {
    capacity: Bandwidth,
}

impl BandwidthArbiter {
    /// Creates an arbiter over the given capacity.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: Bandwidth) -> Self {
        assert!(
            capacity.as_bytes_per_s() > 0.0,
            "arbiter needs positive capacity"
        );
        BandwidthArbiter { capacity }
    }

    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// Computes the finish time of every request under equal sharing:
    /// at any instant, each unfinished, started transfer receives
    /// `capacity / active` bandwidth.
    ///
    /// Returns finish times index-aligned with `requests`.
    pub fn schedule(&self, requests: &[TransferReq]) -> Vec<TimeSecs> {
        let n = requests.len();
        let mut remaining: Vec<f64> = requests.iter().map(|r| r.bytes.as_f64()).collect();
        let mut finish = vec![TimeSecs::ZERO; n];
        let mut done = vec![false; n];
        // Zero-byte transfers finish at their start.
        for i in 0..n {
            if remaining[i] == 0.0 {
                done[i] = true;
                finish[i] = requests[i].start;
            }
        }
        let cap = self.capacity.as_bytes_per_s();
        let mut t = 0.0f64;
        loop {
            let active: Vec<usize> = (0..n)
                .filter(|&i| !done[i] && requests[i].start.as_secs() <= t + 1e-15)
                .collect();
            if active.is_empty() {
                // Jump to the next arrival, or stop if none.
                match (0..n)
                    .filter(|&i| !done[i])
                    .map(|i| requests[i].start.as_secs())
                    .fold(None::<f64>, |m, s| Some(m.map_or(s, |m| m.min(s))))
                {
                    Some(next) => {
                        t = next;
                        continue;
                    }
                    None => break,
                }
            }
            let share = cap / active.len() as f64;
            // The interval ends at the earliest of: an active transfer
            // finishing, or a new transfer arriving.
            let finish_dt = active
                .iter()
                .map(|&i| remaining[i] / share)
                .fold(f64::INFINITY, f64::min);
            let arrival_dt = (0..n)
                .filter(|&i| !done[i] && requests[i].start.as_secs() > t + 1e-15)
                .map(|i| requests[i].start.as_secs() - t)
                .fold(f64::INFINITY, f64::min);
            let dt = finish_dt.min(arrival_dt);
            assert!(dt.is_finite() && dt >= 0.0, "arbiter made no progress");
            for &i in &active {
                remaining[i] -= share * dt;
                if remaining[i] <= 1e-9 {
                    remaining[i] = 0.0;
                    done[i] = true;
                    finish[i] = TimeSecs::from_secs(t + dt);
                }
            }
            t += dt;
        }
        finish
    }

    /// The makespan: when the last transfer finishes.
    pub fn makespan(&self, requests: &[TransferReq]) -> TimeSecs {
        self.schedule(requests)
            .into_iter()
            .fold(TimeSecs::ZERO, TimeSecs::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gbps(x: f64) -> Bandwidth {
        Bandwidth::from_gb_per_s(x)
    }

    #[test]
    fn single_transfer_is_bytes_over_bandwidth() {
        let a = BandwidthArbiter::new(gbps(100.0));
        let f = a.schedule(&[TransferReq::now(Bytes::from_gb(1.0))]);
        assert!((f[0].as_secs() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn two_equal_overlapping_transfers_share_fairly() {
        let a = BandwidthArbiter::new(gbps(100.0));
        let r = TransferReq::now(Bytes::from_gb(1.0));
        let f = a.schedule(&[r, r]);
        for t in f {
            assert!(
                (t.as_secs() - 0.02).abs() < 1e-9,
                "both finish at 2x solo time"
            );
        }
    }

    #[test]
    fn short_transfer_finishes_first_then_long_speeds_up() {
        let a = BandwidthArbiter::new(gbps(100.0));
        let f = a.schedule(&[
            TransferReq::now(Bytes::from_gb(1.0)),
            TransferReq::now(Bytes::from_gb(3.0)),
        ]);
        // Shared until the small one finishes at 20 ms (1 GB at 50 GB/s);
        // the big one then has 2 GB left at full rate: 20 + 20 = 40 ms.
        assert!((f[0].as_secs() - 0.020).abs() < 1e-6, "{}", f[0]);
        assert!((f[1].as_secs() - 0.040).abs() < 1e-6, "{}", f[1]);
    }

    #[test]
    fn staggered_arrival_waits_for_its_start() {
        let a = BandwidthArbiter::new(gbps(100.0));
        let f = a.schedule(&[
            TransferReq::now(Bytes::from_gb(1.0)),
            TransferReq::at(TimeSecs::from_secs(1.0), Bytes::from_gb(1.0)),
        ]);
        assert!((f[0].as_secs() - 0.01).abs() < 1e-9);
        assert!(
            (f[1].as_secs() - 1.01).abs() < 1e-9,
            "starts at t=1 with full bandwidth"
        );
    }

    #[test]
    fn zero_byte_transfers_finish_instantly() {
        let a = BandwidthArbiter::new(gbps(10.0));
        let f = a.schedule(&[TransferReq::now(Bytes::ZERO)]);
        assert!(f[0].is_zero());
    }

    #[test]
    fn empty_schedule_is_empty() {
        let a = BandwidthArbiter::new(gbps(10.0));
        assert!(a.schedule(&[]).is_empty());
        assert!(a.makespan(&[]).is_zero());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Work conservation: the makespan of simultaneous transfers
        /// equals total bytes over capacity (the link never idles).
        #[test]
        fn work_conserving_for_simultaneous_arrivals(
            sizes in proptest::collection::vec(1u64..1000, 1..10)
        ) {
            let a = BandwidthArbiter::new(gbps(1.0));
            let reqs: Vec<TransferReq> =
                sizes.iter().map(|&m| TransferReq::now(Bytes::from_mib(m))).collect();
            let total: u64 = sizes.iter().map(|&m| m * 1024 * 1024).sum();
            let expect = total as f64 / 1e9;
            let got = a.makespan(&reqs).as_secs();
            prop_assert!((got - expect).abs() / expect < 1e-6, "{got} vs {expect}");
        }

        /// No transfer finishes before its solo lower bound or its start.
        #[test]
        fn finishes_respect_lower_bounds(
            entries in proptest::collection::vec((0u64..100, 1u64..500), 1..8)
        ) {
            let a = BandwidthArbiter::new(gbps(1.0));
            let reqs: Vec<TransferReq> = entries
                .iter()
                .map(|&(s, m)| TransferReq::at(
                    TimeSecs::from_millis(s as f64),
                    Bytes::from_mib(m),
                ))
                .collect();
            let fins = a.schedule(&reqs);
            for (r, f) in reqs.iter().zip(&fins) {
                let solo = r.bytes.as_f64() / 1e9;
                prop_assert!(f.as_secs() + 1e-9 >= r.start.as_secs() + solo);
            }
        }
    }
}
