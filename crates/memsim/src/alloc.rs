//! First-fit region allocator with free-list coalescing.
//!
//! Both users of this allocator are described in §V: the compiler's static
//! allocator assigns device virtual addresses to symbols (reusing addresses
//! across non-overlapping lifetimes — the "static garbage collection"), and
//! the CoE runtime allocates a DDR block per expert model and an HBM block
//! per *active* expert.

use crate::tier::MemoryTier;
use serde::{Deserialize, Serialize};
use sn_arch::Bytes;
use std::error::Error;
use std::fmt;

/// A contiguous allocation inside one tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region {
    pub tier: MemoryTier,
    /// Byte offset of the region base within the tier.
    pub offset: u64,
    pub size: Bytes,
}

impl Region {
    /// One-past-the-end offset.
    pub fn end(&self) -> u64 {
        self.offset + self.size.as_u64()
    }

    /// Whether two regions overlap (must be in the same tier to overlap).
    pub fn overlaps(&self, other: &Region) -> bool {
        self.tier == other.tier && self.offset < other.end() && other.offset < self.end()
    }
}

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough contiguous space in the tier.
    OutOfMemory {
        tier: MemoryTier,
        requested: Bytes,
        free: Bytes,
    },
    /// `free` was called with a region this allocator does not own.
    UnknownRegion(Region),
    /// A zero-byte allocation was requested.
    ZeroSize,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory {
                tier,
                requested,
                free,
            } => {
                write!(
                    f,
                    "out of memory in {tier}: requested {requested}, {free} free"
                )
            }
            AllocError::UnknownRegion(r) => {
                write!(f, "freeing unknown region at {}+{}", r.offset, r.size)
            }
            AllocError::ZeroSize => write!(f, "zero-byte allocation"),
        }
    }
}

impl Error for AllocError {}

/// A first-fit allocator over one tier's address range.
///
/// Freed regions are coalesced with adjacent free space, so alternating
/// allocation patterns (the LRU expert cache) do not fragment unboundedly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionAllocator {
    tier: MemoryTier,
    capacity: Bytes,
    /// Sorted, non-adjacent free extents as (offset, size).
    free_list: Vec<(u64, u64)>,
    /// Outstanding allocations as (offset, size), kept sorted by offset.
    live: Vec<(u64, u64)>,
}

impl RegionAllocator {
    /// Creates an allocator over `capacity` bytes of the given tier.
    pub fn new(tier: MemoryTier, capacity: Bytes) -> Self {
        let free_list = if capacity == Bytes::ZERO {
            Vec::new()
        } else {
            vec![(0, capacity.as_u64())]
        };
        RegionAllocator {
            tier,
            capacity,
            free_list,
            live: Vec::new(),
        }
    }

    pub fn tier(&self) -> MemoryTier {
        self.tier
    }

    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Total free bytes (possibly fragmented).
    pub fn free_bytes(&self) -> Bytes {
        Bytes::new(self.free_list.iter().map(|&(_, s)| s).sum())
    }

    /// Total allocated bytes.
    pub fn used_bytes(&self) -> Bytes {
        self.capacity - self.free_bytes()
    }

    /// The largest single allocation that can currently succeed.
    pub fn largest_free_extent(&self) -> Bytes {
        Bytes::new(self.free_list.iter().map(|&(_, s)| s).max().unwrap_or(0))
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Allocates `size` bytes first-fit.
    ///
    /// # Errors
    ///
    /// [`AllocError::ZeroSize`] for empty requests;
    /// [`AllocError::OutOfMemory`] when no free extent is large enough
    /// (the error reports *total* free bytes, which may be nonzero under
    /// fragmentation).
    pub fn alloc(&mut self, size: Bytes) -> Result<Region, AllocError> {
        if size == Bytes::ZERO {
            return Err(AllocError::ZeroSize);
        }
        let need = size.as_u64();
        let slot = self.free_list.iter().position(|&(_, s)| s >= need);
        let Some(i) = slot else {
            return Err(AllocError::OutOfMemory {
                tier: self.tier,
                requested: size,
                free: self.free_bytes(),
            });
        };
        let (off, avail) = self.free_list[i];
        if avail == need {
            self.free_list.remove(i);
        } else {
            self.free_list[i] = (off + need, avail - need);
        }
        let pos = self.live.partition_point(|&(o, _)| o < off);
        self.live.insert(pos, (off, need));
        Ok(Region {
            tier: self.tier,
            offset: off,
            size,
        })
    }

    /// Returns a region to the free list, coalescing with neighbors.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownRegion`] if the region was not allocated from
    /// this allocator (or was already freed).
    pub fn free(&mut self, region: Region) -> Result<(), AllocError> {
        if region.tier != self.tier {
            return Err(AllocError::UnknownRegion(region));
        }
        let key = (region.offset, region.size.as_u64());
        let pos = self.live.iter().position(|&e| e == key);
        let Some(pos) = pos else {
            return Err(AllocError::UnknownRegion(region));
        };
        self.live.remove(pos);
        let (off, size) = key;
        let i = self.free_list.partition_point(|&(o, _)| o < off);
        self.free_list.insert(i, (off, size));
        // Coalesce with successor, then predecessor.
        if i + 1 < self.free_list.len() {
            let (no, ns) = self.free_list[i + 1];
            if off + size == no {
                self.free_list[i].1 += ns;
                self.free_list.remove(i + 1);
            }
        }
        if i > 0 {
            let (po, ps) = self.free_list[i - 1];
            if po + ps == off {
                self.free_list[i - 1].1 += self.free_list[i].1;
                self.free_list.remove(i);
            }
        }
        Ok(())
    }

    /// Frees everything, returning the allocator to its initial state.
    pub fn reset(&mut self) {
        self.live.clear();
        self.free_list.clear();
        if self.capacity > Bytes::ZERO {
            self.free_list.push((0, self.capacity.as_u64()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_kib(a: &mut RegionAllocator, k: u64) -> Region {
        a.alloc(Bytes::from_kib(k)).expect("allocation fits")
    }

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut a = RegionAllocator::new(MemoryTier::Hbm, Bytes::from_kib(64));
        let r = alloc_kib(&mut a, 16);
        assert_eq!(a.used_bytes(), Bytes::from_kib(16));
        a.free(r).unwrap();
        assert_eq!(a.used_bytes(), Bytes::ZERO);
        assert_eq!(a.largest_free_extent(), Bytes::from_kib(64));
    }

    #[test]
    fn first_fit_packs_from_base() {
        let mut a = RegionAllocator::new(MemoryTier::Ddr, Bytes::from_kib(64));
        let r1 = alloc_kib(&mut a, 16);
        let r2 = alloc_kib(&mut a, 16);
        assert_eq!(r1.offset, 0);
        assert_eq!(r2.offset, Bytes::from_kib(16).as_u64());
    }

    #[test]
    fn freed_hole_is_reused() {
        let mut a = RegionAllocator::new(MemoryTier::Hbm, Bytes::from_kib(64));
        let r1 = alloc_kib(&mut a, 16);
        let _r2 = alloc_kib(&mut a, 16);
        a.free(r1).unwrap();
        let r3 = alloc_kib(&mut a, 8);
        assert_eq!(r3.offset, 0, "first-fit reuses the freed hole");
    }

    #[test]
    fn coalescing_restores_large_extent() {
        let mut a = RegionAllocator::new(MemoryTier::Hbm, Bytes::from_kib(64));
        let r1 = alloc_kib(&mut a, 16);
        let r2 = alloc_kib(&mut a, 16);
        let r3 = alloc_kib(&mut a, 16);
        // Free in an order that exercises both coalesce directions.
        a.free(r2).unwrap();
        a.free(r1).unwrap();
        a.free(r3).unwrap();
        assert_eq!(a.largest_free_extent(), Bytes::from_kib(64));
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut a = RegionAllocator::new(MemoryTier::Hbm, Bytes::from_kib(32));
        let _r = alloc_kib(&mut a, 24);
        let err = a.alloc(Bytes::from_kib(16)).unwrap_err();
        match err {
            AllocError::OutOfMemory { free, .. } => assert_eq!(free, Bytes::from_kib(8)),
            other => panic!("expected OOM, got {other}"),
        }
    }

    #[test]
    fn fragmentation_can_fail_despite_total_free() {
        let mut a = RegionAllocator::new(MemoryTier::Hbm, Bytes::from_kib(48));
        let _r1 = alloc_kib(&mut a, 16);
        let r2 = alloc_kib(&mut a, 16);
        let _r3 = alloc_kib(&mut a, 16);
        a.free(r2).unwrap();
        // 16 KiB free but we ask for more than the largest extent... still
        // succeeds for 16, fails for 17.
        assert!(a.alloc(Bytes::from_kib(16) + Bytes::new(1)).is_err());
    }

    #[test]
    fn double_free_rejected() {
        let mut a = RegionAllocator::new(MemoryTier::Hbm, Bytes::from_kib(32));
        let r = alloc_kib(&mut a, 8);
        a.free(r).unwrap();
        assert!(matches!(a.free(r), Err(AllocError::UnknownRegion(_))));
    }

    #[test]
    fn zero_alloc_rejected() {
        let mut a = RegionAllocator::new(MemoryTier::Hbm, Bytes::from_kib(32));
        assert_eq!(a.alloc(Bytes::ZERO).unwrap_err(), AllocError::ZeroSize);
    }

    #[test]
    fn zero_capacity_allocator_always_fails() {
        let mut a = RegionAllocator::new(MemoryTier::Hbm, Bytes::ZERO);
        assert!(a.alloc(Bytes::new(1)).is_err());
    }

    #[test]
    fn reset_clears_everything() {
        let mut a = RegionAllocator::new(MemoryTier::Ddr, Bytes::from_kib(32));
        let _ = alloc_kib(&mut a, 8);
        let _ = alloc_kib(&mut a, 8);
        a.reset();
        assert_eq!(a.free_bytes(), Bytes::from_kib(32));
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn regions_never_overlap() {
        let mut a = RegionAllocator::new(MemoryTier::Hbm, Bytes::from_kib(128));
        let mut live = Vec::new();
        for i in 0..8 {
            live.push(alloc_kib(&mut a, (i % 3) + 1));
        }
        // Free every other, allocate more, and re-check.
        for r in live.iter().step_by(2) {
            a.free(*r).unwrap();
        }
        let mut survivors: Vec<Region> = live.iter().skip(1).step_by(2).copied().collect();
        for _ in 0..4 {
            survivors.push(alloc_kib(&mut a, 2));
        }
        for (i, r1) in survivors.iter().enumerate() {
            for r2 in &survivors[i + 1..] {
                assert!(!r1.overlaps(r2), "{r1:?} overlaps {r2:?}");
            }
        }
    }
}
