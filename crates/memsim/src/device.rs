//! Per-socket device memory: one allocator per tier, built from a
//! [`SocketSpec`].

use crate::alloc::{AllocError, Region, RegionAllocator};
use crate::tier::MemoryTier;
use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, SocketSpec};

/// The software-managed memory of one socket (SRAM is managed by the
/// compiler's place-and-route, not by this dynamic allocator, so only HBM
/// and DDR appear here; a host-DRAM allocator is included for baselines and
/// worst-case spill modeling).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceMemory {
    hbm: RegionAllocator,
    ddr: RegionAllocator,
    host: RegionAllocator,
}

impl DeviceMemory {
    /// Builds device memory from a socket spec, with a 2 TiB host tier.
    pub fn new(socket: &SocketSpec) -> Self {
        DeviceMemory {
            hbm: RegionAllocator::new(MemoryTier::Hbm, socket.hbm.capacity),
            ddr: RegionAllocator::new(MemoryTier::Ddr, socket.ddr.capacity),
            host: RegionAllocator::new(MemoryTier::HostDram, Bytes::from_tib(2)),
        }
    }

    /// Builds device memory with explicit tier capacities.
    pub fn with_capacities(hbm: Bytes, ddr: Bytes, host: Bytes) -> Self {
        DeviceMemory {
            hbm: RegionAllocator::new(MemoryTier::Hbm, hbm),
            ddr: RegionAllocator::new(MemoryTier::Ddr, ddr),
            host: RegionAllocator::new(MemoryTier::HostDram, host),
        }
    }

    fn allocator(&self, tier: MemoryTier) -> &RegionAllocator {
        match tier {
            MemoryTier::Hbm => &self.hbm,
            MemoryTier::Ddr => &self.ddr,
            MemoryTier::HostDram => &self.host,
            MemoryTier::Sram => panic!("SRAM is statically managed by the compiler"),
        }
    }

    fn allocator_mut(&mut self, tier: MemoryTier) -> &mut RegionAllocator {
        match tier {
            MemoryTier::Hbm => &mut self.hbm,
            MemoryTier::Ddr => &mut self.ddr,
            MemoryTier::HostDram => &mut self.host,
            MemoryTier::Sram => panic!("SRAM is statically managed by the compiler"),
        }
    }

    /// Allocates in the given tier.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError`] from the tier's allocator.
    ///
    /// # Panics
    ///
    /// Panics if `tier` is [`MemoryTier::Sram`]; on-chip SRAM is owned by
    /// compiled kernels, not the dynamic allocator.
    pub fn alloc(&mut self, tier: MemoryTier, size: Bytes) -> Result<Region, AllocError> {
        self.allocator_mut(tier).alloc(size)
    }

    /// Allocates in `tier`, falling back down the spill chain (HBM → DDR →
    /// host) on failure. Returns the region actually obtained.
    ///
    /// # Errors
    ///
    /// Returns the *last* tier's error when every tier in the chain is
    /// exhausted.
    pub fn alloc_with_spill(
        &mut self,
        tier: MemoryTier,
        size: Bytes,
    ) -> Result<Region, AllocError> {
        let mut t = tier;
        loop {
            match self.alloc(t, size) {
                Ok(r) => return Ok(r),
                Err(e) => match t.spill_target() {
                    Some(next) => t = next,
                    None => return Err(e),
                },
            }
        }
    }

    /// Frees a region in whatever tier it belongs to.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError::UnknownRegion`].
    pub fn free(&mut self, region: Region) -> Result<(), AllocError> {
        self.allocator_mut(region.tier).free(region)
    }

    /// Free bytes in a tier.
    pub fn free_bytes(&self, tier: MemoryTier) -> Bytes {
        self.allocator(tier).free_bytes()
    }

    /// Used bytes in a tier.
    pub fn used_bytes(&self, tier: MemoryTier) -> Bytes {
        self.allocator(tier).used_bytes()
    }

    /// Capacity of a tier.
    pub fn capacity(&self, tier: MemoryTier) -> Bytes {
        self.allocator(tier).capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_from_socket_spec() {
        let mem = DeviceMemory::new(&SocketSpec::sn40l());
        assert_eq!(mem.capacity(MemoryTier::Hbm), Bytes::from_gib(64));
        assert_eq!(mem.capacity(MemoryTier::Ddr), Bytes::from_gib(1536));
    }

    #[test]
    fn spill_falls_through_tiers() {
        let mut mem = DeviceMemory::with_capacities(
            Bytes::from_kib(4),
            Bytes::from_kib(8),
            Bytes::from_kib(16),
        );
        // Too big for HBM, fits in DDR.
        let r = mem
            .alloc_with_spill(MemoryTier::Hbm, Bytes::from_kib(6))
            .unwrap();
        assert_eq!(r.tier, MemoryTier::Ddr);
        // Too big for HBM and DDR, fits in host.
        let r2 = mem
            .alloc_with_spill(MemoryTier::Hbm, Bytes::from_kib(12))
            .unwrap();
        assert_eq!(r2.tier, MemoryTier::HostDram);
        // Too big for everything.
        assert!(mem
            .alloc_with_spill(MemoryTier::Hbm, Bytes::from_kib(32))
            .is_err());
    }

    #[test]
    fn tiers_are_independent() {
        let mut mem = DeviceMemory::with_capacities(
            Bytes::from_kib(8),
            Bytes::from_kib(8),
            Bytes::from_kib(8),
        );
        let h = mem.alloc(MemoryTier::Hbm, Bytes::from_kib(8)).unwrap();
        assert_eq!(mem.free_bytes(MemoryTier::Ddr), Bytes::from_kib(8));
        mem.free(h).unwrap();
        assert_eq!(mem.free_bytes(MemoryTier::Hbm), Bytes::from_kib(8));
    }

    #[test]
    #[should_panic(expected = "statically managed")]
    fn sram_is_not_dynamically_allocatable() {
        let mut mem = DeviceMemory::new(&SocketSpec::sn40l());
        let _ = mem.alloc(MemoryTier::Sram, Bytes::from_kib(1));
    }
}
