//! Timed DMA transfers between memory tiers, with a traffic ledger.
//!
//! Transfer timing is bandwidth-limited by the slower endpoint of the
//! route, matching how the AGCUs stream data (§IV-D). The ledger records
//! per-route byte totals so experiments can report traffic breakdowns
//! (e.g. Figure 1's model-switch bytes).

use crate::tier::MemoryTier;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sn_arch::{Bandwidth, Bytes, SocketSpec, TimeSecs};
use sn_faults::{FaultDecision, FaultPlan, FaultSite};
use sn_trace::{ArgValue, Counter, Metric, Tracer, Track};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// A directed transfer route between two tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    pub from: MemoryTier,
    pub to: MemoryTier,
}

impl Route {
    pub const fn new(from: MemoryTier, to: MemoryTier) -> Self {
        Route { from, to }
    }

    /// The model-switch route on the SN40L (§V-B).
    pub const DDR_TO_HBM: Route = Route::new(MemoryTier::Ddr, MemoryTier::Hbm);
    /// The model-switch route on a GPU without device DDR (§III-B).
    pub const HOST_TO_HBM: Route = Route::new(MemoryTier::HostDram, MemoryTier::Hbm);
}

/// Thread-safe accumulator of bytes moved per route.
#[derive(Debug, Clone, Default)]
pub struct TrafficLedger {
    inner: Arc<Mutex<HashMap<Route, Bytes>>>,
}

impl TrafficLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transfer.
    pub fn record(&self, route: Route, bytes: Bytes) {
        let mut m = self.inner.lock();
        let entry = m.entry(route).or_insert(Bytes::ZERO);
        *entry += bytes;
    }

    /// Total bytes moved on one route.
    pub fn moved(&self, route: Route) -> Bytes {
        self.inner
            .lock()
            .get(&route)
            .copied()
            .unwrap_or(Bytes::ZERO)
    }

    /// Total bytes moved on all routes.
    pub fn total(&self) -> Bytes {
        self.inner.lock().values().copied().sum()
    }

    /// Snapshot of all routes for reporting.
    pub fn snapshot(&self) -> Vec<(Route, Bytes)> {
        let mut v: Vec<(Route, Bytes)> = self.inner.lock().iter().map(|(&r, &b)| (r, b)).collect();
        v.sort_by_key(|&(r, _)| (r.from, r.to));
        v
    }

    /// Clears all recorded traffic.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

/// A DMA transfer the fault plan failed: the data never arrived intact.
///
/// `wasted` is the model time burned before the corruption was detected
/// (the full transfer time — end-to-end checksums only fire at
/// completion). Callers charge it into their recovery accounting and
/// retry or fail over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaFault {
    pub route: Route,
    pub bytes: Bytes,
    pub wasted: TimeSecs,
}

impl fmt::Display for DmaFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DMA transfer of {} on {:?}->{:?} failed after {}",
            self.bytes, self.route.from, self.route.to, self.wasted
        )
    }
}

impl Error for DmaFault {}

/// Per-socket DMA engine: effective bandwidth for each route plus a shared
/// ledger.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    routes: HashMap<Route, Bandwidth>,
    ledger: TrafficLedger,
    faults: Option<Arc<FaultPlan>>,
    tracer: Tracer,
}

impl DmaEngine {
    /// Builds the route table for one socket. Effective (derated)
    /// bandwidths are used throughout; the bottleneck of a route is the
    /// slower endpoint.
    pub fn new(socket: &SocketSpec) -> Self {
        let hbm = socket.hbm.effective_bandwidth();
        let ddr = socket.ddr.effective_bandwidth();
        let host = socket.host_link;
        let mut routes = HashMap::new();
        let mut add = |from, to, bw: Bandwidth| {
            routes.insert(Route::new(from, to), bw);
        };
        add(MemoryTier::Ddr, MemoryTier::Hbm, ddr.min(hbm));
        add(MemoryTier::Hbm, MemoryTier::Ddr, ddr.min(hbm));
        add(MemoryTier::HostDram, MemoryTier::Hbm, host.min(hbm));
        add(MemoryTier::Hbm, MemoryTier::HostDram, host.min(hbm));
        add(MemoryTier::HostDram, MemoryTier::Ddr, host.min(ddr));
        add(MemoryTier::Ddr, MemoryTier::HostDram, host.min(ddr));
        DmaEngine {
            routes,
            ledger: TrafficLedger::new(),
            faults: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer: every transfer then emits a span on the memsim
    /// track, bumps the per-route byte counters, and records its latency in
    /// the [`Metric::DmaTransfer`] histogram. Transfer *timing* is
    /// unaffected — with the default disabled tracer this engine behaves
    /// exactly as before.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a fault plan consulted by [`DmaEngine::try_transfer`].
    /// The plain [`DmaEngine::transfer`] path stays fault-oblivious so
    /// baseline timings are unchanged by merely holding a plan.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// The engine's traffic ledger.
    pub fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    /// Effective bandwidth of a route.
    ///
    /// # Panics
    ///
    /// Panics on a route not present in the socket (e.g. SRAM routes, which
    /// belong to the on-chip simulator, not the DMA engine).
    pub fn bandwidth(&self, route: Route) -> Bandwidth {
        *self
            .routes
            .get(&route)
            .unwrap_or_else(|| panic!("no DMA route {route:?}"))
    }

    /// Executes a timed transfer: records it in the ledger and returns the
    /// time taken.
    pub fn transfer(&self, route: Route, bytes: Bytes) -> TimeSecs {
        self.ledger.record(route, bytes);
        let t = if bytes == Bytes::ZERO {
            TimeSecs::ZERO
        } else {
            bytes / self.bandwidth(route)
        };
        self.trace_transfer(route, bytes, t, 1);
        t
    }

    /// Records one completed transfer into the attached tracer (no-op when
    /// tracing is disabled).
    fn trace_transfer(&self, route: Route, bytes: Bytes, time: TimeSecs, streams: usize) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer.count(Counter::DmaTransfers, streams as u64);
        let byte_counter = match (route.from, route.to) {
            (MemoryTier::Ddr, MemoryTier::Hbm) => Counter::DmaBytesDdrToHbm,
            (MemoryTier::Hbm, MemoryTier::Ddr) => Counter::DmaBytesHbmToDdr,
            _ => Counter::DmaBytesHost,
        };
        self.tracer.count(byte_counter, bytes.as_u64());
        self.tracer.observe(Metric::DmaTransfer, time);
        self.tracer.span(
            Track::Memsim,
            format!("dma:{:?}->{:?}", route.from, route.to),
            time,
            &[
                ("bytes", ArgValue::from(bytes.as_u64())),
                ("streams", ArgValue::from(streams)),
                (
                    "bandwidth_gbps",
                    ArgValue::from(self.bandwidth(route).as_gb_per_s()),
                ),
            ],
        );
    }

    /// Fault-aware transfer: consults the attached [`FaultPlan`] at the
    /// [`FaultSite::DmaTransfer`] site before moving data.
    ///
    /// With no plan attached (or a draw of `Ok`) this is exactly
    /// [`DmaEngine::transfer`]. A `Slow` draw stretches the transfer by
    /// the plan's factor. A `Fail` draw aborts the transfer: nothing is
    /// recorded in the ledger and the full transfer time comes back as
    /// [`DmaFault::wasted`] for the caller's recovery accounting.
    ///
    /// # Errors
    ///
    /// [`DmaFault`] when the plan injects an outright failure.
    pub fn try_transfer(&self, route: Route, bytes: Bytes) -> Result<TimeSecs, DmaFault> {
        let Some(plan) = &self.faults else {
            return Ok(self.transfer(route, bytes));
        };
        match plan.decide(FaultSite::DmaTransfer) {
            FaultDecision::Ok => Ok(self.transfer(route, bytes)),
            FaultDecision::Slow(factor) => Ok(self.transfer(route, bytes) * factor),
            FaultDecision::Fail => {
                let wasted = if bytes == Bytes::ZERO {
                    TimeSecs::ZERO
                } else {
                    bytes / self.bandwidth(route)
                };
                if self.tracer.is_enabled() {
                    self.tracer.count(Counter::DmaFaultsInjected, 1);
                    self.tracer.instant(
                        Track::Memsim,
                        format!("dma-fault:{:?}->{:?}", route.from, route.to),
                        &[
                            ("bytes", ArgValue::from(bytes.as_u64())),
                            ("wasted_us", ArgValue::from(wasted.as_micros())),
                        ],
                    );
                }
                Err(DmaFault {
                    route,
                    bytes,
                    wasted,
                })
            }
        }
    }

    /// Time for `streams` concurrent equal transfers sharing the route's
    /// bandwidth (they finish together).
    pub fn transfer_shared(&self, route: Route, bytes_each: Bytes, streams: usize) -> TimeSecs {
        assert!(streams > 0, "at least one stream");
        self.ledger.record(route, bytes_each * streams as u64);
        let t = if bytes_each == Bytes::ZERO {
            TimeSecs::ZERO
        } else {
            (bytes_each * streams as u64) / self.bandwidth(route)
        };
        self.trace_transfer(route, bytes_each * streams as u64, t, streams);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DmaEngine {
        DmaEngine::new(&SocketSpec::sn40l())
    }

    #[test]
    fn ddr_to_hbm_is_ddr_limited() {
        let e = engine();
        let bw = e.bandwidth(Route::DDR_TO_HBM);
        // 200 GB/s * 0.65 = 130 GB/s effective per socket.
        assert!((bw.as_gb_per_s() - 130.0).abs() < 1.0, "got {bw}");
    }

    #[test]
    fn host_route_is_pcie_limited() {
        let e = engine();
        let bw = e.bandwidth(Route::HOST_TO_HBM);
        assert!((bw.as_gb_per_s() - 32.0).abs() < 0.5, "got {bw}");
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let e = engine();
        let t1 = e.transfer(Route::DDR_TO_HBM, Bytes::from_gb(1.0));
        let t2 = e.transfer(Route::DDR_TO_HBM, Bytes::from_gb(2.0));
        assert!((t2.as_secs() / t1.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ledger_accumulates() {
        let e = engine();
        e.transfer(Route::DDR_TO_HBM, Bytes::from_gb(1.0));
        e.transfer(Route::DDR_TO_HBM, Bytes::from_gb(2.0));
        e.transfer(Route::HOST_TO_HBM, Bytes::from_gb(0.5));
        assert_eq!(e.ledger().moved(Route::DDR_TO_HBM), Bytes::from_gb(3.0));
        assert_eq!(e.ledger().total(), Bytes::from_gb(3.5));
        e.ledger().clear();
        assert_eq!(e.ledger().total(), Bytes::ZERO);
    }

    #[test]
    fn zero_transfer_takes_no_time() {
        let e = engine();
        assert!(e.transfer(Route::DDR_TO_HBM, Bytes::ZERO).is_zero());
    }

    #[test]
    fn shared_streams_split_bandwidth() {
        let e = engine();
        let one = e.transfer(Route::DDR_TO_HBM, Bytes::from_gb(1.0));
        let four = e.transfer_shared(Route::DDR_TO_HBM, Bytes::from_gb(1.0), 4);
        assert!((four.as_secs() / one.as_secs() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn try_transfer_without_plan_matches_transfer() {
        let e = engine();
        let plain = e.transfer(Route::DDR_TO_HBM, Bytes::from_gb(1.0));
        let aware = e
            .try_transfer(Route::DDR_TO_HBM, Bytes::from_gb(1.0))
            .unwrap();
        assert_eq!(plain, aware);
    }

    #[test]
    fn injected_dma_failures_abort_and_charge_wasted_time() {
        use sn_faults::{FaultPlan, FaultSite, FaultSpec};
        let plan =
            Arc::new(FaultPlan::new(11).with_site(FaultSite::DmaTransfer, FaultSpec::failing(1.0)));
        let e = engine().with_faults(plan);
        let err = e
            .try_transfer(Route::DDR_TO_HBM, Bytes::from_gb(1.0))
            .unwrap_err();
        assert_eq!(err.route, Route::DDR_TO_HBM);
        assert!(
            err.wasted.as_secs() > 0.0,
            "failure burns the transfer time"
        );
        // Aborted transfers never land in the ledger.
        assert_eq!(e.ledger().total(), Bytes::ZERO);
    }

    #[test]
    fn injected_slowdowns_stretch_transfers() {
        use sn_faults::{FaultPlan, FaultSite, FaultSpec};
        let plan = Arc::new(
            FaultPlan::new(11).with_site(FaultSite::DmaTransfer, FaultSpec::slow(1.0, 3.0)),
        );
        let e = engine().with_faults(plan);
        let clean = engine().transfer(Route::DDR_TO_HBM, Bytes::from_gb(1.0));
        let slowed = e
            .try_transfer(Route::DDR_TO_HBM, Bytes::from_gb(1.0))
            .unwrap();
        assert!((slowed.as_secs() / clean.as_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn traced_transfers_record_counters_and_spans() {
        let t = Tracer::enabled();
        let e = engine().with_tracer(t.clone());
        e.transfer(Route::DDR_TO_HBM, Bytes::from_gb(1.0));
        e.transfer(
            Route::new(MemoryTier::Hbm, MemoryTier::Ddr),
            Bytes::from_gb(0.5),
        );
        e.transfer_shared(Route::HOST_TO_HBM, Bytes::from_gb(0.25), 2);
        let m = t.metrics();
        assert_eq!(m.counter(Counter::DmaTransfers), 4);
        assert_eq!(m.counter(Counter::DmaBytesDdrToHbm), 1_000_000_000);
        assert_eq!(m.counter(Counter::DmaBytesHbmToDdr), 500_000_000);
        assert_eq!(m.counter(Counter::DmaBytesHost), 500_000_000);
        assert_eq!(m.histogram(Metric::DmaTransfer).unwrap().count(), 3);
        assert_eq!(t.event_count(), 3);
    }

    #[test]
    fn traced_timing_matches_untraced() {
        let plain = engine().transfer(Route::DDR_TO_HBM, Bytes::from_gb(1.0));
        let traced = engine()
            .with_tracer(Tracer::enabled())
            .transfer(Route::DDR_TO_HBM, Bytes::from_gb(1.0));
        assert_eq!(plain, traced);
    }

    #[test]
    fn injected_faults_are_traced() {
        use sn_faults::{FaultPlan, FaultSite, FaultSpec};
        let t = Tracer::enabled();
        let plan =
            Arc::new(FaultPlan::new(11).with_site(FaultSite::DmaTransfer, FaultSpec::failing(1.0)));
        let e = engine().with_faults(plan).with_tracer(t.clone());
        let _ = e.try_transfer(Route::DDR_TO_HBM, Bytes::from_gb(1.0));
        assert_eq!(t.counter(Counter::DmaFaultsInjected), 1);
    }

    #[test]
    fn model_switch_is_much_faster_on_device_ddr() {
        // The crux of Figure 1: DDR->HBM at 130 GB/s vs host->HBM at
        // 32 GB/s per socket.
        let e = engine();
        let expert = Bytes::from_gb(13.48);
        let ddr = e.transfer(Route::DDR_TO_HBM, expert);
        let host = e.transfer(Route::HOST_TO_HBM, expert);
        assert!(host.as_secs() / ddr.as_secs() > 3.5);
    }
}
