//! `sn-obs` — labeled time-series telemetry, SLO burn-rate alerting, and
//! a post-mortem flight recorder for the SN40L serving stack.
//!
//! Where `sn-trace` answers "how much, in total" (typed counters,
//! latency histograms) and `sn-profile` answers "what bound the run"
//! (roofline attribution, end-of-window percentiles), `sn-obs` answers
//! "when, and to whom": per-tenant/per-node series sampled at wave
//! boundaries, declarative alert rules with firing/resolved transitions,
//! and a black-box bundle of the waves around each incident.
//!
//! The recording contract matches `sn-trace`'s tracer: the [`Obs`]
//! handle is an `Option<Arc<Mutex<..>>>` — disabled handles hold `None`
//! and every recording call is an inlined null-check, so instrumentation
//! costs nothing when observability is off, and observed runs stay
//! bit-identical to unobserved ones (the pipeline only reads serving
//! state, never steers it). All storage orders by `BTreeMap`/sorted keys,
//! so reports and JSON exports are byte-identical across `--jobs` values.
//!
//! # Examples
//!
//! ```
//! use sn_obs::{Obs, ObsConfig, AlertCondition, AlertRule, LabelSet, SeriesKey};
//! use sn_arch::TimeSecs;
//!
//! let mut config = ObsConfig::default();
//! config.rules.push(AlertRule {
//!     name: "queue_deep".into(),
//!     labels: LabelSet::empty(),
//!     condition: AlertCondition::GaugeAbove {
//!         series: SeriesKey::new("queue_depth", &[]),
//!         threshold: 10.0,
//!         window: 2,
//!     },
//! });
//! let obs = Obs::enabled(config);
//! for wave in 0..4 {
//!     obs.gauge("queue_depth", &[], 20.0);
//!     obs.end_wave(wave, TimeSecs::from_millis(wave as f64));
//! }
//! let report = obs.finalize().expect("enabled");
//! assert_eq!(report.alerts.len(), 1); // fired once, still firing
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod export;
pub mod recorder;
pub mod registry;
pub mod series;

pub use alert::{AlertCondition, AlertEngine, AlertEvent, AlertKind, AlertRule};
pub use recorder::{FlightEntry, FlightRecorder, PostMortem, RecorderConfig};
pub use registry::{MetricRegistry, RegistryConfig};
pub use series::{Bucket, LabelSet, MetricKind, Sample, SeriesBuffer, SeriesKey};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sn_arch::TimeSecs;
use std::sync::Arc;

/// Full observability pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Per-series storage sizing.
    pub registry: RegistryConfig,
    /// Flight-recorder sizing.
    pub recorder: RecorderConfig,
    /// Alert rules evaluated each wave.
    pub rules: Vec<AlertRule>,
}

/// Outcome of closing one wave: how many alert transitions happened and
/// whether a post-mortem bundle was frozen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaveObservation {
    /// Rules that transitioned to firing this wave.
    pub fired: usize,
    /// Rules that transitioned to resolved this wave.
    pub resolved: usize,
    /// Whether the flight recorder finalized a bundle this wave.
    pub postmortem_closed: bool,
}

/// Everything the pipeline saw, frozen at end of run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Waves observed (`end_wave` calls).
    pub waves: usize,
    /// Every series with its downsampled ring and recent window, sorted
    /// by key.
    pub series: Vec<(SeriesKey, SeriesBuffer)>,
    /// Every alert transition, in wave order.
    pub alerts: Vec<AlertEvent>,
    /// Every frozen post-mortem bundle, in incident order.
    pub postmortems: Vec<PostMortem>,
}

impl ObsReport {
    /// Serializes as a standalone JSON document (see [`export`]).
    pub fn to_json(&self) -> String {
        export::to_json(self)
    }

    /// The buffer for one series, if recorded.
    pub fn series_buffer(&self, key: &SeriesKey) -> Option<&SeriesBuffer> {
        self.series
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| &self.series[i].1)
    }

    /// Alert transitions of one kind.
    pub fn alerts_of(&self, kind: AlertKind) -> impl Iterator<Item = &AlertEvent> {
        self.alerts.iter().filter(move |a| a.kind == kind)
    }
}

struct ObsState {
    registry: MetricRegistry,
    engine: AlertEngine,
    recorder: FlightRecorder,
    alerts: Vec<AlertEvent>,
    waves: usize,
    last_wave: usize,
}

/// Handle through which instrumented serving code records telemetry.
///
/// Cheap to clone; clones share one pipeline. Disabled handles make
/// every method a no-op (see the crate docs for the contract).
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Mutex<ObsState>>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Obs(disabled)"),
            Some(s) => {
                let s = s.lock();
                write!(
                    f,
                    "Obs(enabled, {} series, wave {})",
                    s.registry.len(),
                    s.waves
                )
            }
        }
    }
}

impl Obs {
    /// A disabled pipeline: every call is a no-op. Also the `Default`.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// An enabled pipeline with the given configuration.
    pub fn enabled(config: ObsConfig) -> Self {
        Obs {
            inner: Some(Arc::new(Mutex::new(ObsState {
                registry: MetricRegistry::new(config.registry),
                engine: AlertEngine::new(config.rules),
                recorder: FlightRecorder::new(config.recorder),
                alerts: Vec::new(),
                waves: 0,
                last_wave: 0,
            }))),
        }
    }

    /// Whether this handle records anything.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets a labeled gauge for the current wave. Allocation-free for a
    /// series that already exists when `labels` is canonical (strictly
    /// key-sorted) — the wave-boundary instrumentation hot path.
    #[inline]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().registry.gauge_parts(name, labels, value);
    }

    /// Adds to a labeled counter's delta for the current wave. Same
    /// allocation contract as [`Obs::gauge`].
    #[inline]
    pub fn add(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().registry.add_parts(name, labels, delta);
    }

    /// Records a flight-recorder entry (shed, crash, scale event, …).
    #[inline]
    pub fn event(
        &self,
        wave: usize,
        t: TimeSecs,
        node: Option<usize>,
        kind: &str,
        detail: &str,
        value: f64,
    ) {
        let Some(inner) = &self.inner else { return };
        inner.lock().recorder.record(FlightEntry {
            wave,
            t,
            node,
            kind: kind.to_string(),
            detail: detail.to_string(),
            value,
        });
    }

    /// Opens (or extends) a post-mortem capture — called when a chaos
    /// fault window opens or an outage begins.
    #[inline]
    pub fn incident(&self, trigger: &str, wave: usize, at: TimeSecs) {
        let Some(inner) = &self.inner else { return };
        inner.lock().recorder.incident(trigger, wave, at);
    }

    /// Closes a wave: samples the registry, evaluates alert rules
    /// (firing alerts open post-mortem captures), and ticks the flight
    /// recorder. Returns the wave's alert/bundle activity.
    pub fn end_wave(&self, wave: usize, at: TimeSecs) -> WaveObservation {
        let Some(inner) = &self.inner else {
            return WaveObservation::default();
        };
        let mut s = inner.lock();
        s.registry.sample(wave, at);
        let ObsState {
            registry, engine, ..
        } = &mut *s;
        let events = engine.evaluate(registry, wave, at);
        let mut obs = WaveObservation::default();
        for event in &events {
            match event.kind {
                AlertKind::Firing => {
                    obs.fired += 1;
                    let trigger = format!("alert:{}", event.rule);
                    s.recorder.incident(&trigger, wave, at);
                }
                AlertKind::Resolved => obs.resolved += 1,
            }
            s.recorder.record(FlightEntry {
                wave,
                t: at,
                node: None,
                kind: "alert".to_string(),
                detail: format!("{} {}", event.rule, event.kind.name()),
                value: event.value,
            });
        }
        s.alerts.extend(events);
        let ObsState {
            registry, recorder, ..
        } = &mut *s;
        obs.postmortem_closed = recorder.end_wave(wave, registry);
        s.waves += 1;
        s.last_wave = wave;
        obs
    }

    /// Whether a post-mortem capture is currently open (false when
    /// disabled) — an open capture will be frozen by [`Obs::finalize`].
    pub fn is_capturing(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner.lock().recorder.is_capturing(),
        }
    }

    /// Number of waves closed so far (0 when disabled).
    pub fn waves(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner.lock().waves,
        }
    }

    /// Freezes the pipeline into a report: flushes any open capture and
    /// snapshots series, alerts, and bundles. `None` when disabled.
    pub fn finalize(&self) -> Option<ObsReport> {
        let inner = self.inner.as_ref()?;
        let mut s = inner.lock();
        let ObsState {
            registry,
            recorder,
            last_wave,
            ..
        } = &mut *s;
        recorder.finalize(*last_wave, registry);
        let series: Vec<(SeriesKey, SeriesBuffer)> = s
            .registry
            .iter()
            .map(|(k, b)| (k.clone(), b.clone()))
            .collect();
        Some(ObsReport {
            waves: s.waves,
            series,
            alerts: s.alerts.clone(),
            postmortems: s.recorder.postmortems().to_vec(),
        })
    }
}

/// Renders values as a unicode sparkline (`▁▂▃▄▅▆▇█`), scaling to the
/// value range; empty input renders as an empty string, and a flat
/// series renders at the lowest level.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return LEVELS[0].to_string().repeat(values.len());
    }
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() || span <= 0.0 {
                LEVELS[0]
            } else {
                let idx = ((v - lo) / span * 7.0).round() as usize;
                LEVELS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_with_rule() -> ObsConfig {
        let mut config = ObsConfig::default();
        config.rules.push(AlertRule {
            name: "hot".into(),
            labels: LabelSet::from_pairs(&[("tenant", "t0")]),
            condition: AlertCondition::GaugeAbove {
                series: SeriesKey::new("lat", &[("tenant", "t0")]),
                threshold: 5.0,
                window: 1,
            },
        });
        config
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = Obs::disabled();
        obs.gauge("lat", &[], 1.0);
        obs.add("shed", &[], 1.0);
        obs.event(0, TimeSecs::ZERO, None, "x", "y", 0.0);
        obs.incident("z", 0, TimeSecs::ZERO);
        assert_eq!(obs.end_wave(0, TimeSecs::ZERO), WaveObservation::default());
        assert_eq!(obs.waves(), 0);
        assert!(obs.finalize().is_none());
        assert!(!obs.is_enabled());
        assert!(!Obs::default().is_enabled());
    }

    #[test]
    fn clones_share_one_pipeline() {
        let obs = Obs::enabled(ObsConfig::default());
        let other = obs.clone();
        other.gauge("depth", &[], 2.0);
        obs.end_wave(0, TimeSecs::ZERO);
        let report = obs.finalize().unwrap();
        assert_eq!(report.series.len(), 1);
        assert_eq!(report.waves, 1);
    }

    #[test]
    fn firing_alert_opens_a_postmortem_capture() {
        let obs = Obs::enabled(ObsConfig {
            recorder: RecorderConfig {
                ring_capacity: 16,
                tail_waves: 2,
            },
            ..config_with_rule()
        });
        obs.gauge("lat", &[("tenant", "t0")], 1.0);
        let quiet = obs.end_wave(0, TimeSecs::from_millis(1.0));
        assert_eq!(quiet.fired, 0);
        obs.gauge("lat", &[("tenant", "t0")], 50.0);
        let hot = obs.end_wave(1, TimeSecs::from_millis(2.0));
        assert_eq!(hot.fired, 1);
        obs.gauge("lat", &[("tenant", "t0")], 1.0);
        // The firing wave's own tick consumed one tail wave, so the
        // 2-wave tail expires on the wave after the resolution.
        let cool = obs.end_wave(2, TimeSecs::from_millis(3.0));
        assert_eq!(cool.resolved, 1);
        assert!(cool.postmortem_closed, "tail of 2 waves expired");
        let report = obs.finalize().unwrap();
        assert_eq!(report.alerts.len(), 2);
        assert_eq!(report.alerts_of(AlertKind::Firing).count(), 1);
        assert_eq!(report.alerts_of(AlertKind::Resolved).count(), 1);
        assert_eq!(report.postmortems.len(), 1);
        let pm = &report.postmortems[0];
        assert_eq!(pm.trigger, "alert:hot");
        assert_eq!(pm.opened_wave, 1);
        // The bundle's series cover the incident wave.
        assert!(pm.covers(1, 1));
    }

    #[test]
    fn finalize_flushes_open_captures() {
        let obs = Obs::enabled(config_with_rule());
        obs.gauge("lat", &[("tenant", "t0")], 50.0);
        obs.end_wave(0, TimeSecs::from_millis(1.0));
        // Run ends with the capture still open (default 30-wave tail).
        let report = obs.finalize().unwrap();
        assert_eq!(report.postmortems.len(), 1);
    }

    #[test]
    fn report_lookup_and_json_round_trip_shape() {
        let obs = Obs::enabled(ObsConfig::default());
        obs.add("shed", &[("tenant", "a")], 3.0);
        obs.gauge("depth", &[], 7.0);
        obs.end_wave(0, TimeSecs::from_millis(1.0));
        let report = obs.finalize().unwrap();
        let key = SeriesKey::new("shed", &[("tenant", "a")]);
        let buf = report.series_buffer(&key).expect("series exists");
        assert_eq!(buf.last().unwrap().value, 3.0);
        assert!(report.series_buffer(&SeriesKey::new("nope", &[])).is_none());
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"sn-obs/v1\""));
        assert!(json.contains("\"name\":\"shed\""));
    }

    #[test]
    fn exports_are_byte_identical_across_label_orderings() {
        // The borrowed-parts fast path (canonical labels) and the
        // allocating fallback (unsorted / duplicate-key labels) must
        // produce the same export byte-for-byte, so the wave-boundary
        // allocation fix cannot change any recorded artifact.
        let run = |labels_a: &[(&str, &str)], labels_b: &[(&str, &str)]| -> String {
            let obs = Obs::enabled(ObsConfig::default());
            for wave in 0..4usize {
                obs.gauge("lat", labels_a, wave as f64);
                obs.add("shed", labels_b, 1.0);
                obs.gauge("depth", &[], 2.0 * wave as f64);
                obs.end_wave(wave, TimeSecs::from_millis(wave as f64));
            }
            obs.finalize().unwrap().to_json()
        };
        let canonical = run(
            &[("slo_class", "interactive"), ("tenant", "t0")],
            &[("reason", "queue-full"), ("tenant", "t1")],
        );
        let permuted = run(
            &[("tenant", "t0"), ("slo_class", "interactive")],
            &[
                ("tenant", "t1"),
                ("reason", "zzz"),
                ("reason", "queue-full"),
            ],
        );
        assert_eq!(canonical, permuted);
    }

    #[test]
    fn sparkline_scales_and_handles_edge_cases() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▁▁▁");
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(line, "▁▂▃▄▅▆▇█");
        assert_eq!(sparkline(&[f64::NAN, f64::NAN]), "▁▁");
        let mixed = sparkline(&[0.0, f64::INFINITY, 10.0]);
        assert_eq!(mixed.chars().count(), 3);
    }
}
