//! The labeled metric registry: a deterministic map from [`SeriesKey`]
//! to live values, sampled into [`SeriesBuffer`]s at wave boundaries.
//!
//! During a wave the serving loop sets gauges (`gauge`) and accumulates
//! counter deltas (`add`); at the wave boundary [`MetricRegistry::sample`]
//! flushes every touched gauge and every known counter (counters sample
//! densely — 0.0 on untouched waves — so windowed rates over them are
//! well-defined). Storage is a `BTreeMap`, so iteration order — and
//! therefore every export — is a pure function of the recorded keys,
//! never of hash state.

use crate::series::{MetricKind, Sample, SeriesBuffer, SeriesKey};
use serde::{Deserialize, Serialize};
use sn_arch::TimeSecs;
use std::collections::BTreeMap;

/// Sizing knobs for per-series storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistryConfig {
    /// Downsampling ring capacity per series (buckets kept for the whole
    /// run; compaction halves resolution when full).
    pub ring_capacity: usize,
    /// Raw recent-window capacity per series (samples kept verbatim for
    /// alert evaluation and post-mortem bundles).
    pub recent_capacity: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            ring_capacity: 256,
            recent_capacity: 128,
        }
    }
}

#[derive(Debug, Clone)]
struct SeriesState {
    buffer: SeriesBuffer,
    /// Gauge: value set this wave, if any. Counter: delta accumulated
    /// this wave.
    pending: Option<f64>,
}

/// Deterministic labeled-series store. See the module docs for the
/// sampling contract.
#[derive(Debug, Clone)]
pub struct MetricRegistry {
    config: RegistryConfig,
    series: BTreeMap<SeriesKey, SeriesState>,
}

impl MetricRegistry {
    /// An empty registry with the given sizing.
    pub fn new(config: RegistryConfig) -> Self {
        MetricRegistry {
            config,
            series: BTreeMap::new(),
        }
    }

    fn state(&mut self, key: SeriesKey, kind: MetricKind) -> &mut SeriesState {
        let config = self.config;
        self.series.entry(key).or_insert_with(|| SeriesState {
            buffer: SeriesBuffer::new(kind, config.ring_capacity, config.recent_capacity),
            pending: None,
        })
    }

    /// Sets a gauge for the current wave (last write in a wave wins).
    pub fn gauge(&mut self, key: SeriesKey, value: f64) {
        self.state(key, MetricKind::Gauge).pending = Some(value);
    }

    /// Adds to a counter's delta for the current wave.
    pub fn add(&mut self, key: SeriesKey, delta: f64) {
        let state = self.state(key, MetricKind::Counter);
        state.pending = Some(state.pending.unwrap_or(0.0) + delta);
    }

    /// Closes the wave: flushes touched gauges and all counters (dense)
    /// into their buffers, clearing pending values.
    pub fn sample(&mut self, wave: usize, t: TimeSecs) {
        for state in self.series.values_mut() {
            let value = match (state.buffer.kind(), state.pending.take()) {
                (_, Some(v)) => v,
                (MetricKind::Counter, None) => 0.0,
                (MetricKind::Gauge, None) => continue,
            };
            state.buffer.push(Sample { wave, t, value });
        }
    }

    /// Looks up one series' buffer.
    pub fn buffer(&self, key: &SeriesKey) -> Option<&SeriesBuffer> {
        self.series.get(key).map(|s| &s.buffer)
    }

    /// All series in deterministic (sorted-key) order.
    pub fn iter(&self) -> impl Iterator<Item = (&SeriesKey, &SeriesBuffer)> {
        self.series.iter().map(|(k, s)| (k, &s.buffer))
    }

    /// All series whose metric name matches, sorted by labels.
    pub fn by_name<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = (&'a SeriesKey, &'a SeriesBuffer)> {
        self.iter().filter(move |(k, _)| k.name == name)
    }

    /// Number of distinct series recorded.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        SeriesKey::new(name, labels)
    }

    #[test]
    fn gauges_sample_only_when_set() {
        let mut reg = MetricRegistry::new(RegistryConfig::default());
        reg.gauge(key("depth", &[]), 3.0);
        reg.sample(0, TimeSecs::from_millis(1.0));
        reg.sample(1, TimeSecs::from_millis(2.0)); // untouched wave
        reg.gauge(key("depth", &[]), 5.0);
        reg.sample(2, TimeSecs::from_millis(3.0));
        let buf = reg.buffer(&key("depth", &[])).unwrap();
        let waves: Vec<usize> = buf.recent().map(|s| s.wave).collect();
        assert_eq!(waves, vec![0, 2], "wave 1 produced no gauge sample");
    }

    #[test]
    fn counters_sample_densely_once_created() {
        let mut reg = MetricRegistry::new(RegistryConfig::default());
        reg.add(key("shed", &[("tenant", "a")]), 2.0);
        reg.sample(0, TimeSecs::from_millis(1.0));
        reg.sample(1, TimeSecs::from_millis(2.0)); // untouched -> 0.0
        reg.add(key("shed", &[("tenant", "a")]), 1.0);
        reg.add(key("shed", &[("tenant", "a")]), 1.0);
        reg.sample(2, TimeSecs::from_millis(3.0));
        let buf = reg.buffer(&key("shed", &[("tenant", "a")])).unwrap();
        let vals: Vec<f64> = buf.recent().map(|s| s.value).collect();
        assert_eq!(vals, vec![2.0, 0.0, 2.0]);
        assert_eq!(buf.window_sum(3), 4.0);
    }

    #[test]
    fn iteration_order_is_sorted_not_insertion() {
        let mut reg = MetricRegistry::new(RegistryConfig::default());
        reg.gauge(key("z_metric", &[]), 1.0);
        reg.gauge(key("a_metric", &[("tenant", "b")]), 1.0);
        reg.gauge(key("a_metric", &[("tenant", "a")]), 1.0);
        reg.sample(0, TimeSecs::ZERO);
        let names: Vec<String> = reg.iter().map(|(k, _)| k.render()).collect();
        assert_eq!(
            names,
            vec![
                "a_metric{tenant=\"a\"}",
                "a_metric{tenant=\"b\"}",
                "z_metric"
            ]
        );
        assert_eq!(reg.by_name("a_metric").count(), 2);
        assert_eq!(reg.len(), 3);
    }
}
