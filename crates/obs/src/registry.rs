//! The labeled metric registry: a deterministic map from [`SeriesKey`]
//! to live values, sampled into [`SeriesBuffer`]s at wave boundaries.
//!
//! During a wave the serving loop sets gauges (`gauge`) and accumulates
//! counter deltas (`add`); at the wave boundary [`MetricRegistry::sample`]
//! flushes every touched gauge and every known counter (counters sample
//! densely — 0.0 on untouched waves — so windowed rates over them are
//! well-defined). Storage is a key-sorted `Vec`, so iteration order —
//! and therefore every export — is a pure function of the recorded keys,
//! never of hash state.
//!
//! The recording hot path ([`MetricRegistry::gauge_parts`] /
//! [`MetricRegistry::add_parts`]) looks a series up by *borrowed* name
//! and label parts — a binary search comparing `&str` against the
//! stored key — so the per-wave instrumentation in the serving loop
//! allocates a [`SeriesKey`] only the first time a series is touched,
//! not on every call. The fast path requires the label slice already in
//! canonical form (strictly sorted by key, no duplicates); anything
//! else falls back to the allocating [`SeriesKey::new`] normalization,
//! so both paths produce byte-identical exports.

use crate::series::{MetricKind, Sample, SeriesBuffer, SeriesKey};
use serde::{Deserialize, Serialize};
use sn_arch::TimeSecs;
use std::cmp::Ordering;

/// Sizing knobs for per-series storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistryConfig {
    /// Downsampling ring capacity per series (buckets kept for the whole
    /// run; compaction halves resolution when full).
    pub ring_capacity: usize,
    /// Raw recent-window capacity per series (samples kept verbatim for
    /// alert evaluation and post-mortem bundles).
    pub recent_capacity: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            ring_capacity: 256,
            recent_capacity: 128,
        }
    }
}

#[derive(Debug, Clone)]
struct SeriesState {
    buffer: SeriesBuffer,
    /// Gauge: value set this wave, if any. Counter: delta accumulated
    /// this wave.
    pending: Option<f64>,
}

/// Compares a stored key against borrowed (name, canonical labels)
/// parts, consistent with `SeriesKey`'s derived `Ord` when the label
/// slice is canonical (strictly key-sorted: key order then decides, as
/// duplicates are impossible).
fn cmp_parts(key: &SeriesKey, name: &str, labels: &[(&str, &str)]) -> Ordering {
    match key.name.as_str().cmp(name) {
        Ordering::Equal => {}
        other => return other,
    }
    for (stored, part) in key.labels.pairs().iter().zip(labels) {
        match (stored.0.as_str(), stored.1.as_str()).cmp(part) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    key.labels.pairs().len().cmp(&labels.len())
}

/// Whether a label slice is already in canonical form: strictly sorted
/// by key, therefore duplicate-free. Canonical slices can skip the
/// allocating sort/dedup normalization.
fn is_canonical(labels: &[(&str, &str)]) -> bool {
    labels.windows(2).all(|w| w[0].0 < w[1].0)
}

/// Deterministic labeled-series store. See the module docs for the
/// sampling contract.
#[derive(Debug, Clone)]
pub struct MetricRegistry {
    config: RegistryConfig,
    /// Sorted by key; binary-searched on both the owned-key and the
    /// borrowed-parts paths.
    series: Vec<(SeriesKey, SeriesState)>,
}

impl MetricRegistry {
    /// An empty registry with the given sizing.
    pub fn new(config: RegistryConfig) -> Self {
        MetricRegistry {
            config,
            series: Vec::new(),
        }
    }

    fn fresh_state(&self, kind: MetricKind) -> SeriesState {
        SeriesState {
            buffer: SeriesBuffer::new(kind, self.config.ring_capacity, self.config.recent_capacity),
            pending: None,
        }
    }

    fn state(&mut self, key: SeriesKey, kind: MetricKind) -> &mut SeriesState {
        let idx = match self.series.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => i,
            Err(i) => {
                let state = self.fresh_state(kind);
                self.series.insert(i, (key, state));
                i
            }
        };
        &mut self.series[idx].1
    }

    /// The hot-path lookup: finds (or creates) a series from borrowed
    /// parts. Only called with canonical labels, so the comparison — and
    /// a first-touch key construction — match `SeriesKey::new` exactly.
    fn state_parts(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
    ) -> &mut SeriesState {
        debug_assert!(is_canonical(labels));
        let idx = match self
            .series
            .binary_search_by(|(k, _)| cmp_parts(k, name, labels))
        {
            Ok(i) => i,
            Err(i) => {
                let state = self.fresh_state(kind);
                self.series.insert(i, (SeriesKey::new(name, labels), state));
                i
            }
        };
        &mut self.series[idx].1
    }

    /// Sets a gauge for the current wave (last write in a wave wins).
    pub fn gauge(&mut self, key: SeriesKey, value: f64) {
        self.state(key, MetricKind::Gauge).pending = Some(value);
    }

    /// Adds to a counter's delta for the current wave.
    pub fn add(&mut self, key: SeriesKey, delta: f64) {
        let state = self.state(key, MetricKind::Counter);
        state.pending = Some(state.pending.unwrap_or(0.0) + delta);
    }

    /// [`MetricRegistry::gauge`] from borrowed parts: allocation-free
    /// for an existing series when `labels` is canonical (strictly
    /// key-sorted); falls back to the normalizing path otherwise.
    pub fn gauge_parts(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        if is_canonical(labels) {
            self.state_parts(name, labels, MetricKind::Gauge).pending = Some(value);
        } else {
            self.gauge(SeriesKey::new(name, labels), value);
        }
    }

    /// [`MetricRegistry::add`] from borrowed parts: allocation-free for
    /// an existing series when `labels` is canonical (strictly
    /// key-sorted); falls back to the normalizing path otherwise.
    pub fn add_parts(&mut self, name: &str, labels: &[(&str, &str)], delta: f64) {
        if is_canonical(labels) {
            let state = self.state_parts(name, labels, MetricKind::Counter);
            state.pending = Some(state.pending.unwrap_or(0.0) + delta);
        } else {
            self.add(SeriesKey::new(name, labels), delta);
        }
    }

    /// Closes the wave: flushes touched gauges and all counters (dense)
    /// into their buffers, clearing pending values.
    pub fn sample(&mut self, wave: usize, t: TimeSecs) {
        for (_, state) in self.series.iter_mut() {
            let value = match (state.buffer.kind(), state.pending.take()) {
                (_, Some(v)) => v,
                (MetricKind::Counter, None) => 0.0,
                (MetricKind::Gauge, None) => continue,
            };
            state.buffer.push(Sample { wave, t, value });
        }
    }

    /// Looks up one series' buffer.
    pub fn buffer(&self, key: &SeriesKey) -> Option<&SeriesBuffer> {
        self.series
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| &self.series[i].1.buffer)
    }

    /// All series in deterministic (sorted-key) order.
    pub fn iter(&self) -> impl Iterator<Item = (&SeriesKey, &SeriesBuffer)> {
        self.series.iter().map(|(k, s)| (k, &s.buffer))
    }

    /// All series whose metric name matches, sorted by labels.
    pub fn by_name<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = (&'a SeriesKey, &'a SeriesBuffer)> {
        self.iter().filter(move |(k, _)| k.name == name)
    }

    /// Number of distinct series recorded.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        SeriesKey::new(name, labels)
    }

    #[test]
    fn gauges_sample_only_when_set() {
        let mut reg = MetricRegistry::new(RegistryConfig::default());
        reg.gauge(key("depth", &[]), 3.0);
        reg.sample(0, TimeSecs::from_millis(1.0));
        reg.sample(1, TimeSecs::from_millis(2.0)); // untouched wave
        reg.gauge(key("depth", &[]), 5.0);
        reg.sample(2, TimeSecs::from_millis(3.0));
        let buf = reg.buffer(&key("depth", &[])).unwrap();
        let waves: Vec<usize> = buf.recent().map(|s| s.wave).collect();
        assert_eq!(waves, vec![0, 2], "wave 1 produced no gauge sample");
    }

    #[test]
    fn counters_sample_densely_once_created() {
        let mut reg = MetricRegistry::new(RegistryConfig::default());
        reg.add(key("shed", &[("tenant", "a")]), 2.0);
        reg.sample(0, TimeSecs::from_millis(1.0));
        reg.sample(1, TimeSecs::from_millis(2.0)); // untouched -> 0.0
        reg.add(key("shed", &[("tenant", "a")]), 1.0);
        reg.add(key("shed", &[("tenant", "a")]), 1.0);
        reg.sample(2, TimeSecs::from_millis(3.0));
        let buf = reg.buffer(&key("shed", &[("tenant", "a")])).unwrap();
        let vals: Vec<f64> = buf.recent().map(|s| s.value).collect();
        assert_eq!(vals, vec![2.0, 0.0, 2.0]);
        assert_eq!(buf.window_sum(3), 4.0);
    }

    /// Renders the full registry state — keys, kinds, and every recent
    /// sample — so two registries can be compared byte-for-byte.
    fn dump(reg: &MetricRegistry) -> String {
        let mut out = String::new();
        for (key, buf) in reg.iter() {
            out.push_str(&format!("{} {:?}\n", key.render(), buf.kind()));
            for s in buf.recent() {
                out.push_str(&format!("  {} {:?} {:?}\n", s.wave, s.t, s.value));
            }
        }
        out
    }

    /// One test recording: metric name, label slice, value.
    type Recording<'a> = (&'a str, &'a [(&'a str, &'a str)], f64);

    #[test]
    fn parts_path_is_byte_identical_to_owned_key_path() {
        // Same recordings through the borrowed-parts hot path (canonical,
        // unsorted, and duplicate-key label slices) and through the
        // allocating owned-key path must leave identical state.
        let recordings: [Recording; 5] = [
            (
                "lat",
                &[("slo_class", "interactive"), ("tenant", "t0")],
                4.0,
            ),
            (
                "lat",
                &[("tenant", "t0"), ("slo_class", "interactive")],
                7.0,
            ),
            ("depth", &[], 3.0),
            ("shed", &[("reason", "queue-full"), ("tenant", "t1")], 2.0),
            (
                "shed",
                &[
                    ("tenant", "t1"),
                    ("reason", "queue-full"),
                    ("reason", "zzz"),
                ],
                1.0,
            ),
        ];
        let mut via_parts = MetricRegistry::new(RegistryConfig::default());
        let mut via_keys = MetricRegistry::new(RegistryConfig::default());
        for (wave, &(name, labels, value)) in recordings.iter().enumerate() {
            if name == "shed" {
                via_parts.add_parts(name, labels, value);
                via_keys.add(SeriesKey::new(name, labels), value);
            } else {
                via_parts.gauge_parts(name, labels, value);
                via_keys.gauge(SeriesKey::new(name, labels), value);
            }
            via_parts.sample(wave, TimeSecs::from_millis(wave as f64));
            via_keys.sample(wave, TimeSecs::from_millis(wave as f64));
        }
        assert_eq!(dump(&via_parts), dump(&via_keys));
        // The unsorted and duplicate-key slices normalized onto the
        // canonical series rather than creating new ones.
        assert_eq!(via_parts.len(), 3);
    }

    #[test]
    fn iteration_order_is_sorted_not_insertion() {
        let mut reg = MetricRegistry::new(RegistryConfig::default());
        reg.gauge(key("z_metric", &[]), 1.0);
        reg.gauge(key("a_metric", &[("tenant", "b")]), 1.0);
        reg.gauge(key("a_metric", &[("tenant", "a")]), 1.0);
        reg.sample(0, TimeSecs::ZERO);
        let names: Vec<String> = reg.iter().map(|(k, _)| k.render()).collect();
        assert_eq!(
            names,
            vec![
                "a_metric{tenant=\"a\"}",
                "a_metric{tenant=\"b\"}",
                "z_metric"
            ]
        );
        assert_eq!(reg.by_name("a_metric").count(), 2);
        assert_eq!(reg.len(), 3);
    }
}
