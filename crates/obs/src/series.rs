//! Labeled series identities and fixed-capacity downsampling buffers.
//!
//! A series is identified by a [`SeriesKey`] — a metric name plus a
//! sorted [`LabelSet`] (`tenant=`, `node=`, `slo_class=`, …). Samples
//! land in a [`SeriesBuffer`], which keeps two views of the data under a
//! hard memory bound:
//!
//! - a **recent window**: the last `recent_capacity` raw samples,
//!   verbatim — what alert rules and post-mortem bundles read;
//! - a **downsampled ring**: the whole run at degrading resolution.
//!   When the ring reaches capacity, adjacent buckets merge pairwise
//!   (min/max/sum/count combine exactly), halving the point count while
//!   preserving the full time range. Compaction is a pure function of
//!   the sample sequence, so two same-seed runs produce byte-identical
//!   buffers.
//!
//! Everything is sim-clock-timestamped ([`sn_arch::TimeSecs`]) and
//! allocation happens only on recording paths — a disabled observability
//! pipeline never constructs a buffer at all.

use serde::{Deserialize, Serialize};
use sn_arch::TimeSecs;
use std::collections::VecDeque;

/// A sorted, deduplicated set of `key=value` labels. Ordering is by the
/// sorted pair list, so any two sets built from the same pairs — in any
/// order — compare equal and sort identically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct LabelSet(Vec<(String, String)>);

impl LabelSet {
    /// An empty label set (a global, unlabeled series).
    pub fn empty() -> Self {
        LabelSet(Vec::new())
    }

    /// Builds a set from pairs; keys sort and deduplicate (pairs sort
    /// by key then value and dedup keeps the first of each key's run,
    /// so the smallest value for a repeated key wins).
    pub fn from_pairs(pairs: &[(&str, &str)]) -> Self {
        let mut v: Vec<(String, String)> = pairs
            .iter()
            .map(|&(k, val)| (k.to_string(), val.to_string()))
            .collect();
        v.sort();
        v.dedup_by(|a, b| a.0 == b.0);
        LabelSet(v)
    }

    /// The sorted pairs.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }

    /// Value of one label, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether no labels are set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Renders as `{k="v",k2="v2"}` (empty string for no labels) — the
    /// display form used in tables and alert messages.
    pub fn render(&self) -> String {
        if self.0.is_empty() {
            return String::new();
        }
        let body: Vec<String> = self.0.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{{{}}}", body.join(","))
    }
}

/// Identity of one time series: metric name plus labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeriesKey {
    /// Metric name (snake_case).
    pub name: String,
    /// Label dimensions.
    pub labels: LabelSet,
}

impl SeriesKey {
    /// Builds a key from a name and label pairs.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        SeriesKey {
            name: name.to_string(),
            labels: LabelSet::from_pairs(labels),
        }
    }

    /// `name{labels}` display form.
    pub fn render(&self) -> String {
        format!("{}{}", self.name, self.labels.render())
    }
}

/// What a series measures — determines how wave-boundary sampling
/// treats it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Point-in-time value set during the wave; sampled only on waves
    /// that set it.
    Gauge,
    /// Per-wave delta, accumulated during the wave and sampled every
    /// wave once the series exists (0.0 on untouched waves) — dense, so
    /// windowed sums over it are well-defined.
    Counter,
}

/// One raw sample: the value a series had at a wave boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Wave index the sample closed.
    pub wave: usize,
    /// Sim-clock timestamp (seconds of model time).
    pub t: TimeSecs,
    /// Gauge value or counter delta.
    pub value: f64,
}

/// One bucket of the downsampled ring: an aggregate over a contiguous
/// span of waves. A freshly pushed sample is a bucket of one; compaction
/// merges neighbours exactly (min/min, max/max, sum/sum, count/count).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// First wave the bucket covers.
    pub wave_first: usize,
    /// Last wave the bucket covers.
    pub wave_last: usize,
    /// Sim-clock of the first covered sample.
    pub t_first: TimeSecs,
    /// Sim-clock of the last covered sample.
    pub t_last: TimeSecs,
    /// Smallest covered sample.
    pub min: f64,
    /// Largest covered sample.
    pub max: f64,
    /// Sum of covered samples.
    pub sum: f64,
    /// Covered sample count.
    pub count: u64,
}

impl Bucket {
    fn of(s: Sample) -> Self {
        Bucket {
            wave_first: s.wave,
            wave_last: s.wave,
            t_first: s.t,
            t_last: s.t,
            min: s.value,
            max: s.value,
            sum: s.value,
            count: 1,
        }
    }

    fn merge(self, other: Bucket) -> Bucket {
        Bucket {
            wave_first: self.wave_first,
            wave_last: other.wave_last,
            t_first: self.t_first,
            t_last: other.t_last,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            sum: self.sum + other.sum,
            count: self.count + other.count,
        }
    }

    /// Mean of the covered samples (0.0 for an impossible empty bucket).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Fixed-capacity storage for one series: recent raw window plus the
/// full-run downsampling ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesBuffer {
    kind: MetricKind,
    ring_capacity: usize,
    recent_capacity: usize,
    ring: Vec<Bucket>,
    recent: VecDeque<Sample>,
    total_samples: u64,
}

impl SeriesBuffer {
    /// An empty buffer. Capacities below 2 are promoted to 2 so pairwise
    /// compaction is always possible.
    pub fn new(kind: MetricKind, ring_capacity: usize, recent_capacity: usize) -> Self {
        SeriesBuffer {
            kind,
            ring_capacity: ring_capacity.max(2),
            recent_capacity: recent_capacity.max(2),
            ring: Vec::new(),
            recent: VecDeque::new(),
            total_samples: 0,
        }
    }

    /// Gauge or counter.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// Records one wave-boundary sample.
    pub fn push(&mut self, sample: Sample) {
        if self.recent.len() == self.recent_capacity {
            self.recent.pop_front();
        }
        self.recent.push_back(sample);
        self.ring.push(Bucket::of(sample));
        self.total_samples += 1;
        if self.ring.len() >= self.ring_capacity {
            self.compact();
        }
    }

    /// Halves the ring by merging adjacent bucket pairs; an odd trailing
    /// bucket is kept as-is.
    fn compact(&mut self) {
        let mut merged = Vec::with_capacity(self.ring.len() / 2 + 1);
        let mut it = self.ring.drain(..);
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => merged.push(a.merge(b)),
                None => merged.push(a),
            }
        }
        drop(it);
        self.ring = merged;
    }

    /// The downsampled full-run ring, oldest first.
    pub fn buckets(&self) -> &[Bucket] {
        &self.ring
    }

    /// The raw recent window, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &Sample> {
        self.recent.iter()
    }

    /// The last `n` raw samples, oldest first (fewer when the window
    /// holds fewer).
    pub fn last_n(&self, n: usize) -> Vec<Sample> {
        let skip = self.recent.len().saturating_sub(n);
        self.recent.iter().skip(skip).copied().collect()
    }

    /// Latest raw sample, if any.
    pub fn last(&self) -> Option<Sample> {
        self.recent.back().copied()
    }

    /// Sum of the last `n` raw samples (0.0 when empty).
    pub fn window_sum(&self, n: usize) -> f64 {
        let skip = self.recent.len().saturating_sub(n);
        self.recent.iter().skip(skip).map(|s| s.value).sum()
    }

    /// Mean of the last `n` raw samples (0.0 when empty — no NaN).
    pub fn window_mean(&self, n: usize) -> f64 {
        let skip = self.recent.len().saturating_sub(n);
        let len = self.recent.len() - skip;
        if len == 0 {
            0.0
        } else {
            self.window_sum(n) / len as f64
        }
    }

    /// Samples recorded over the buffer's lifetime (compaction never
    /// loses mass: the ring's counts always sum to this).
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample(wave: usize, value: f64) -> Sample {
        Sample {
            wave,
            t: TimeSecs::from_millis(wave as f64),
            value,
        }
    }

    #[test]
    fn label_sets_sort_and_dedup() {
        let a = LabelSet::from_pairs(&[("tenant", "chat"), ("node", "0")]);
        let b = LabelSet::from_pairs(&[("node", "0"), ("tenant", "chat")]);
        assert_eq!(a, b);
        assert_eq!(a.get("tenant"), Some("chat"));
        assert_eq!(a.get("missing"), None);
        assert_eq!(a.render(), "{node=\"0\",tenant=\"chat\"}");
        assert_eq!(LabelSet::empty().render(), "");
        // Repeated key: one survives.
        let c = LabelSet::from_pairs(&[("k", "a"), ("k", "b")]);
        assert_eq!(c.pairs().len(), 1);
    }

    #[test]
    fn series_keys_order_deterministically() {
        let a = SeriesKey::new("shed", &[("tenant", "a")]);
        let b = SeriesKey::new("shed", &[("tenant", "b")]);
        let c = SeriesKey::new("waves", &[]);
        let mut v = vec![c.clone(), b.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }

    #[test]
    fn recent_window_keeps_the_tail() {
        let mut buf = SeriesBuffer::new(MetricKind::Gauge, 64, 4);
        for i in 0..10 {
            buf.push(sample(i, i as f64));
        }
        let recent: Vec<usize> = buf.recent().map(|s| s.wave).collect();
        assert_eq!(recent, vec![6, 7, 8, 9]);
        assert_eq!(buf.last().unwrap().wave, 9);
        assert_eq!(buf.last_n(2).len(), 2);
        assert_eq!(buf.last_n(100).len(), 4);
        assert_eq!(buf.window_sum(2), 8.0 + 9.0);
        assert!((buf.window_mean(4) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn empty_window_stats_are_zero_not_nan() {
        let buf = SeriesBuffer::new(MetricKind::Counter, 8, 8);
        assert_eq!(buf.window_sum(5), 0.0);
        assert_eq!(buf.window_mean(5), 0.0);
        assert!(buf.last().is_none());
    }

    #[test]
    fn ring_compacts_pairwise_and_preserves_mass() {
        let mut buf = SeriesBuffer::new(MetricKind::Counter, 8, 8);
        for i in 0..64 {
            buf.push(sample(i, 1.0));
        }
        assert!(buf.buckets().len() < 8, "ring stays under capacity");
        let total: u64 = buf.buckets().iter().map(|b| b.count).sum();
        assert_eq!(total, 64, "compaction never loses samples");
        assert_eq!(buf.total_samples(), 64);
        // Full time range preserved: first bucket starts at wave 0, last
        // ends at wave 63, and buckets are contiguous and ordered.
        assert_eq!(buf.buckets().first().unwrap().wave_first, 0);
        assert_eq!(buf.buckets().last().unwrap().wave_last, 63);
        for w in buf.buckets().windows(2) {
            assert_eq!(w[0].wave_last + 1, w[1].wave_first);
        }
    }

    #[test]
    fn bucket_aggregates_are_exact() {
        let mut buf = SeriesBuffer::new(MetricKind::Gauge, 2, 8);
        buf.push(sample(0, 3.0));
        buf.push(sample(1, 5.0)); // hits capacity 2 -> compacts to 1
        assert_eq!(buf.buckets().len(), 1);
        let b = buf.buckets()[0];
        assert_eq!(b.min, 3.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.sum, 8.0);
        assert_eq!(b.count, 2);
        assert!((b.mean() - 4.0).abs() < 1e-12);
    }

    proptest! {
        /// Mass conservation and span coverage hold for any sample count.
        #[test]
        fn compaction_conserves_mass(n in 1usize..500, cap in 2usize..32) {
            let mut buf = SeriesBuffer::new(MetricKind::Counter, cap, 16);
            for i in 0..n {
                buf.push(sample(i, (i % 7) as f64));
            }
            let total: u64 = buf.buckets().iter().map(|b| b.count).sum();
            prop_assert_eq!(total, n as u64);
            prop_assert!(buf.buckets().len() <= cap.max(2));
            prop_assert_eq!(buf.buckets().first().unwrap().wave_first, 0);
            prop_assert_eq!(buf.buckets().last().unwrap().wave_last, n - 1);
            let sum: f64 = buf.buckets().iter().map(|b| b.sum).sum();
            let direct: f64 = (0..n).map(|i| (i % 7) as f64).sum();
            prop_assert!((sum - direct).abs() < 1e-9);
        }
    }
}
