//! The flight recorder: a bounded ring of recent serving events that
//! dumps a post-mortem bundle when an incident opens.
//!
//! The serving loop feeds the recorder a low-rate stream of notable
//! [`FlightEntry`]s (sheds, node crashes/restores, scale events, alert
//! transitions). When an incident opens — an alert fires or a chaos
//! fault window starts — the recorder snapshots the ring (the *lead-in*)
//! and keeps capturing for a fixed number of tail waves, then freezes
//! the whole window into a [`PostMortem`] together with the recent
//! metric samples of every series, so the bundle covers roughly the 60
//! waves around the trigger. One capture is open at a time; triggers
//! arriving mid-capture extend the tail instead of opening a second
//! bundle (they are recorded as entries, so nothing is lost).

use crate::registry::MetricRegistry;
use crate::series::{Sample, SeriesKey};
use serde::{Deserialize, Serialize};
use sn_arch::TimeSecs;
use std::collections::VecDeque;

/// One notable event on the flight-recorder ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEntry {
    /// Wave index when the event happened.
    pub wave: usize,
    /// Sim-clock when the event happened.
    pub t: TimeSecs,
    /// Node the event concerns, when node-local.
    pub node: Option<usize>,
    /// Event kind (snake_case, e.g. `shed`, `node_crash`, `alert`).
    pub kind: String,
    /// Human-readable detail (tenant, reason, rule name, …).
    pub detail: String,
    /// Optional magnitude (count, latency, burn rate, …).
    pub value: f64,
}

/// A frozen post-mortem bundle: what happened around one incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PostMortem {
    /// What opened the capture (e.g. `alert:slo_burn_batch`,
    /// `fault_window:socket_link`, `chaos_outage`).
    pub trigger: String,
    /// Wave at which the capture opened.
    pub opened_wave: usize,
    /// Sim-clock at which the capture opened.
    pub opened_at: TimeSecs,
    /// Wave at which the capture closed (tail exhausted or run ended).
    pub closed_wave: usize,
    /// Flight entries covering lead-in + tail, oldest first.
    pub entries: Vec<FlightEntry>,
    /// Recent raw samples per series at close time, sorted by key.
    pub series: Vec<(SeriesKey, Vec<Sample>)>,
}

impl PostMortem {
    /// First wave any evidence in the bundle covers (entries or series).
    pub fn first_wave(&self) -> usize {
        let entry_first = self.entries.first().map(|e| e.wave);
        let series_first = self
            .series
            .iter()
            .filter_map(|(_, s)| s.first().map(|x| x.wave))
            .min();
        match (entry_first, series_first) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => self.opened_wave,
        }
    }

    /// Last wave any evidence in the bundle covers.
    pub fn last_wave(&self) -> usize {
        let entry_last = self.entries.last().map(|e| e.wave);
        let series_last = self
            .series
            .iter()
            .filter_map(|(_, s)| s.last().map(|x| x.wave))
            .max();
        match (entry_last, series_last) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => self.closed_wave,
        }
    }

    /// Whether the bundle's evidence spans the given wave range.
    pub fn covers(&self, first: usize, last: usize) -> bool {
        self.first_wave() <= first && self.last_wave() >= last
    }
}

/// Sizing knobs for the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecorderConfig {
    /// Ring capacity: how many recent entries the lead-in can hold.
    pub ring_capacity: usize,
    /// How many waves after a trigger the capture keeps recording.
    pub tail_waves: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            ring_capacity: 256,
            tail_waves: 30,
        }
    }
}

#[derive(Debug, Clone)]
struct OpenCapture {
    trigger: String,
    opened_wave: usize,
    opened_at: TimeSecs,
    entries: Vec<FlightEntry>,
    tail_left: usize,
}

/// The bounded ring plus capture state machine. See the module docs.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    config: RecorderConfig,
    ring: VecDeque<FlightEntry>,
    open: Option<OpenCapture>,
    finished: Vec<PostMortem>,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new(config: RecorderConfig) -> Self {
        FlightRecorder {
            config,
            ring: VecDeque::new(),
            open: None,
            finished: Vec::new(),
        }
    }

    /// Records one entry (always lands on the ring; also on the open
    /// capture, if any).
    pub fn record(&mut self, entry: FlightEntry) {
        if self.ring.len() == self.config.ring_capacity {
            self.ring.pop_front();
        }
        if let Some(open) = &mut self.open {
            open.entries.push(entry.clone());
        }
        self.ring.push_back(entry);
    }

    /// Opens a capture (or extends the open one's tail). The ring
    /// becomes the lead-in.
    pub fn incident(&mut self, trigger: &str, wave: usize, at: TimeSecs) {
        match &mut self.open {
            Some(open) => {
                // Mid-capture trigger: reset the tail so the bundle
                // stretches to cover the newest incident too.
                open.tail_left = self.config.tail_waves;
                open.entries.push(FlightEntry {
                    wave,
                    t: at,
                    node: None,
                    kind: "incident".to_string(),
                    detail: trigger.to_string(),
                    value: 0.0,
                });
            }
            None => {
                self.open = Some(OpenCapture {
                    trigger: trigger.to_string(),
                    opened_wave: wave,
                    opened_at: at,
                    entries: self.ring.iter().cloned().collect(),
                    tail_left: self.config.tail_waves,
                });
            }
        }
    }

    /// Ticks the capture state machine at a wave boundary; freezes the
    /// open capture into a [`PostMortem`] when its tail runs out.
    /// Returns whether a bundle was finalized this wave.
    pub fn end_wave(&mut self, wave: usize, registry: &MetricRegistry) -> bool {
        let exhausted = match &mut self.open {
            Some(open) => {
                open.tail_left = open.tail_left.saturating_sub(1);
                open.tail_left == 0
            }
            None => false,
        };
        if exhausted {
            self.finalize(wave, registry);
        }
        exhausted
    }

    /// Freezes the open capture (if any) — called on tail exhaustion and
    /// at end of run so an incident near the end still yields a bundle.
    pub fn finalize(&mut self, wave: usize, registry: &MetricRegistry) {
        let Some(open) = self.open.take() else {
            return;
        };
        let series: Vec<(SeriesKey, Vec<Sample>)> = registry
            .iter()
            .map(|(key, buf)| (key.clone(), buf.recent().copied().collect()))
            .collect();
        self.finished.push(PostMortem {
            trigger: open.trigger,
            opened_wave: open.opened_wave,
            opened_at: open.opened_at,
            closed_wave: wave,
            entries: open.entries,
            series,
        });
    }

    /// Whether a capture is currently open.
    pub fn is_capturing(&self) -> bool {
        self.open.is_some()
    }

    /// All frozen bundles, in incident order.
    pub fn postmortems(&self) -> &[PostMortem] {
        &self.finished
    }

    /// Consumes the recorder, returning the frozen bundles.
    pub fn into_postmortems(self) -> Vec<PostMortem> {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricRegistry, RegistryConfig};

    fn entry(wave: usize, kind: &str) -> FlightEntry {
        FlightEntry {
            wave,
            t: TimeSecs::from_millis(wave as f64),
            node: None,
            kind: kind.to_string(),
            detail: String::new(),
            value: 1.0,
        }
    }

    #[test]
    fn capture_includes_lead_in_and_tail() {
        let mut rec = FlightRecorder::new(RecorderConfig {
            ring_capacity: 4,
            tail_waves: 3,
        });
        let reg = MetricRegistry::new(RegistryConfig::default());
        for w in 0..6 {
            rec.record(entry(w, "pre"));
        }
        rec.incident("alert:test", 6, TimeSecs::from_millis(6.0));
        assert!(rec.is_capturing());
        rec.record(entry(6, "during"));
        for w in 6..9 {
            let closed = rec.end_wave(w, &reg);
            assert_eq!(closed, w == 8, "tail of 3 closes on the third tick");
        }
        let pm = &rec.postmortems()[0];
        assert_eq!(pm.trigger, "alert:test");
        assert_eq!(pm.opened_wave, 6);
        assert_eq!(pm.closed_wave, 8);
        // Ring cap 4 -> lead-in is waves 2..=5, plus the during entry.
        let waves: Vec<usize> = pm.entries.iter().map(|e| e.wave).collect();
        assert_eq!(waves, vec![2, 3, 4, 5, 6]);
        assert_eq!(pm.first_wave(), 2);
        assert_eq!(pm.last_wave(), 6);
        assert!(pm.covers(3, 6));
        assert!(!pm.covers(1, 6));
        assert!(!rec.is_capturing());
    }

    #[test]
    fn mid_capture_trigger_extends_instead_of_forking() {
        let mut rec = FlightRecorder::new(RecorderConfig {
            ring_capacity: 8,
            tail_waves: 2,
        });
        let reg = MetricRegistry::new(RegistryConfig::default());
        rec.incident("alert:a", 0, TimeSecs::ZERO);
        rec.end_wave(0, &reg); // tail 2 -> 1
        rec.incident("alert:b", 1, TimeSecs::from_millis(1.0)); // resets tail
        rec.end_wave(1, &reg);
        rec.end_wave(2, &reg);
        assert_eq!(rec.postmortems().len(), 1, "one bundle, not two");
        let pm = &rec.postmortems()[0];
        assert_eq!(pm.trigger, "alert:a");
        assert!(pm
            .entries
            .iter()
            .any(|e| e.kind == "incident" && e.detail == "alert:b"));
    }

    #[test]
    fn finalize_flushes_an_open_capture_at_end_of_run() {
        let mut rec = FlightRecorder::new(RecorderConfig::default());
        let mut reg = MetricRegistry::new(RegistryConfig::default());
        reg.gauge(SeriesKey::new("lat", &[]), 9.0);
        reg.sample(5, TimeSecs::from_millis(5.0));
        rec.incident("fault_window:link", 5, TimeSecs::from_millis(5.0));
        rec.finalize(6, &reg);
        assert_eq!(rec.postmortems().len(), 1);
        let pm = &rec.postmortems()[0];
        assert_eq!(pm.series.len(), 1);
        assert_eq!(pm.series[0].1.len(), 1);
        // Series evidence alone defines coverage.
        assert_eq!(pm.first_wave(), 5);
        // Finalize with nothing open is a no-op.
        rec.finalize(7, &reg);
        assert_eq!(rec.postmortems().len(), 1);
    }
}
