//! Hand-rolled JSON export of an [`ObsReport`].
//!
//! The vendored `serde` is a marker stub (see `sn-trace::chrome`), so the
//! document is written by hand with a fixed key order, sorted series, and
//! `{:?}` shortest-roundtrip float formatting — byte-identical for
//! identical reports, which is what the `--jobs` parity tests diff. The
//! document parses with `sn_trace::json::parse`.

use crate::alert::AlertEvent;
use crate::recorder::{FlightEntry, PostMortem};
use crate::series::{LabelSet, MetricKind, Sample, SeriesBuffer, SeriesKey};
use crate::ObsReport;
use sn_arch::TimeSecs;

/// Version tag stamped into every export (`"schema"` field).
pub const SCHEMA: &str = "sn-obs/v1";

/// Serializes a report as a standalone JSON document.
pub fn to_json(report: &ObsReport) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"schema\":");
    write_json_string(&mut out, SCHEMA);
    out.push_str(",\"waves\":");
    out.push_str(&report.waves.to_string());
    out.push_str(",\"series\":[");
    for (i, (key, buf)) in report.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_series(&mut out, key, buf);
    }
    out.push_str("],\"alerts\":[");
    for (i, alert) in report.alerts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_alert(&mut out, alert);
    }
    out.push_str("],\"postmortems\":[");
    for (i, pm) in report.postmortems.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_postmortem(&mut out, pm);
    }
    out.push_str("]}");
    out
}

fn write_series(out: &mut String, key: &SeriesKey, buf: &SeriesBuffer) {
    out.push_str("{\"name\":");
    write_json_string(out, &key.name);
    out.push_str(",\"labels\":");
    write_labels(out, &key.labels);
    out.push_str(",\"kind\":");
    write_json_string(
        out,
        match buf.kind() {
            MetricKind::Gauge => "gauge",
            MetricKind::Counter => "counter",
        },
    );
    out.push_str(",\"total_samples\":");
    out.push_str(&buf.total_samples().to_string());
    out.push_str(",\"buckets\":[");
    for (i, b) in buf.buckets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"wave_first\":");
        out.push_str(&b.wave_first.to_string());
        out.push_str(",\"wave_last\":");
        out.push_str(&b.wave_last.to_string());
        out.push_str(",\"t_first\":");
        write_time(out, b.t_first);
        out.push_str(",\"t_last\":");
        write_time(out, b.t_last);
        out.push_str(",\"min\":");
        write_f64(out, b.min);
        out.push_str(",\"max\":");
        write_f64(out, b.max);
        out.push_str(",\"sum\":");
        write_f64(out, b.sum);
        out.push_str(",\"count\":");
        out.push_str(&b.count.to_string());
        out.push('}');
    }
    out.push_str("],\"recent\":[");
    for (i, s) in buf.recent().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_sample(out, s);
    }
    out.push_str("]}");
}

fn write_sample(out: &mut String, s: &Sample) {
    out.push_str("{\"wave\":");
    out.push_str(&s.wave.to_string());
    out.push_str(",\"t\":");
    write_time(out, s.t);
    out.push_str(",\"value\":");
    write_f64(out, s.value);
    out.push('}');
}

fn write_alert(out: &mut String, a: &AlertEvent) {
    out.push_str("{\"rule\":");
    write_json_string(out, &a.rule);
    out.push_str(",\"labels\":");
    write_labels(out, &a.labels);
    out.push_str(",\"kind\":");
    write_json_string(out, a.kind.name());
    out.push_str(",\"wave\":");
    out.push_str(&a.wave.to_string());
    out.push_str(",\"at\":");
    write_time(out, a.at);
    out.push_str(",\"value\":");
    write_f64(out, a.value);
    out.push_str(",\"threshold\":");
    write_f64(out, a.threshold);
    out.push('}');
}

fn write_postmortem(out: &mut String, pm: &PostMortem) {
    out.push_str("{\"trigger\":");
    write_json_string(out, &pm.trigger);
    out.push_str(",\"opened_wave\":");
    out.push_str(&pm.opened_wave.to_string());
    out.push_str(",\"opened_at\":");
    write_time(out, pm.opened_at);
    out.push_str(",\"closed_wave\":");
    out.push_str(&pm.closed_wave.to_string());
    out.push_str(",\"entries\":[");
    for (i, e) in pm.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_entry(out, e);
    }
    out.push_str("],\"series\":[");
    for (i, (key, samples)) in pm.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_json_string(out, &key.name);
        out.push_str(",\"labels\":");
        write_labels(out, &key.labels);
        out.push_str(",\"samples\":[");
        for (j, s) in samples.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_sample(out, s);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

fn write_entry(out: &mut String, e: &FlightEntry) {
    out.push_str("{\"wave\":");
    out.push_str(&e.wave.to_string());
    out.push_str(",\"t\":");
    write_time(out, e.t);
    out.push_str(",\"node\":");
    match e.node {
        Some(n) => out.push_str(&n.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"kind\":");
    write_json_string(out, &e.kind);
    out.push_str(",\"detail\":");
    write_json_string(out, &e.detail);
    out.push_str(",\"value\":");
    write_f64(out, e.value);
    out.push('}');
}

fn write_labels(out: &mut String, labels: &LabelSet) {
    out.push('{');
    for (i, (k, v)) in labels.pairs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, k);
        out.push(':');
        write_json_string(out, v);
    }
    out.push('}');
}

fn write_time(out: &mut String, t: TimeSecs) {
    write_f64(out, t.as_secs());
}

/// Writes a finite float using shortest-roundtrip `{:?}` formatting;
/// non-finite values degrade to 0 (mirrors `sn-trace::chrome`).
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push('0');
    }
}

/// Escapes and quotes a string for JSON (mirrors `sn-trace::chrome`).
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::AlertKind;

    #[test]
    fn empty_report_is_valid_json_shape() {
        let report = ObsReport {
            waves: 0,
            series: Vec::new(),
            alerts: Vec::new(),
            postmortems: Vec::new(),
        };
        let json = to_json(&report);
        assert!(json.starts_with("{\"schema\":\"sn-obs/v1\""));
        assert!(json.contains("\"series\":[]"));
        assert!(json.contains("\"alerts\":[]"));
        assert!(json.ends_with("\"postmortems\":[]}"));
    }

    #[test]
    fn strings_are_escaped() {
        let report = ObsReport {
            waves: 1,
            series: Vec::new(),
            alerts: vec![AlertEvent {
                rule: "has \"quotes\" and \\slash\n".to_string(),
                labels: LabelSet::from_pairs(&[("tenant", "naïve")]),
                kind: AlertKind::Firing,
                wave: 0,
                at: TimeSecs::ZERO,
                value: 1.5,
                threshold: 1.0,
            }],
            postmortems: Vec::new(),
        };
        let json = to_json(&report);
        assert!(json.contains("has \\\"quotes\\\" and \\\\slash\\n"));
        assert!(json.contains("naïve"), "non-ASCII passes through raw");
    }
}
