//! Declarative alert rules evaluated against the metric registry at
//! every wave boundary.
//!
//! Rules are data ([`AlertRule`] + [`AlertCondition`]), evaluation is a
//! pure function of the registry's recent windows, and transitions are
//! typed [`AlertEvent`]s: a rule that starts breaching emits `Firing`
//! once, stays silent while it keeps breaching, and emits `Resolved`
//! once when it stops. The burn-rate condition implements the standard
//! SRE multi-window form: the error-budget burn ratio
//! `(bad/total)/budget` must exceed `factor` over BOTH a fast and a
//! slow window to fire, and the fast window alone dropping below
//! resolves it — fast detection without flapping on single-wave blips.

use crate::registry::MetricRegistry;
use crate::series::{LabelSet, SeriesKey};
use serde::{Deserialize, Serialize};
use sn_arch::TimeSecs;
use std::collections::BTreeMap;

/// What a rule watches. Window sizes are in waves over the raw recent
/// window (so they must fit `RegistryConfig::recent_capacity`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlertCondition {
    /// Mean of a gauge over `window` waves exceeds `threshold` (e.g.
    /// p99-over-threshold on a latency gauge).
    GaugeAbove {
        /// Gauge series to watch.
        series: SeriesKey,
        /// Firing threshold (exclusive).
        threshold: f64,
        /// Averaging window in waves.
        window: usize,
    },
    /// Mean of a gauge over `window` waves drops below `threshold`
    /// (e.g. an HBM-hit-rate floor). Only evaluates once the series has
    /// at least `window` samples, so a cold start never fires.
    GaugeBelow {
        /// Gauge series to watch.
        series: SeriesKey,
        /// Firing floor (exclusive).
        threshold: f64,
        /// Averaging window in waves.
        window: usize,
    },
    /// `sum(bad)/sum(total)` over `window` waves exceeds `threshold`
    /// (e.g. shed-rate). Evaluates to 0 while `sum(total)` is 0.
    RatioAbove {
        /// Numerator counter series.
        bad: SeriesKey,
        /// Denominator counter series.
        total: SeriesKey,
        /// Firing threshold (exclusive) on the ratio.
        threshold: f64,
        /// Summing window in waves.
        window: usize,
    },
    /// Multi-window SLO burn rate: fires when
    /// `(sum(bad)/sum(total))/budget > factor` over both windows;
    /// resolves when the fast window drops to `factor` or below.
    BurnRate {
        /// Counter series of SLO-violating outcomes.
        bad: SeriesKey,
        /// Counter series of all outcomes.
        total: SeriesKey,
        /// Error budget as a fraction (e.g. 0.05 = 95% SLO target).
        budget: f64,
        /// Fast window in waves (detection + resolution).
        fast_window: usize,
        /// Slow window in waves (guards against blips).
        slow_window: usize,
        /// Burn-rate multiple that fires the alert.
        factor: f64,
    },
}

/// A named rule over one condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// Rule name, unique within the engine (e.g. `slo_burn_batch`).
    pub name: String,
    /// Labels attached to emitted events (typically the tenant/class
    /// the watched series belongs to).
    pub labels: LabelSet,
    /// The watched condition.
    pub condition: AlertCondition,
}

/// Transition direction of an [`AlertEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertKind {
    /// Rule entered the breaching state.
    Firing,
    /// Rule left the breaching state.
    Resolved,
}

impl AlertKind {
    /// Lower-case display name.
    pub fn name(&self) -> &'static str {
        match self {
            AlertKind::Firing => "firing",
            AlertKind::Resolved => "resolved",
        }
    }
}

/// One firing/resolved transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// Name of the rule that transitioned.
    pub rule: String,
    /// The rule's labels.
    pub labels: LabelSet,
    /// Transition direction.
    pub kind: AlertKind,
    /// Wave index at which the transition was observed.
    pub wave: usize,
    /// Sim-clock at the transition.
    pub at: TimeSecs,
    /// The evaluated value (mean, ratio, or fast-window burn rate).
    pub value: f64,
    /// The threshold/factor the value was compared against.
    pub threshold: f64,
}

#[derive(Debug, Clone, Default)]
struct RuleState {
    firing: bool,
}

/// Evaluates a fixed rule list each wave and tracks firing state.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: BTreeMap<String, RuleState>,
}

/// Mean over the last `window` samples of a series, with the sample
/// count actually covered; `None` if the series doesn't exist yet.
fn windowed_mean(
    registry: &MetricRegistry,
    series: &SeriesKey,
    window: usize,
) -> Option<(f64, usize)> {
    let buf = registry.buffer(series)?;
    let n = buf.last_n(window).len();
    Some((buf.window_mean(window), n))
}

fn windowed_ratio(
    registry: &MetricRegistry,
    bad: &SeriesKey,
    total: &SeriesKey,
    window: usize,
) -> f64 {
    let bad_sum = registry
        .buffer(bad)
        .map(|b| b.window_sum(window))
        .unwrap_or(0.0);
    let total_sum = registry
        .buffer(total)
        .map(|b| b.window_sum(window))
        .unwrap_or(0.0);
    if total_sum <= 0.0 {
        0.0
    } else {
        bad_sum / total_sum
    }
}

impl AlertEngine {
    /// Builds an engine over a rule list. Rule names should be unique;
    /// a duplicated name shares firing state.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        AlertEngine {
            rules,
            states: BTreeMap::new(),
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Whether a rule is currently firing.
    pub fn is_firing(&self, rule: &str) -> bool {
        self.states.get(rule).map(|s| s.firing).unwrap_or(false)
    }

    /// Evaluates every rule against the registry's recent windows and
    /// returns the transitions observed this wave, in rule order.
    pub fn evaluate(
        &mut self,
        registry: &MetricRegistry,
        wave: usize,
        at: TimeSecs,
    ) -> Vec<AlertEvent> {
        let mut events = Vec::new();
        for rule in &self.rules {
            // (breaching-now, evaluated value, threshold). `None` means
            // the rule can't be evaluated yet (series missing / window
            // not yet full for floor rules): keep prior state.
            let verdict: Option<(bool, f64, f64)> = match &rule.condition {
                AlertCondition::GaugeAbove {
                    series,
                    threshold,
                    window,
                } => windowed_mean(registry, series, *window)
                    .map(|(mean, _)| (mean > *threshold, mean, *threshold)),
                AlertCondition::GaugeBelow {
                    series,
                    threshold,
                    window,
                } => windowed_mean(registry, series, *window).and_then(|(mean, n)| {
                    if n < *window {
                        None
                    } else {
                        Some((mean < *threshold, mean, *threshold))
                    }
                }),
                AlertCondition::RatioAbove {
                    bad,
                    total,
                    threshold,
                    window,
                } => {
                    let ratio = windowed_ratio(registry, bad, total, *window);
                    Some((ratio > *threshold, ratio, *threshold))
                }
                AlertCondition::BurnRate {
                    bad,
                    total,
                    budget,
                    fast_window,
                    slow_window,
                    factor,
                } => {
                    let budget = budget.max(f64::EPSILON);
                    let fast = windowed_ratio(registry, bad, total, *fast_window) / budget;
                    let slow = windowed_ratio(registry, bad, total, *slow_window) / budget;
                    let firing_now = self.states.get(&rule.name).map(|s| s.firing) == Some(true);
                    let breaching = if firing_now {
                        // Resolution is fast-window-only.
                        fast > *factor
                    } else {
                        fast > *factor && slow > *factor
                    };
                    Some((breaching, fast, *factor))
                }
            };
            let Some((breaching, value, threshold)) = verdict else {
                continue;
            };
            let state = self.states.entry(rule.name.clone()).or_default();
            if breaching != state.firing {
                state.firing = breaching;
                events.push(AlertEvent {
                    rule: rule.name.clone(),
                    labels: rule.labels.clone(),
                    kind: if breaching {
                        AlertKind::Firing
                    } else {
                        AlertKind::Resolved
                    },
                    wave,
                    at,
                    value,
                    threshold,
                });
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;

    fn key(name: &str) -> SeriesKey {
        SeriesKey::new(name, &[])
    }

    fn engine_with(condition: AlertCondition) -> AlertEngine {
        AlertEngine::new(vec![AlertRule {
            name: "r".into(),
            labels: LabelSet::empty(),
            condition,
        }])
    }

    /// Drives one wave: set/add -> sample -> evaluate.
    fn step(
        reg: &mut MetricRegistry,
        eng: &mut AlertEngine,
        wave: usize,
        fill: impl FnOnce(&mut MetricRegistry),
    ) -> Vec<AlertEvent> {
        fill(reg);
        let t = TimeSecs::from_millis(wave as f64);
        reg.sample(wave, t);
        eng.evaluate(reg, wave, t)
    }

    #[test]
    fn gauge_above_fires_once_and_resolves_once() {
        let mut reg = MetricRegistry::new(RegistryConfig::default());
        let mut eng = engine_with(AlertCondition::GaugeAbove {
            series: key("lat"),
            threshold: 10.0,
            window: 2,
        });
        assert!(step(&mut reg, &mut eng, 0, |r| r.gauge(key("lat"), 5.0)).is_empty());
        let fired = step(&mut reg, &mut eng, 1, |r| r.gauge(key("lat"), 50.0));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::Firing);
        assert!(eng.is_firing("r"));
        // Still breaching: no repeat event.
        assert!(step(&mut reg, &mut eng, 2, |r| r.gauge(key("lat"), 50.0)).is_empty());
        // Mean over last 2 drops below threshold: resolves.
        let resolved = step(&mut reg, &mut eng, 3, |r| r.gauge(key("lat"), 1.0));
        assert!(step(&mut reg, &mut eng, 4, |r| r.gauge(key("lat"), 1.0))
            .iter()
            .chain(resolved.iter())
            .any(|e| e.kind == AlertKind::Resolved));
        assert!(!eng.is_firing("r"));
    }

    #[test]
    fn gauge_below_waits_for_a_full_window() {
        let mut reg = MetricRegistry::new(RegistryConfig::default());
        let mut eng = engine_with(AlertCondition::GaugeBelow {
            series: key("hit_rate"),
            threshold: 0.5,
            window: 3,
        });
        // Two low samples: window not full, must not fire.
        assert!(step(&mut reg, &mut eng, 0, |r| r.gauge(key("hit_rate"), 0.1)).is_empty());
        assert!(step(&mut reg, &mut eng, 1, |r| r.gauge(key("hit_rate"), 0.1)).is_empty());
        let fired = step(&mut reg, &mut eng, 2, |r| r.gauge(key("hit_rate"), 0.1));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::Firing);
    }

    #[test]
    fn ratio_above_is_zero_safe_on_empty_totals() {
        let mut reg = MetricRegistry::new(RegistryConfig::default());
        let mut eng = engine_with(AlertCondition::RatioAbove {
            bad: key("shed"),
            total: key("admitted"),
            threshold: 0.2,
            window: 4,
        });
        // No totals at all: ratio is defined as 0, never NaN.
        assert!(step(&mut reg, &mut eng, 0, |_| {}).is_empty());
        assert!(!eng.is_firing("r"));
        // 3 shed of 4 admitted -> 0.75 > 0.2.
        let fired = step(&mut reg, &mut eng, 1, |r| {
            r.add(key("shed"), 3.0);
            r.add(key("admitted"), 4.0);
        });
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::Firing);
        assert!((fired[0].value - 0.75).abs() < 1e-12);
    }

    #[test]
    fn burn_rate_needs_both_windows_but_resolves_on_fast() {
        let mut reg = MetricRegistry::new(RegistryConfig::default());
        // budget 0.1, factor 2 -> fires when >20% of outcomes are bad
        // over both a 2-wave and a 6-wave window.
        let mut eng = engine_with(AlertCondition::BurnRate {
            bad: key("bad"),
            total: key("total"),
            budget: 0.1,
            fast_window: 2,
            slow_window: 6,
            factor: 2.0,
        });
        // Waves 0-3: healthy traffic dilutes the slow window.
        for wave in 0..4 {
            let events = step(&mut reg, &mut eng, wave, |r| {
                r.add(key("bad"), 0.0);
                r.add(key("total"), 10.0);
            });
            assert!(events.is_empty());
        }
        // Wave 4: fast window is hot (10/20 bad = burn 50) but the slow
        // window (10/60) is burn ~16.7 < factor? budget 0.1 -> slow burn
        // 1.67 < 2.0: must NOT fire yet.
        let events = step(&mut reg, &mut eng, 4, |r| {
            r.add(key("bad"), 10.0);
            r.add(key("total"), 10.0);
        });
        assert!(events.is_empty(), "slow window still guards: {events:?}");
        // Wave 5: another bad wave pushes the slow window over too.
        let events = step(&mut reg, &mut eng, 5, |r| {
            r.add(key("bad"), 10.0);
            r.add(key("total"), 10.0);
        });
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AlertKind::Firing);
        // Two healthy waves clear the fast window -> resolves even
        // though the 6-wave slow window still remembers the incident.
        let mut resolved = Vec::new();
        for wave in 6..8 {
            resolved.extend(step(&mut reg, &mut eng, wave, |r| {
                r.add(key("bad"), 0.0);
                r.add(key("total"), 10.0);
            }));
        }
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].kind, AlertKind::Resolved);
        assert!(!eng.is_firing("r"));
    }
}
