//! Pattern Memory Unit model (§IV-B): banked scratchpad accesses with
//! conflict accounting, programmable bank bits, the diagonally striped
//! transpose layout, sequence-ID write reordering, and the partitionable
//! address-ALU pipeline.

use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, Cycles, PmuSpec};

/// How scratchpad addresses map to banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankMapping {
    /// Fixed mapping: bank = bits just above the vector-word offset.
    /// This is the SN10 behavior (§VII: double buffers of arbitrary tensor
    /// shapes could collide in the same banks).
    Fixed,
    /// Software-programmed bank-bit location: bank = bits starting at
    /// `shift`. SN40L lets the compiler place these to break conflicts.
    Programmable { shift: u32 },
}

/// Timing and conflict model of one PMU scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmuModel {
    spec: PmuSpec,
    mapping: BankMapping,
}

impl PmuModel {
    pub fn new(spec: PmuSpec, mapping: BankMapping) -> Self {
        PmuModel { spec, mapping }
    }

    pub fn spec(&self) -> &PmuSpec {
        &self.spec
    }

    pub fn mapping(&self) -> BankMapping {
        self.mapping
    }

    /// Bank index of a byte address under the configured mapping.
    pub fn bank_of(&self, addr: u64) -> usize {
        let banks = self.spec.banks as u64;
        let word = self.spec.vector_width.as_u64() / banks; // bytes per bank word
        let shift = match self.mapping {
            BankMapping::Fixed => word.trailing_zeros(),
            BankMapping::Programmable { shift } => shift,
        };
        ((addr >> shift) % banks) as usize
    }

    /// Cycles to service one vector access touching the given byte
    /// addresses: addresses in distinct banks proceed in parallel; the
    /// worst-conflicted bank serializes the access.
    pub fn access_cycles(&self, addrs: &[u64]) -> Cycles {
        if addrs.is_empty() {
            return Cycles::ZERO;
        }
        let mut counts = vec![0u64; self.spec.banks];
        for &a in addrs {
            counts[self.bank_of(a)] += 1;
        }
        Cycles::new(counts.into_iter().max().unwrap_or(0))
    }

    /// [`PmuModel::access_cycles`] plus counter recording: adds the access
    /// cycles to [`Counter::PmuAccessCycles`] and the excess over the
    /// one-cycle conflict-free ideal to [`Counter::PmuBankConflictCycles`].
    /// Timing is identical to the untraced call.
    ///
    /// [`Counter::PmuAccessCycles`]: sn_trace::Counter::PmuAccessCycles
    /// [`Counter::PmuBankConflictCycles`]: sn_trace::Counter::PmuBankConflictCycles
    pub fn access_cycles_traced(&self, addrs: &[u64], tracer: &sn_trace::Tracer) -> Cycles {
        let cycles = self.access_cycles(addrs);
        if tracer.is_enabled() && !addrs.is_empty() {
            tracer.count(sn_trace::Counter::PmuAccessCycles, cycles.as_u64());
            tracer.count(
                sn_trace::Counter::PmuBankConflictCycles,
                cycles.as_u64().saturating_sub(1),
            );
        }
        cycles
    }

    /// Cycles to stream `bytes` sequentially through the scratchpad at the
    /// vector width (the conflict-free ideal).
    pub fn stream_cycles(&self, bytes: Bytes) -> Cycles {
        Cycles::new(bytes.as_u64().div_ceil(self.spec.vector_width.as_u64()))
    }

    /// Per-vector cycles for a strided access pattern: `lanes` addresses
    /// at byte `stride` apart starting at `base`.
    pub fn strided_access_cycles(&self, base: u64, stride: u64, lanes: usize) -> Cycles {
        let addrs: Vec<u64> = (0..lanes as u64).map(|i| base + i * stride).collect();
        self.access_cycles(&addrs)
    }

    /// Cycles to read an `rows x cols` BF16 tensor column-major (i.e.
    /// transposed) when it was written row-major *naively* (row-linear
    /// layout). Lane `i` of each vector reads element `(i, c)`, so the
    /// addresses stride by the row pitch — the classic bank-conflict case.
    pub fn naive_transposed_read_cycles(&self, rows: usize, cols: usize) -> Cycles {
        let pitch = (cols * 2) as u64;
        let lanes = (self.spec.vector_width.as_u64() / 2) as usize; // BF16 lanes
        let mut total = 0u64;
        for c in 0..cols {
            let mut r = 0;
            while r < rows {
                let n = lanes.min(rows - r);
                let base = (c * 2) as u64 + r as u64 * pitch;
                total += self.strided_access_cycles(base, pitch, n).as_u64();
                r += n;
            }
        }
        Cycles::new(total)
    }

    /// Cycles to read the same tensor transposed when it was written in the
    /// *diagonally striped* format (§IV-B): element `(r, c)` lives in bank
    /// `(r + c) % banks`, so both row-order and column-order vectors touch
    /// all banks — full bandwidth either way.
    pub fn striped_transposed_read_cycles(&self, rows: usize, cols: usize) -> Cycles {
        // Conflict-free by construction; one vector per `lanes` elements.
        let lanes = (self.spec.vector_width.as_u64() / 2).max(1);
        let elems = (rows * cols) as u64;
        Cycles::new(elems.div_ceil(lanes))
    }

    /// Splits the address-ALU pipeline between concurrent read and write
    /// address generators (§IV-B). Returns the per-address issue interval
    /// (cycles between addresses) for each side, given the complexity
    /// (ALU-op count) of each side's address expression.
    ///
    /// # Panics
    ///
    /// Panics if the requested split exceeds the available stages.
    pub fn partition_addr_pipeline(
        &self,
        read_stages: usize,
        write_stages: usize,
        read_expr_ops: usize,
        write_expr_ops: usize,
    ) -> (Cycles, Cycles) {
        assert!(
            read_stages + write_stages <= self.spec.addr_alu_stages,
            "requested {read_stages}+{write_stages} stages, PMU has {}",
            self.spec.addr_alu_stages
        );
        let interval = |stages: usize, ops: usize| -> Cycles {
            if ops == 0 {
                return Cycles::new(1);
            }
            // A pipeline of `stages` ALUs retires `stages` ops per cycle of
            // expression work; an expression needing more ops than stages
            // must loop, lowering address throughput.
            Cycles::new(ops.div_ceil(stages.max(1)) as u64)
        };
        (
            interval(read_stages, read_expr_ops),
            interval(write_stages, write_expr_ops),
        )
    }
}

/// A sequence-ID reorder buffer (§IV-C "Many-to-one and Data Reordering"):
/// vector packets arriving out of order carry a software-programmed
/// sequence ID which the PMU uses to compute write addresses, restoring
/// logical order in the scratchpad.
#[derive(Debug, Clone, Default)]
pub struct ReorderBuffer {
    slots: Vec<Option<u64>>,
}

impl ReorderBuffer {
    /// Creates a buffer expecting `n` packets.
    pub fn new(n: usize) -> Self {
        ReorderBuffer {
            slots: vec![None; n],
        }
    }

    /// Accepts a packet with its sequence ID and payload.
    ///
    /// # Panics
    ///
    /// Panics if the sequence ID is out of range or already filled —
    /// both indicate a mis-programmed producer.
    pub fn accept(&mut self, seq_id: usize, payload: u64) {
        assert!(
            seq_id < self.slots.len(),
            "sequence ID {seq_id} out of range"
        );
        assert!(
            self.slots[seq_id].is_none(),
            "duplicate sequence ID {seq_id}"
        );
        self.slots[seq_id] = Some(payload);
    }

    /// Whether every expected packet has arrived.
    pub fn complete(&self) -> bool {
        self.slots.iter().all(Option::is_some)
    }

    /// Drains the buffer in logical order.
    ///
    /// # Panics
    ///
    /// Panics if called before [`ReorderBuffer::complete`] is true.
    pub fn drain_ordered(self) -> Vec<u64> {
        self.slots
            .into_iter()
            .map(|s| s.expect("drain_ordered called on incomplete buffer"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sn_arch::PmuSpec;

    fn pmu(mapping: BankMapping) -> PmuModel {
        PmuModel::new(PmuSpec::sn40l(), mapping)
    }

    #[test]
    fn sequential_access_is_conflict_free() {
        let p = pmu(BankMapping::Fixed);
        // 16 lanes touching consecutive bank words.
        let word = p.spec().vector_width.as_u64() / p.spec().banks as u64;
        let addrs: Vec<u64> = (0..16).map(|i| i * word).collect();
        assert_eq!(p.access_cycles(&addrs), Cycles::new(1));
    }

    #[test]
    fn same_bank_stride_serializes() {
        let p = pmu(BankMapping::Fixed);
        let word = p.spec().vector_width.as_u64() / p.spec().banks as u64;
        let bank_span = word * p.spec().banks as u64;
        // All 16 addresses hit bank 0.
        let addrs: Vec<u64> = (0..16).map(|i| i * bank_span).collect();
        assert_eq!(p.access_cycles(&addrs), Cycles::new(16));
    }

    #[test]
    fn programmable_bank_bits_break_double_buffer_conflicts() {
        // §VII: double buffers statically mapped to different banks
        // eliminate conflicts. A power-of-two buffer stride aliases to the
        // same banks under the fixed mapping; moving the bank bits above
        // the stride fixes it.
        let fixed = pmu(BankMapping::Fixed);
        let word = fixed.spec().vector_width.as_u64() / fixed.spec().banks as u64;
        let stride = word * fixed.spec().banks as u64 * 4; // conflict stride
        let addrs: Vec<u64> = (0..16).map(|i| i * stride).collect();
        let fixed_cycles = fixed.access_cycles(&addrs);
        let tuned = pmu(BankMapping::Programmable {
            shift: stride.trailing_zeros(),
        });
        let tuned_cycles = tuned.access_cycles(&addrs);
        assert_eq!(fixed_cycles, Cycles::new(16));
        assert_eq!(tuned_cycles, Cycles::new(1));
    }

    #[test]
    fn striped_transpose_reads_at_full_bandwidth() {
        let p = pmu(BankMapping::Fixed);
        let naive = p.naive_transposed_read_cycles(128, 128).as_u64();
        let striped = p.striped_transposed_read_cycles(128, 128).as_u64();
        assert!(
            naive >= striped * 4,
            "striping should be much faster: naive {naive}, striped {striped}"
        );
    }

    #[test]
    fn addr_pipeline_partition_trades_throughput() {
        let p = pmu(BankMapping::Fixed);
        // Simple write (1 op), complex read (8 ops): give the read more
        // stages (the §IV-B insight that one side is usually simpler).
        let (r, w) = p.partition_addr_pipeline(5, 1, 8, 1);
        assert_eq!(w, Cycles::new(1));
        assert_eq!(r, Cycles::new(2));
        // Balanced split starves the complex side.
        let (r2, _w2) = p.partition_addr_pipeline(3, 3, 8, 1);
        assert!(r2 > r);
    }

    #[test]
    #[should_panic(expected = "stages")]
    fn addr_pipeline_over_allocation_panics() {
        let p = pmu(BankMapping::Fixed);
        let _ = p.partition_addr_pipeline(5, 5, 1, 1);
    }

    #[test]
    fn stream_cycles_match_vector_width() {
        let p = pmu(BankMapping::Fixed);
        let c = p.stream_cycles(Bytes::from_kib(64));
        assert_eq!(c, Cycles::new(1024)); // 64 KiB / 64 B per cycle
    }

    #[test]
    #[should_panic(expected = "duplicate sequence ID")]
    fn reorder_rejects_duplicates() {
        let mut rb = ReorderBuffer::new(4);
        rb.accept(1, 10);
        rb.accept(1, 11);
    }

    proptest! {
        /// Any arrival permutation drains in logical order — the §IV-C
        /// reordering guarantee.
        #[test]
        fn reorder_restores_any_permutation(order in Just((0..64usize).collect::<Vec<_>>()).prop_shuffle()) {
            let mut rb = ReorderBuffer::new(64);
            for &i in &order {
                rb.accept(i, (i * 7) as u64);
            }
            prop_assert!(rb.complete());
            let out = rb.drain_ordered();
            for (i, v) in out.iter().enumerate() {
                prop_assert_eq!(*v, (i * 7) as u64);
            }
        }

        /// Bank conflicts never make an access faster than conflict-free,
        /// and never slower than fully serialized.
        #[test]
        fn access_cycles_bounded(addrs in proptest::collection::vec(0u64..(512*1024), 1..64)) {
            let p = pmu(BankMapping::Fixed);
            let c = p.access_cycles(&addrs).as_u64();
            prop_assert!(c >= 1);
            prop_assert!(c <= addrs.len() as u64);
        }
    }
}
