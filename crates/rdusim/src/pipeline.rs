//! Coarse-grained pipeline simulator for spatially fused kernels.
//!
//! A fused kernel is a chain of stages (Figure 4): compute stages (gangs of
//! PCUs) separated by decoupling stage buffers (PMU groups). Tensors are
//! tiled and streamed through; steady-state throughput is set by the
//! slowest stage and latency by the pipeline fill. The compiler's static
//! bandwidth model *predicts* `fill + (tiles - 1) * bottleneck`; this
//! simulator executes the pipeline cycle by cycle so tests can check the
//! prediction, including the effect of finite stage-buffer depths.

use serde::{Deserialize, Serialize};
use sn_arch::Cycles;

/// One pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage {
    pub name: String,
    /// Service time per tile.
    pub cycles_per_tile: u64,
    /// Capacity of the stage's *output* buffer, in tiles (PMU stage
    /// buffers; at least 1 — double buffering is 2).
    pub buffer_tiles: usize,
}

impl Stage {
    pub fn new(name: impl Into<String>, cycles_per_tile: u64, buffer_tiles: usize) -> Self {
        assert!(
            cycles_per_tile >= 1,
            "a stage needs at least one cycle per tile"
        );
        assert!(buffer_tiles >= 1, "a stage needs at least a single buffer");
        Stage {
            name: name.into(),
            cycles_per_tile,
            buffer_tiles,
        }
    }
}

/// Results of a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Cycles from first injection to last tile drained.
    pub total: Cycles,
    /// Cycles each stage spent in service.
    pub busy: Vec<u64>,
    /// Cycles each stage spent blocked on a full downstream buffer.
    pub blocked: Vec<u64>,
    /// Index of the stage with the highest utilization.
    pub bottleneck: usize,
}

/// Cycle-stepped simulator of a linear stage pipeline.
#[derive(Debug, Clone)]
pub struct PipelineSim {
    stages: Vec<Stage>,
}

impl PipelineSim {
    /// Creates a simulator for the given stage chain.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        PipelineSim { stages }
    }

    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The static model's prediction: fill plus bottleneck-paced tiles.
    pub fn predicted_cycles(&self, tiles: u64) -> Cycles {
        assert!(tiles >= 1);
        let fill: u64 = self.stages.iter().map(|s| s.cycles_per_tile).sum();
        let bottleneck = self
            .stages
            .iter()
            .map(|s| s.cycles_per_tile)
            .max()
            .expect("non-empty");
        Cycles::new(fill + (tiles - 1) * bottleneck)
    }

    /// Runs `tiles` tiles through the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn run(&self, tiles: u64) -> PipelineStats {
        assert!(tiles >= 1, "nothing to simulate");
        let n = self.stages.len();
        // Per-stage state.
        let mut in_service: Vec<Option<u64>> = vec![None; n]; // remaining cycles
        let mut out_q: Vec<u64> = vec![0; n];
        let mut busy = vec![0u64; n];
        let mut blocked = vec![0u64; n];
        let mut fed = 0u64; // tiles injected into stage 0
        let mut drained = 0u64;
        let mut cycle = 0u64;
        let bound = self.predicted_cycles(tiles).as_u64() * 4 + 1000;
        while drained < tiles {
            assert!(cycle < bound, "pipeline failed to drain: {drained}/{tiles}");
            // Sink drains the last stage's buffer (one tile per cycle).
            if out_q[n - 1] > 0 {
                out_q[n - 1] -= 1;
                drained += 1;
            }
            // Advance stages; iterate downstream-first so freed buffer
            // space and completed outputs are visible upstream within the
            // same cycle boundary (credits return combinationally).
            for i in (0..n).rev() {
                match in_service[i] {
                    Some(rem) if rem > 1 => {
                        in_service[i] = Some(rem - 1);
                        busy[i] += 1;
                    }
                    Some(_) => {
                        // Completing: needs output buffer space.
                        if (out_q[i] as usize) < self.stages[i].buffer_tiles {
                            out_q[i] += 1;
                            in_service[i] = None;
                            busy[i] += 1;
                        } else {
                            blocked[i] += 1;
                        }
                    }
                    None => {}
                }
                // A stage that is (or just became) idle starts its next
                // tile at the same cycle boundary, so service back-to-back
                // tiles take exactly `cycles_per_tile` each.
                if in_service[i].is_none() {
                    let input_ready = if i == 0 {
                        fed < tiles
                    } else {
                        out_q[i - 1] > 0
                    };
                    if input_ready {
                        if i == 0 {
                            fed += 1;
                        } else {
                            out_q[i - 1] -= 1;
                        }
                        in_service[i] = Some(self.stages[i].cycles_per_tile);
                    }
                }
            }
            cycle += 1;
        }
        let bottleneck = (0..n).max_by_key(|&i| busy[i]).expect("non-empty");
        PipelineStats {
            total: Cycles::new(cycle),
            busy,
            blocked,
            bottleneck,
        }
    }

    /// [`PipelineSim::run`] plus trace recording: emits one
    /// `pipeline:<name>` span (1 cycle = 1 ns) on the rdusim track with the
    /// bottleneck stage in its args, one instant per stage carrying its
    /// busy/blocked split, and adds the summed back-pressure cycles to
    /// [`Counter::PipelineBlockedCycles`]. Stats are bit-identical to the
    /// untraced call.
    ///
    /// [`Counter::PipelineBlockedCycles`]: sn_trace::Counter::PipelineBlockedCycles
    pub fn run_traced(&self, tiles: u64, name: &str, tracer: &sn_trace::Tracer) -> PipelineStats {
        let stats = self.run(tiles);
        if tracer.is_enabled() {
            use sn_trace::{ArgValue, Counter, Track};
            tracer.count(
                Counter::PipelineBlockedCycles,
                stats.blocked.iter().sum::<u64>(),
            );
            for (i, s) in self.stages.iter().enumerate() {
                tracer.instant(
                    Track::Rdusim,
                    format!("stage:{name}:{}", s.name),
                    &[
                        ("busy_cycles", ArgValue::from(stats.busy[i])),
                        ("blocked_cycles", ArgValue::from(stats.blocked[i])),
                        ("buffer_tiles", ArgValue::from(s.buffer_tiles)),
                    ],
                );
            }
            tracer.span(
                Track::Rdusim,
                format!("pipeline:{name}"),
                sn_arch::TimeSecs::from_nanos(stats.total.as_u64() as f64),
                &[
                    ("tiles", ArgValue::from(tiles)),
                    (
                        "bottleneck_stage",
                        ArgValue::Str(self.stages[stats.bottleneck].name.clone()),
                    ),
                    (
                        "blocked_cycles",
                        ArgValue::from(stats.blocked.iter().sum::<u64>()),
                    ),
                ],
            );
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chain(times: &[u64]) -> PipelineSim {
        PipelineSim::new(
            times
                .iter()
                .enumerate()
                .map(|(i, &t)| Stage::new(format!("s{i}"), t, 2))
                .collect(),
        )
    }

    #[test]
    fn throughput_set_by_bottleneck() {
        let p = chain(&[2, 8, 3]);
        let tiles = 200;
        let stats = p.run(tiles);
        let per_tile = stats.total.as_u64() as f64 / tiles as f64;
        assert!((per_tile - 8.0).abs() < 0.5, "per-tile {per_tile}");
        assert_eq!(stats.bottleneck, 1);
    }

    #[test]
    fn simulation_matches_static_prediction() {
        // With double buffers the deterministic pipeline should match the
        // fill + (n-1)*bottleneck model within a small constant.
        for times in [&[3u64, 5, 2][..], &[1, 1, 1], &[7, 2, 7, 2]] {
            let p = chain(times);
            let tiles = 100;
            let sim = p.run(tiles).total.as_u64();
            let pred = p.predicted_cycles(tiles).as_u64();
            let err = (sim as f64 - pred as f64).abs() / pred as f64;
            assert!(err < 0.12, "times {times:?}: sim {sim} vs pred {pred}");
        }
    }

    #[test]
    fn single_buffer_still_drains() {
        let p = PipelineSim::new(vec![
            Stage::new("a", 4, 1),
            Stage::new("b", 4, 1),
            Stage::new("c", 4, 1),
        ]);
        let stats = p.run(50);
        assert!(stats.total.as_u64() > 0);
    }

    #[test]
    fn blocked_cycles_appear_when_downstream_is_slow() {
        // Fast producer into slow consumer with a shallow buffer.
        let p = PipelineSim::new(vec![Stage::new("fast", 1, 1), Stage::new("slow", 10, 1)]);
        let stats = p.run(40);
        assert!(
            stats.blocked[0] > 0,
            "fast stage must block on the slow one"
        );
        assert_eq!(stats.bottleneck, 1);
    }

    #[test]
    fn deeper_buffers_never_hurt() {
        let shallow = PipelineSim::new(vec![
            Stage::new("a", 3, 1),
            Stage::new("b", 5, 1),
            Stage::new("c", 2, 1),
        ])
        .run(100);
        let deep = PipelineSim::new(vec![
            Stage::new("a", 3, 4),
            Stage::new("b", 5, 4),
            Stage::new("c", 2, 4),
        ])
        .run(100);
        assert!(deep.total <= shallow.total);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The simulator is never faster than the static lower bound and
        /// never slower than serial execution.
        #[test]
        fn sim_between_bounds(
            times in proptest::collection::vec(1u64..10, 1..6),
            tiles in 1u64..60,
        ) {
            let p = chain(&times);
            let sim = p.run(tiles).total.as_u64();
            let lower = p.predicted_cycles(tiles).as_u64();
            let serial: u64 = times.iter().sum::<u64>() * tiles;
            prop_assert!(sim + 2 >= lower, "sim {sim} below lower bound {lower}");
            // +tiles slack: the sink drains one per cycle.
            prop_assert!(sim <= serial + tiles + times.len() as u64 + 2,
                "sim {sim} above serial bound {serial}");
        }
    }
}
