//! Tensor interleaving across PMUs (§IV-B "Address Predication and
//! Banking").
//!
//! A logical tensor can span several PMUs for capacity (S0–S3 in
//! Figure 4), bandwidth (I00/I01, W00/W01), or both (T00–T03). The
//! hardware hooks are per-PMU *valid address ranges* or per-address
//! *predicate bits*: every generated address is broadcast to the group,
//! and each PMU accepts it only if its predicate passes. This module
//! models both schemes and checks the defining invariant — every address
//! is owned by exactly one PMU.

use serde::{Deserialize, Serialize};

/// How a PMU group claims addresses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterleaveScheme {
    /// Capacity partitioning: PMU `i` owns the contiguous range
    /// `[i * chunk, (i + 1) * chunk)` (S0–S3 in Figure 4).
    Range { chunk: u64 },
    /// Bandwidth partitioning: addresses stripe across the group at
    /// `grain`-byte granularity (I00/I01: consecutive vectors alternate
    /// PMUs so reads stream from both at once).
    Stripe { grain: u64 },
}

/// A group of PMUs backing one logical tensor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmuGroup {
    pub pmus: usize,
    pub scheme: InterleaveScheme,
}

impl PmuGroup {
    /// Creates a group.
    ///
    /// # Panics
    ///
    /// Panics on an empty group or zero-sized chunk/grain.
    pub fn new(pmus: usize, scheme: InterleaveScheme) -> Self {
        assert!(pmus >= 1, "a group needs at least one PMU");
        match &scheme {
            InterleaveScheme::Range { chunk } => assert!(*chunk > 0, "zero chunk"),
            InterleaveScheme::Stripe { grain } => assert!(*grain > 0, "zero grain"),
        }
        PmuGroup { pmus, scheme }
    }

    /// The predicate of PMU `i` for a byte address: does this PMU accept
    /// it? (`None` when the address is outside the group entirely —
    /// a range group's total capacity is `pmus * chunk`.)
    pub fn accepts(&self, pmu: usize, addr: u64) -> Option<bool> {
        assert!(pmu < self.pmus, "PMU index out of group");
        match &self.scheme {
            InterleaveScheme::Range { chunk } => {
                if addr >= *chunk * self.pmus as u64 {
                    return None;
                }
                Some(addr / chunk == pmu as u64)
            }
            InterleaveScheme::Stripe { grain } => {
                Some((addr / grain) % self.pmus as u64 == pmu as u64)
            }
        }
    }

    /// The owning PMU of an address, if any.
    pub fn owner(&self, addr: u64) -> Option<usize> {
        (0..self.pmus).find(|&i| self.accepts(i, addr) == Some(true))
    }

    /// Distributes a vector access across the group: returns how many of
    /// the addresses each PMU serves. The group's *effective bandwidth*
    /// for the access is proportional to how evenly this spreads.
    pub fn distribute(&self, addrs: &[u64]) -> Vec<usize> {
        let mut counts = vec![0usize; self.pmus];
        for &a in addrs {
            if let Some(i) = self.owner(a) {
                counts[i] += 1;
            }
        }
        counts
    }

    /// Effective parallelism of an access: addresses served per cycle if
    /// each PMU serves one address per cycle (total / max-per-PMU).
    pub fn effective_parallelism(&self, addrs: &[u64]) -> f64 {
        let counts = self.distribute(addrs);
        let served: usize = counts.iter().sum();
        let max = counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            0.0
        } else {
            served as f64 / max as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn range_partition_is_exclusive_and_total() {
        // S0-S3: a capacity split of a 4 MiB tensor over four PMUs.
        let g = PmuGroup::new(4, InterleaveScheme::Range { chunk: 1 << 20 });
        for addr in [0u64, (1 << 20) - 1, 1 << 20, 3 << 20, (4 << 20) - 1] {
            let owners: Vec<usize> = (0..4)
                .filter(|&i| g.accepts(i, addr) == Some(true))
                .collect();
            assert_eq!(owners.len(), 1, "exactly one PMU owns {addr:#x}");
        }
        assert_eq!(g.accepts(0, 4 << 20), None, "past the group is nobody's");
    }

    #[test]
    fn stripe_spreads_sequential_streams() {
        // I00/I01: striped 64-byte vectors alternate between two PMUs, so
        // a sequential stream reads both at full rate.
        let g = PmuGroup::new(2, InterleaveScheme::Stripe { grain: 64 });
        let addrs: Vec<u64> = (0..32).map(|i| i * 64).collect();
        let counts = g.distribute(&addrs);
        assert_eq!(counts, vec![16, 16]);
        assert!((g.effective_parallelism(&addrs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn range_partition_serializes_sequential_streams() {
        // The §IV-B trade-off: a capacity split gives no bandwidth gain on
        // a local stream — all addresses land in one PMU.
        let g = PmuGroup::new(4, InterleaveScheme::Range { chunk: 1 << 20 });
        let addrs: Vec<u64> = (0..32).map(|i| i * 64).collect();
        let counts = g.distribute(&addrs);
        assert_eq!(counts[0], 32);
        assert!((g.effective_parallelism(&addrs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stride_matching_the_stripe_degenerates() {
        // A stride equal to pmus*grain hits one PMU only — the same
        // pathology programmable bank bits fix inside a PMU.
        let g = PmuGroup::new(4, InterleaveScheme::Stripe { grain: 64 });
        let addrs: Vec<u64> = (0..16).map(|i| i * 256).collect();
        assert!((g.effective_parallelism(&addrs) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of group")]
    fn foreign_pmu_index_panics() {
        let g = PmuGroup::new(2, InterleaveScheme::Stripe { grain: 64 });
        let _ = g.accepts(2, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Exclusivity: under either scheme, an in-group address has
        /// exactly one owner.
        #[test]
        fn every_address_has_one_owner(
            pmus in 1usize..8,
            grain_pow in 4u32..10,
            addr in 0u64..(1 << 22),
        ) {
            let grain = 1u64 << grain_pow;
            for scheme in [
                InterleaveScheme::Stripe { grain },
                InterleaveScheme::Range { chunk: 1 << 20 },
            ] {
                let g = PmuGroup::new(pmus, scheme);
                let owners = (0..pmus)
                    .filter(|&i| g.accepts(i, addr) == Some(true))
                    .count();
                let in_group = g.accepts(0, addr).is_some();
                if in_group {
                    prop_assert_eq!(owners, 1);
                } else {
                    prop_assert_eq!(owners, 0);
                }
            }
        }

        /// Striping never loses addresses and its parallelism is between 1
        /// and the group size.
        #[test]
        fn stripe_parallelism_bounds(
            pmus in 1usize..8,
            addrs in proptest::collection::vec(0u64..(1 << 16), 1..64),
        ) {
            let g = PmuGroup::new(pmus, InterleaveScheme::Stripe { grain: 64 });
            let counts = g.distribute(&addrs);
            prop_assert_eq!(counts.iter().sum::<usize>(), addrs.len());
            let par = g.effective_parallelism(&addrs);
            prop_assert!(par >= 1.0 - 1e-12);
            prop_assert!(par <= pmus as f64 + 1e-12);
        }
    }
}
