//! Cycle-level simulator of the SN40L RDU tile (§IV).
//!
//! This crate models the on-chip mechanisms that make streaming dataflow
//! work, at packet and cycle granularity:
//!
//! - [`pcu`]: Pattern Compute Unit timing — systolic GEMM and pipelined
//!   SIMD execution (§IV-A);
//! - [`pmu`]: Pattern Memory Unit — banked scratchpad with bank-conflict
//!   accounting, programmable bank bits, sequence-ID write reordering, and
//!   the diagonally striped transpose layout (§IV-B);
//! - [`rdn`]: the Reconfigurable Dataflow Network — a mesh of
//!   credit-flow-controlled switches with static flow routing (global-pool
//!   or MPLS-style relabeling), multicast, and packet throttling
//!   (§IV-C, §IV-E, §VII);
//! - [`agcu`]: kernel-launch sequencing and DMA stream timing (§IV-D);
//! - [`pipeline`]: a coarse-grained stage-pipeline simulator that validates
//!   the compiler's static bandwidth model on fused kernels.
//!
//! The macro experiments of the paper are driven by the *static* model in
//! `sn-compiler`; this simulator exists to reproduce the micro-phenomena
//! the paper discusses (congestion, bank conflicts, reordering) and to
//! check the static model's pipeline arithmetic against an executable
//! ground truth.

pub mod agcu;
pub mod control;
pub mod functional;
pub mod interleave;
pub mod pcu;
pub mod pipeline;
pub mod pmu;
pub mod rdn;
pub mod tile;

pub use control::{run_orchestration, LoopCounter, OrchOutcome, OrchUnit};
pub use functional::{Scratchpad, SimdPipeline, SystolicArray};
pub use interleave::{InterleaveScheme, PmuGroup};
pub use pcu::PcuModel;
pub use pipeline::{PipelineSim, Stage};
pub use pmu::PmuModel;
pub use rdn::{Flow, FlowIdMode, NetSim, NetStats};
pub use tile::{
    map_stages, pipeline_flows, simulate_kernel, simulate_kernel_traced, Mapping, StageReq,
};
