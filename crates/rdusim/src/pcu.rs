//! Pattern Compute Unit timing model (§IV-A).
//!
//! The PCU datapath is a header (dataflow intake), a body configurable as
//! an output-stationary systolic array or a pipelined SIMD core, and a tail
//! for transcendentals/conversions that fuses with the body. This module
//! answers one question: how many cycles does a given operation take on one
//! PCU (or a gang of PCUs)?

use serde::{Deserialize, Serialize};
use sn_arch::{Cycles, PcuSpec};

/// Timing model for one PCU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcuModel {
    spec: PcuSpec,
}

impl PcuModel {
    pub fn new(spec: PcuSpec) -> Self {
        PcuModel { spec }
    }

    pub fn spec(&self) -> &PcuSpec {
        &self.spec
    }

    /// Cycles for an `m x n x k` GEMM on the systolic array.
    ///
    /// The array is output-stationary `rows x cols`: each `rows x cols`
    /// output tile takes `k` cycles of accumulation after a
    /// `rows + cols` fill, and tiles are processed back to back with the
    /// fill overlapped except for the first (§IV-A: inputs are streamed
    /// through broadcast buffers; results drain through the tail).
    pub fn systolic_cycles(&self, m: usize, n: usize, k: usize) -> Cycles {
        assert!(m > 0 && n > 0 && k > 0, "degenerate GEMM {m}x{n}x{k}");
        let rows = self.spec.systolic_rows;
        let cols = self.spec.systolic_cols;
        let tiles_m = m.div_ceil(rows);
        let tiles_n = n.div_ceil(cols);
        let fill = (rows + cols) as u64;
        let per_tile = k as u64;
        Cycles::new(fill + tiles_m as u64 * tiles_n as u64 * per_tile)
    }

    /// Cycles for a pointwise SIMD operation over `elements` values with a
    /// chain of `chained_ops` fused stage operations.
    ///
    /// The SIMD body is fully pipelined: one vector of `lanes` elements
    /// enters per cycle regardless of chain length (as long as the chain
    /// fits the stage budget); chain depth only adds pipeline fill.
    pub fn simd_cycles(&self, elements: u64, chained_ops: usize) -> Cycles {
        assert!(chained_ops >= 1, "a SIMD op needs at least one stage");
        let vectors = elements.div_ceil(self.spec.simd_lanes as u64);
        let fill = chained_ops.min(self.spec.simd_stages) as u64;
        Cycles::new(fill + vectors)
    }

    /// Whether a chain of `chained_ops` pointwise operations fits in one
    /// pass through the SIMD pipeline (otherwise the compiler must split
    /// it over multiple PCUs — "addressing composability" for compute).
    pub fn chain_fits(&self, chained_ops: usize) -> bool {
        chained_ops <= self.spec.simd_stages
    }

    /// Cycles for the same GEMM parallelized over `gang` PCUs
    /// (tensor-parallel split of the `n` dimension, as in Figure 4 where
    /// Gemm0 spans multiple PCUs).
    pub fn ganged_systolic_cycles(&self, m: usize, n: usize, k: usize, gang: usize) -> Cycles {
        assert!(gang >= 1);
        let n_per = n.div_ceil(gang).max(1);
        self.systolic_cycles(m, n_per, k)
    }

    /// Peak MACs retired per cycle when the array is fully utilized.
    pub fn peak_macs_per_cycle(&self) -> usize {
        self.spec.macs_per_cycle()
    }

    /// Efficiency of a GEMM on this PCU: useful MACs over array-slots used.
    /// Small GEMMs (< array dims) waste slots — the motivation for the
    /// SN40L's small-matrix improvements (§IV-E).
    pub fn systolic_efficiency(&self, m: usize, n: usize, k: usize) -> f64 {
        let useful = (m * n * k) as f64;
        let cycles = self.systolic_cycles(m, n, k).as_u64() as f64;
        let slots = cycles * self.peak_macs_per_cycle() as f64;
        useful / slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcu() -> PcuModel {
        PcuModel::new(PcuSpec::sn40l())
    }

    #[test]
    fn big_gemm_approaches_peak() {
        let p = pcu();
        let eff = p.systolic_efficiency(256, 256, 256);
        assert!(eff > 0.9, "large GEMM efficiency {eff}");
    }

    #[test]
    fn tiny_gemm_wastes_array() {
        let p = pcu();
        let eff = p.systolic_efficiency(4, 4, 32);
        assert!(
            eff < 0.2,
            "4x4 on a 16x16 array must be inefficient, got {eff}"
        );
    }

    #[test]
    fn gemm_cycles_scale_with_k() {
        let p = pcu();
        let c1 = p.systolic_cycles(16, 16, 64).as_u64();
        let c2 = p.systolic_cycles(16, 16, 128).as_u64();
        assert_eq!(c2 - c1, 64);
    }

    #[test]
    fn ganging_divides_n() {
        let p = pcu();
        let solo = p.systolic_cycles(64, 256, 64).as_u64();
        let gang4 = p.ganged_systolic_cycles(64, 256, 64, 4).as_u64();
        // 256 columns over 4 PCUs = 64 columns each; 4 tiles -> 1 tile.
        assert!(gang4 < solo / 2, "gang {gang4} vs solo {solo}");
    }

    #[test]
    fn simd_is_fully_pipelined() {
        let p = pcu();
        let one = p.simd_cycles(32 * 1000, 1).as_u64();
        let six = p.simd_cycles(32 * 1000, 6).as_u64();
        // Chain depth adds only fill cycles, not per-element cost.
        assert!(six - one <= 6);
    }

    #[test]
    fn long_chains_do_not_fit() {
        let p = pcu();
        assert!(p.chain_fits(6));
        assert!(!p.chain_fits(7));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_dim_gemm_panics() {
        let _ = pcu().systolic_cycles(0, 16, 16);
    }
}
