//! Address Generation and Coalescing Unit model (§IV-D): kernel-launch
//! sequencing (software- vs hardware-orchestrated) and DMA stream timing.

use serde::{Deserialize, Serialize};
use sn_arch::{Bandwidth, Bytes, Calibration, TimeSecs};

pub use sn_arch::Orchestration;

/// The three launch commands of one kernel (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LaunchCommand {
    ProgramLoad,
    ArgumentLoad,
    KernelExecute,
}

/// Kernel-launch overhead model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchModel {
    calib: Calibration,
}

impl LaunchModel {
    pub fn new(calib: Calibration) -> Self {
        LaunchModel { calib }
    }

    /// Per-kernel launch overhead under the given orchestration.
    pub fn per_kernel_overhead(&self, orch: Orchestration) -> TimeSecs {
        self.calib.launch_overhead(orch)
    }

    /// Total launch overhead for a schedule of `kernel_launches` launches
    /// of `distinct_kernels` distinct kernels. Program loads are paid once
    /// per distinct kernel (configurations stay resident and are re-executed
    /// with new arguments).
    pub fn schedule_overhead(
        &self,
        orch: Orchestration,
        kernel_launches: usize,
        distinct_kernels: usize,
    ) -> TimeSecs {
        assert!(
            distinct_kernels <= kernel_launches,
            "cannot have more distinct kernels ({distinct_kernels}) than launches ({kernel_launches})"
        );
        self.per_kernel_overhead(orch) * kernel_launches as f64
            + self.calib.program_load * distinct_kernels as f64
    }
}

/// A DMA stream descriptor: the AGCU sustains several concurrent streams
/// and coalesces their responses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaStream {
    pub bytes: Bytes,
    /// Bandwidth available to this stream.
    pub bandwidth: Bandwidth,
}

/// Time for a set of concurrent DMA streams limited to `max_streams`
/// in flight: streams beyond the limit queue behind the earliest finisher
/// (simple list-scheduling on stream slots).
pub fn dma_streams_time(streams: &[DmaStream], max_streams: usize) -> TimeSecs {
    assert!(max_streams >= 1);
    let mut slots = vec![TimeSecs::ZERO; max_streams];
    for s in streams {
        let t = s.bytes / s.bandwidth;
        // Place on the earliest-finishing slot.
        let slot = slots
            .iter_mut()
            .min_by(|a, b| a.as_secs().partial_cmp(&b.as_secs()).expect("finite times"))
            .expect("at least one slot");
        *slot += t;
    }
    slots.into_iter().fold(TimeSecs::ZERO, TimeSecs::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_arch::Bandwidth;

    #[test]
    fn hardware_orchestration_slashes_overhead() {
        let m = LaunchModel::new(Calibration::baseline());
        let so = m.schedule_overhead(Orchestration::Software, 1000, 10);
        let ho = m.schedule_overhead(Orchestration::Hardware, 1000, 10);
        assert!(so.as_secs() / ho.as_secs() > 5.0);
    }

    #[test]
    fn program_load_amortizes_over_relaunches() {
        let m = LaunchModel::new(Calibration::baseline());
        // Same kernel launched 100 times vs 100 distinct kernels.
        let reused = m.schedule_overhead(Orchestration::Hardware, 100, 1);
        let distinct = m.schedule_overhead(Orchestration::Hardware, 100, 100);
        assert!(distinct > reused);
    }

    #[test]
    #[should_panic(expected = "distinct kernels")]
    fn more_distinct_than_launches_panics() {
        let m = LaunchModel::new(Calibration::baseline());
        let _ = m.schedule_overhead(Orchestration::Software, 5, 6);
    }

    #[test]
    fn dma_streams_parallelize_up_to_limit() {
        let s = DmaStream {
            bytes: Bytes::from_gb(1.0),
            bandwidth: Bandwidth::from_gb_per_s(100.0),
        };
        let four_par = dma_streams_time(&[s; 4], 4);
        let four_ser = dma_streams_time(&[s; 4], 1);
        assert!((four_par.as_secs() - 0.01).abs() < 1e-9);
        assert!((four_ser.as_secs() - 0.04).abs() < 1e-9);
    }

    #[test]
    fn uneven_streams_pack_greedily() {
        let big = DmaStream {
            bytes: Bytes::from_gb(3.0),
            bandwidth: Bandwidth::from_gb_per_s(100.0),
        };
        let small = DmaStream {
            bytes: Bytes::from_gb(1.0),
            bandwidth: Bandwidth::from_gb_per_s(100.0),
        };
        // Two slots: big on one, three smalls pack onto the other.
        let t = dma_streams_time(&[big, small, small, small], 2);
        assert!((t.as_secs() - 0.03).abs() < 1e-9, "got {t}");
    }
}
