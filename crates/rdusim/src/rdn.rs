//! Reconfigurable Dataflow Network simulator (§IV-C).
//!
//! A cycle-stepped model of the vector fabric: a 2-D mesh of non-blocking
//! switches with per-hop credit flow control, static flow routing with
//! multicast fan-out, and programmable injection throttling. Two flow-ID
//! allocation schemes are modeled (§IV-E "On-chip bandwidth utilization"):
//! the SN10's single global pool, where two flows sharing any switch
//! permanently consume distinct chip-wide IDs, and the SN40L's MPLS-style
//! per-link relabeling, where labels are rewritten at every switch and only
//! need to be unique per link.

use bytes::Bytes as Payload;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A switch position in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    pub x: usize,
    pub y: usize,
}

impl Coord {
    pub const fn new(x: usize, y: usize) -> Self {
        Coord { x, y }
    }
}

/// Switch port directions (four mesh neighbors plus the local unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Dir {
    North,
    East,
    South,
    West,
    Local,
}

const DIRS: [Dir; 5] = [Dir::North, Dir::East, Dir::South, Dir::West, Dir::Local];

/// Flow-ID allocation scheme (§IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowIdMode {
    /// SN10: one chip-wide pool; flows sharing any switch must use
    /// distinct pool IDs, and the pool is small. Flows that cannot be
    /// colored are deferred to a second serial phase.
    GlobalPool { pool_size: usize },
    /// SN40L: labels are rewritten at each switch (like MPLS), so they only
    /// need to be unique per link; allocation effectively never fails.
    Mpls,
}

/// One logical packet stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    pub src: Coord,
    /// One destination for unicast; several for multicast fan-out.
    pub dsts: Vec<Coord>,
    /// Number of packets to inject.
    pub packets: usize,
    /// Cycles between injected packets in steady state (1 = line rate).
    pub injection_interval: u64,
    /// Packets injected back-to-back per burst. With `burst > 1` the
    /// source alternates full-rate bursts and idle gaps, keeping the same
    /// average rate — the bursty behavior §VII says can "slow down the
    /// entire kernel if left unmanaged".
    pub burst: usize,
}

impl Flow {
    /// A unicast flow at line rate.
    pub fn unicast(src: Coord, dst: Coord, packets: usize) -> Self {
        Flow {
            src,
            dsts: vec![dst],
            packets,
            injection_interval: 1,
            burst: 1,
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    pub width: usize,
    pub height: usize,
    /// Per-input-port queue capacity (credit count per link).
    pub queue_capacity: usize,
    pub flow_mode: FlowIdMode,
    /// Hardware packet throttling: enforce at least this many cycles
    /// between injections of the same flow, flattening bursts (§VII).
    pub throttle: Option<u64>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            width: 8,
            height: 8,
            queue_capacity: 4,
            flow_mode: FlowIdMode::Mpls,
            throttle: None,
        }
    }
}

/// Results of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Total cycles until every packet of every phase was delivered.
    pub cycles: u64,
    /// Packets delivered to local ports.
    pub delivered: usize,
    /// Output-port stalls due to exhausted credits, summed over switches.
    pub stall_cycles: u64,
    /// Per-switch stall counts (index `y * width + x`) for hotspot
    /// identification — the §VII performance-counter story.
    pub per_switch_stalls: Vec<u64>,
    /// Delivered packet-hops over total link-cycles: the achieved fraction
    /// of bisection capacity.
    pub link_utilization: f64,
    /// Flows deferred to a serial phase by flow-ID exhaustion.
    pub deferred_flows: usize,
}

#[derive(Debug, Clone)]
struct Packet {
    flow: usize,
    dsts: Vec<Coord>,
    #[allow(dead_code)]
    payload: Payload,
}

struct Switch {
    /// One input queue per direction.
    queues: [VecDeque<Packet>; 5],
    stalls: u64,
    rr: usize,
}

impl Switch {
    fn new() -> Self {
        Switch {
            queues: Default::default(),
            stalls: 0,
            rr: 0,
        }
    }
}

/// The mesh simulator.
#[derive(Debug)]
pub struct NetSim {
    config: NetConfig,
}

impl NetSim {
    pub fn new(config: NetConfig) -> Self {
        assert!(
            config.width >= 2 && config.height >= 2,
            "mesh must be at least 2x2"
        );
        assert!(config.queue_capacity >= 1);
        NetSim { config }
    }

    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    fn idx(&self, c: Coord) -> usize {
        c.y * self.config.width + c.x
    }

    /// XY dimension-order next hop from `at` toward `to`.
    fn next_dir(at: Coord, to: Coord) -> Dir {
        if to.x > at.x {
            Dir::East
        } else if to.x < at.x {
            Dir::West
        } else if to.y > at.y {
            Dir::South
        } else if to.y < at.y {
            Dir::North
        } else {
            Dir::Local
        }
    }

    fn step(at: Coord, d: Dir) -> Coord {
        match d {
            Dir::East => Coord::new(at.x + 1, at.y),
            Dir::West => Coord::new(at.x - 1, at.y),
            Dir::South => Coord::new(at.x, at.y + 1),
            Dir::North => Coord::new(at.x, at.y - 1),
            Dir::Local => at,
        }
    }

    /// Set of switches an XY-routed flow traverses (union over multicast
    /// destinations), used for flow-ID conflict analysis.
    fn footprint(&self, flow: &Flow) -> Vec<usize> {
        let mut seen = vec![false; self.config.width * self.config.height];
        for &dst in &flow.dsts {
            let mut at = flow.src;
            seen[self.idx(at)] = true;
            while at != dst {
                at = Self::step(at, Self::next_dir(at, dst));
                seen[self.idx(at)] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
            .collect()
    }

    /// Allocates flow IDs, returning `(admitted, deferred)` flow indices.
    /// Under [`FlowIdMode::Mpls`] everything is admitted; under the global
    /// pool, greedy coloring of the shared-switch conflict graph admits
    /// flows until colors run out.
    pub fn allocate_flow_ids(&self, flows: &[Flow]) -> (Vec<usize>, Vec<usize>) {
        match self.config.flow_mode {
            FlowIdMode::Mpls => ((0..flows.len()).collect(), Vec::new()),
            FlowIdMode::GlobalPool { pool_size } => {
                let footprints: Vec<Vec<usize>> = flows.iter().map(|f| self.footprint(f)).collect();
                let mut colors: Vec<Option<usize>> = vec![None; flows.len()];
                for i in 0..flows.len() {
                    let mut used = vec![false; pool_size];
                    for j in 0..flows.len() {
                        if let Some(cj) = colors[j] {
                            let share = footprints[i]
                                .iter()
                                .any(|s| footprints[j].binary_search(s).is_ok());
                            if share {
                                used[cj] = true;
                            }
                        }
                    }
                    colors[i] = (0..pool_size).find(|&c| !used[c]);
                }
                let admitted = (0..flows.len()).filter(|&i| colors[i].is_some()).collect();
                let deferred = (0..flows.len()).filter(|&i| colors[i].is_none()).collect();
                (admitted, deferred)
            }
        }
    }

    /// Runs one phase of concurrent flows to completion; returns
    /// `(cycles, delivered, stalls, per_switch, hops)`.
    fn run_phase(&self, flows: &[&Flow]) -> (u64, usize, u64, Vec<u64>, u64) {
        let w = self.config.width;
        let h = self.config.height;
        let mut switches: Vec<Switch> = (0..w * h).map(|_| Switch::new()).collect();
        let mut injected = vec![0usize; flows.len()];
        let mut tokens = vec![0usize; flows.len()];
        let mut next_burst = vec![0u64; flows.len()];
        let mut delivered = 0usize;
        let total_packets: usize = flows.iter().map(|f| f.packets * f.dsts.len()).sum();
        let mut cycle: u64 = 0;
        let mut hops: u64 = 0;
        // Generous bound: serial delivery over the mesh diameter.
        let bound = 1000 + (total_packets as u64 + 10) * (w + h) as u64 * 4;
        while delivered < total_packets {
            assert!(
                cycle < bound,
                "network failed to drain: {delivered}/{total_packets} after {cycle} cycles"
            );
            // Injection: sources push into their switch's Local input
            // queue, at most one packet per cycle (the local port is a
            // single link). A burst of `b` means `b` consecutive line-rate
            // cycles followed by an idle gap that keeps the average rate at
            // one packet per `injection_interval`.
            for (fi, f) in flows.iter().enumerate() {
                if injected[fi] >= f.packets {
                    continue;
                }
                let (interval, burst) = match self.config.throttle {
                    Some(t) => (f.injection_interval.max(t), 1),
                    None => (f.injection_interval, f.burst.max(1)),
                };
                if tokens[fi] == 0 && cycle >= next_burst[fi] {
                    tokens[fi] = burst;
                    next_burst[fi] = cycle + interval * burst as u64;
                }
                let sw = self.idx(f.src);
                if tokens[fi] > 0 && switches[sw].queues[4].len() < self.config.queue_capacity {
                    switches[sw].queues[4].push_back(Packet {
                        flow: fi,
                        dsts: f.dsts.clone(),
                        payload: Payload::new(),
                    });
                    injected[fi] += 1;
                    tokens[fi] -= 1;
                }
            }
            // Forwarding: two-phase to keep moves same-cycle consistent.
            let lens: Vec<[usize; 5]> = switches
                .iter()
                .map(|s| {
                    [
                        s.queues[0].len(),
                        s.queues[1].len(),
                        s.queues[2].len(),
                        s.queues[3].len(),
                        s.queues[4].len(),
                    ]
                })
                .collect();
            let mut incoming: Vec<Vec<(usize, Packet)>> = vec![Vec::new(); w * h];
            for y in 0..h {
                for x in 0..w {
                    let at = Coord::new(x, y);
                    let si = self.idx(at);
                    let mut port_used = [false; 5];
                    let rr = switches[si].rr;
                    switches[si].rr = (rr + 1) % 5;
                    for k in 0..5 {
                        let din = (rr + k) % 5;
                        let Some(pkt) = switches[si].queues[din].front() else {
                            continue;
                        };
                        // Group destinations by next-hop port.
                        let mut groups: Vec<(Dir, Vec<Coord>)> = Vec::new();
                        for &dst in &pkt.dsts {
                            let d = Self::next_dir(at, dst);
                            match groups.iter_mut().find(|(gd, _)| *gd == d) {
                                Some((_, v)) => v.push(dst),
                                None => groups.push((d, vec![dst])),
                            }
                        }
                        // All required output ports must be free and
                        // credited for the packet to move (multicast forks
                        // atomically).
                        let ok = groups.iter().all(|&(d, _)| {
                            if port_used[DIRS.iter().position(|&x| x == d).unwrap()] {
                                return false;
                            }
                            match d {
                                Dir::Local => true,
                                _ => {
                                    let n = Self::step(at, d);
                                    let ni = self.idx(n);
                                    let back = match d {
                                        Dir::East => 3, // arrives on West
                                        Dir::West => 1,
                                        Dir::South => 0,
                                        Dir::North => 2,
                                        Dir::Local => unreachable!(),
                                    };
                                    lens[ni][back]
                                        + incoming[ni].iter().filter(|(p, _)| *p == back).count()
                                        < self.config.queue_capacity
                                }
                            }
                        });
                        if !ok {
                            switches[si].stalls += 1;
                            continue;
                        }
                        let pkt = switches[si].queues[din].pop_front().expect("front exists");
                        for (d, dsts) in groups {
                            let pi = DIRS.iter().position(|&x| x == d).unwrap();
                            port_used[pi] = true;
                            match d {
                                Dir::Local => {
                                    delivered += dsts.len();
                                }
                                _ => {
                                    let n = Self::step(at, d);
                                    let ni = self.idx(n);
                                    let back = match d {
                                        Dir::East => 3,
                                        Dir::West => 1,
                                        Dir::South => 0,
                                        Dir::North => 2,
                                        Dir::Local => unreachable!(),
                                    };
                                    hops += 1;
                                    incoming[ni].push((
                                        back,
                                        Packet {
                                            flow: pkt.flow,
                                            dsts,
                                            payload: pkt.payload.clone(),
                                        },
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            for (ni, arrivals) in incoming.into_iter().enumerate() {
                for (port, pkt) in arrivals {
                    switches[ni].queues[port].push_back(pkt);
                }
            }
            cycle += 1;
        }
        let per_switch = switches.iter().map(|s| s.stalls).collect::<Vec<_>>();
        let stalls = per_switch.iter().sum();
        (cycle, delivered, stalls, per_switch, hops)
    }

    /// Runs all flows: admitted flows run concurrently; flows deferred by
    /// flow-ID exhaustion run in a serial follow-up phase (the SN10
    /// penalty).
    pub fn run(&self, flows: &[Flow]) -> NetStats {
        let (admitted, deferred) = self.allocate_flow_ids(flows);
        let mut cycles = 0u64;
        let mut delivered = 0usize;
        let mut stalls = 0u64;
        let mut per_switch = vec![0u64; self.config.width * self.config.height];
        let mut hops = 0u64;
        let phases: Vec<Vec<&Flow>> = if deferred.is_empty() {
            vec![admitted.iter().map(|&i| &flows[i]).collect()]
        } else {
            vec![
                admitted.iter().map(|&i| &flows[i]).collect(),
                deferred.iter().map(|&i| &flows[i]).collect(),
            ]
        };
        for phase in phases.iter().filter(|p| !p.is_empty()) {
            let (c, d, s, ps, hp) = self.run_phase(phase);
            cycles += c;
            delivered += d;
            stalls += s;
            for (a, b) in per_switch.iter_mut().zip(ps) {
                *a += b;
            }
            hops += hp;
        }
        let links =
            (2 * ((self.config.width - 1) * self.config.height
                + self.config.height.saturating_sub(1) * self.config.width)) as f64;
        let util = if cycles == 0 {
            0.0
        } else {
            hops as f64 / (links * cycles as f64)
        };
        NetStats {
            cycles,
            delivered,
            stall_cycles: stalls,
            per_switch_stalls: per_switch,
            link_utilization: util,
            deferred_flows: deferred.len(),
        }
    }

    /// [`NetSim::run`] plus trace recording: emits one `rdn:<name>` span on
    /// the rdusim track (1 cycle = 1 ns) and accumulates the RDN counters
    /// ([`Counter::RdnCycles`], [`Counter::RdnStallCycles`],
    /// [`Counter::RdnPacketsDelivered`], [`Counter::RdnDeferredFlows`]).
    /// The returned stats are bit-identical to the untraced call.
    ///
    /// [`Counter::RdnCycles`]: sn_trace::Counter::RdnCycles
    /// [`Counter::RdnStallCycles`]: sn_trace::Counter::RdnStallCycles
    /// [`Counter::RdnPacketsDelivered`]: sn_trace::Counter::RdnPacketsDelivered
    /// [`Counter::RdnDeferredFlows`]: sn_trace::Counter::RdnDeferredFlows
    pub fn run_traced(&self, flows: &[Flow], name: &str, tracer: &sn_trace::Tracer) -> NetStats {
        let stats = self.run(flows);
        if tracer.is_enabled() {
            use sn_trace::{ArgValue, Counter, Track};
            tracer.count(Counter::RdnCycles, stats.cycles);
            tracer.count(Counter::RdnStallCycles, stats.stall_cycles);
            tracer.count(Counter::RdnPacketsDelivered, stats.delivered as u64);
            tracer.count(Counter::RdnDeferredFlows, stats.deferred_flows as u64);
            tracer.span(
                Track::Rdusim,
                format!("rdn:{name}"),
                sn_arch::TimeSecs::from_nanos(stats.cycles as f64),
                &[
                    ("flows", ArgValue::from(flows.len())),
                    ("delivered", ArgValue::from(stats.delivered)),
                    ("stall_cycles", ArgValue::from(stats.stall_cycles)),
                    ("deferred_flows", ArgValue::from(stats.deferred_flows)),
                    ("link_utilization", ArgValue::from(stats.link_utilization)),
                ],
            );
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sim(mode: FlowIdMode) -> NetSim {
        NetSim::new(NetConfig {
            flow_mode: mode,
            ..NetConfig::default()
        })
    }

    #[test]
    fn single_flow_latency_is_distance_plus_packets() {
        let s = sim(FlowIdMode::Mpls);
        let f = Flow::unicast(Coord::new(0, 0), Coord::new(3, 0), 10);
        let stats = s.run(&[f]);
        assert_eq!(stats.delivered, 10);
        // 3 hops of pipeline fill + ~1 packet/cycle + delivery.
        assert!(
            stats.cycles >= 13 && stats.cycles <= 20,
            "cycles {}",
            stats.cycles
        );
    }

    #[test]
    fn multicast_forks_in_fabric() {
        let s = sim(FlowIdMode::Mpls);
        let f = Flow {
            src: Coord::new(0, 0),
            dsts: vec![Coord::new(3, 0), Coord::new(0, 3), Coord::new(3, 3)],
            packets: 5,
            injection_interval: 1,
            burst: 1,
        };
        let stats = s.run(&[f]);
        assert_eq!(stats.delivered, 15, "each packet reaches all three sinks");
    }

    #[test]
    fn crossing_flows_create_stalls() {
        let s = sim(FlowIdMode::Mpls);
        // Four flows converging through the mesh center.
        let flows: Vec<Flow> = vec![
            Flow::unicast(Coord::new(0, 3), Coord::new(7, 3), 40),
            Flow::unicast(Coord::new(7, 4), Coord::new(0, 4), 40),
            Flow::unicast(Coord::new(3, 0), Coord::new(3, 7), 40),
            Flow::unicast(Coord::new(4, 7), Coord::new(4, 0), 40),
        ];
        let stats = s.run(&flows);
        assert_eq!(stats.delivered, 160);
    }

    #[test]
    fn global_pool_defers_flows_mpls_does_not() {
        // Many flows sharing the center of the mesh exhaust a small global
        // pool; MPLS relabeling admits all of them (§IV-E).
        let flows: Vec<Flow> = (0..6)
            .map(|i| Flow::unicast(Coord::new(0, i), Coord::new(7, 5 - i), 20))
            .collect();
        let sn10 = sim(FlowIdMode::GlobalPool { pool_size: 3 }).run(&flows);
        let sn40l = sim(FlowIdMode::Mpls).run(&flows);
        assert!(
            sn10.deferred_flows > 0,
            "pool of 3 cannot color 6 crossing flows"
        );
        assert_eq!(sn40l.deferred_flows, 0);
        assert!(
            sn40l.cycles < sn10.cycles,
            "MPLS should finish faster: {} vs {}",
            sn40l.cycles,
            sn10.cycles
        );
        assert!(sn40l.link_utilization > sn10.link_utilization);
    }

    #[test]
    fn throttling_tames_bursty_congestion() {
        // A bursty flow crossing a victim flow's path: §VII says throttling
        // mitigates the victim's slowdown. The victim's completion time is
        // the whole run here (same total work), so compare stalls.
        let mk = |throttle| {
            NetSim::new(NetConfig {
                throttle,
                ..NetConfig::default()
            })
        };
        // The bursty flow and the victim merge onto the same row-2 links;
        // their combined *average* demand (0.5 + 0.5) fits the link, so a
        // throttled schedule is nearly stall-free while line-rate bursts
        // overflow the shared queues.
        let flows = vec![
            Flow {
                src: Coord::new(0, 2),
                dsts: vec![Coord::new(7, 2)],
                packets: 60,
                injection_interval: 2,
                burst: 12,
            },
            Flow {
                src: Coord::new(1, 2),
                dsts: vec![Coord::new(7, 2)],
                packets: 60,
                injection_interval: 2,
                burst: 1,
            },
        ];
        let unmanaged = mk(None).run(&flows);
        let throttled = mk(Some(2)).run(&flows);
        assert!(
            throttled.stall_cycles < unmanaged.stall_cycles,
            "throttling should reduce stalls: {} vs {}",
            throttled.stall_cycles,
            unmanaged.stall_cycles
        );
    }

    #[test]
    fn stall_counters_identify_hotspot() {
        let s = sim(FlowIdMode::Mpls);
        // Two line-rate flows merging at switch (1, 4): demand on the
        // shared eastbound row-4 links is 2x capacity, so stalls pile up
        // along that row — the §VII performance-counter workflow.
        let flows = vec![
            Flow::unicast(Coord::new(0, 4), Coord::new(7, 4), 50),
            Flow::unicast(Coord::new(1, 4), Coord::new(7, 4), 50),
        ];
        let stats = s.run(&flows);
        let hot: u64 = stats
            .per_switch_stalls
            .iter()
            .enumerate()
            .filter(|&(i, _)| i / 8 == 4)
            .map(|(_, &v)| v)
            .sum();
        let total: u64 = stats.per_switch_stalls.iter().sum();
        assert!(total > 0, "merging line-rate flows must stall somewhere");
        assert!(
            hot * 2 >= total,
            "stalls should concentrate on the merged row"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every packet is always delivered (XY routing on a mesh with
        /// credit flow control is deadlock-free), and hops never exceed
        /// packets x diameter.
        #[test]
        fn all_packets_always_delivered(
            sx in 0usize..8, sy in 0usize..8, dx in 0usize..8, dy in 0usize..8,
            n in 1usize..40, burst in 1usize..8,
        ) {
            let s = sim(FlowIdMode::Mpls);
            let f = Flow {
                src: Coord::new(sx, sy),
                dsts: vec![Coord::new(dx, dy)],
                packets: n,
                injection_interval: 1,
                burst,
            };
            let stats = s.run(&[f]);
            prop_assert_eq!(stats.delivered, n);
        }

        /// Link utilization is a valid fraction.
        #[test]
        fn utilization_is_a_fraction(n in 1usize..60) {
            let s = sim(FlowIdMode::Mpls);
            let f = Flow::unicast(Coord::new(0, 0), Coord::new(7, 7), n);
            let stats = s.run(&[f]);
            prop_assert!(stats.link_utilization >= 0.0);
            prop_assert!(stats.link_utilization <= 1.0);
        }
    }
}
