//! Tile-level kernel mapping: place a fused kernel's stage gangs on the
//! physical mesh and derive the RDN flows its pipeline creates.
//!
//! This is the simulator-side half of place-and-route (§IV-C): given a
//! list of stages (PCU gang + PMU buffer sizes), the mapper assigns mesh
//! coordinates in snake order, emits one flow per producer→consumer stage
//! pair (fanning out across the consumer's gang), and runs the mesh
//! simulator to measure congestion — the ground truth the compiler's
//! placement heuristics are judged against.

use crate::rdn::{Coord, Flow, NetConfig, NetSim, NetStats};
use serde::{Deserialize, Serialize};
use sn_arch::TileGeometry;

/// One pipeline stage to place: a gang of compute units plus its stage
/// buffer memory units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageReq {
    pub pcus: usize,
    pub pmus: usize,
    /// Relative traffic weight of the stage's output stream (packets per
    /// simulated burst).
    pub traffic: usize,
}

/// Where a stage landed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedStage {
    /// Mesh positions assigned to this stage (gang + buffers).
    pub positions: Vec<Coord>,
    /// Representative egress position (the buffer feeding downstream).
    pub egress: Coord,
}

/// A mapped kernel: stages placed on one die's mesh.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    pub stages: Vec<PlacedStage>,
    pub positions_used: usize,
    /// Whether the kernel wrapped around the tile (time-multiplexing —
    /// a compiler bug if its budget check passed).
    pub wrapped: bool,
}

/// Maps stages onto the tile in snake order.
///
/// # Panics
///
/// Panics if a single stage is larger than the whole tile.
pub fn map_stages(tile: &TileGeometry, stages: &[StageReq]) -> Mapping {
    let capacity = tile.positions();
    let mut placed = Vec::new();
    let mut cursor = 0usize;
    let mut wrapped = false;
    for s in stages {
        let need = (s.pcus + s.pmus).max(1);
        assert!(need <= capacity, "stage of {need} units exceeds the tile");
        if cursor + need > capacity {
            cursor = 0;
            wrapped = true;
        }
        let positions: Vec<Coord> = (cursor..cursor + need)
            .map(|i| {
                let row = i / tile.cols;
                let col = i % tile.cols;
                // Snake order keeps consecutive indices adjacent.
                let col = if row % 2 == 1 {
                    tile.cols - 1 - col
                } else {
                    col
                };
                Coord::new(col, row)
            })
            .collect();
        let egress = *positions.last().expect("non-empty stage");
        placed.push(PlacedStage { positions, egress });
        cursor += need;
    }
    Mapping {
        positions_used: placed.iter().map(|p| p.positions.len()).sum(),
        stages: placed,
        wrapped,
    }
}

/// Derives the RDN flows of a mapped pipeline: each stage's egress
/// multicasts to the first few units of the next stage's gang.
pub fn pipeline_flows(mapping: &Mapping, stages: &[StageReq], fanout: usize) -> Vec<Flow> {
    assert_eq!(mapping.stages.len(), stages.len());
    let mut flows = Vec::new();
    for (i, pair) in mapping.stages.windows(2).enumerate() {
        let src = pair[0].egress;
        let next = &pair[1];
        let dsts: Vec<Coord> = next
            .positions
            .iter()
            .copied()
            .filter(|&c| c != src)
            .take(fanout.max(1))
            .collect();
        if dsts.is_empty() {
            continue;
        }
        flows.push(Flow {
            src,
            dsts,
            packets: stages[i].traffic.max(1),
            injection_interval: 1,
            burst: 1,
        });
    }
    flows
}

/// Maps, routes, and simulates a kernel pipeline on a mesh sized like one
/// die region; returns the mapping and the network statistics.
///
/// The simulation runs on a mesh window of the die (the simulator's cost
/// is quadratic in area; a window bounded by the mapping's extent loses no
/// generality for neighbor-heavy pipeline traffic).
pub fn simulate_kernel(
    tile: &TileGeometry,
    stages: &[StageReq],
    fanout: usize,
) -> (Mapping, NetStats) {
    let mapping = map_stages(tile, stages);
    // Window: rows actually used, clamped to simulator-friendly sizes.
    let max_row = mapping
        .stages
        .iter()
        .flat_map(|s| s.positions.iter())
        .map(|c| c.y)
        .max()
        .unwrap_or(0);
    let width = tile.cols.clamp(2, 16);
    let height = (max_row + 1).clamp(2, 16);
    // Re-map into the window if the tile is wider than the window.
    let clamp = |c: Coord| Coord::new(c.x.min(width - 1), c.y.min(height - 1));
    let flows: Vec<Flow> = pipeline_flows(&mapping, stages, fanout)
        .into_iter()
        .map(|f| {
            let src = clamp(f.src);
            let mut dsts: Vec<Coord> = f
                .dsts
                .into_iter()
                .map(clamp)
                .filter(|&d| d != src)
                .collect();
            dsts.dedup();
            Flow { src, dsts, ..f }
        })
        .filter(|f| !f.dsts.is_empty())
        .collect();
    let sim = NetSim::new(NetConfig {
        width,
        height,
        ..NetConfig::default()
    });
    let stats = sim.run(&flows);
    (mapping, stats)
}

/// [`simulate_kernel`] plus trace recording: counts the PCUs/PMUs the
/// mapping occupies ([`Counter::PcusOccupied`], [`Counter::PmusOccupied`]),
/// emits one instant per placed stage, and routes the mesh simulation
/// through [`NetSim::run_traced`] so its cycles land on the rdusim track.
/// The returned mapping and stats are bit-identical to the untraced call.
///
/// [`Counter::PcusOccupied`]: sn_trace::Counter::PcusOccupied
/// [`Counter::PmusOccupied`]: sn_trace::Counter::PmusOccupied
pub fn simulate_kernel_traced(
    tile: &TileGeometry,
    stages: &[StageReq],
    fanout: usize,
    name: &str,
    tracer: &sn_trace::Tracer,
) -> (Mapping, NetStats) {
    if !tracer.is_enabled() {
        return simulate_kernel(tile, stages, fanout);
    }
    use sn_trace::{ArgValue, Counter, Track};
    let mapping = map_stages(tile, stages);
    for (i, (req, placed)) in stages.iter().zip(&mapping.stages).enumerate() {
        tracer.count(Counter::PcusOccupied, req.pcus as u64);
        tracer.count(Counter::PmusOccupied, req.pmus as u64);
        tracer.instant(
            Track::Rdusim,
            format!("place:{name}:stage{i}"),
            &[
                ("pcus", ArgValue::from(req.pcus)),
                ("pmus", ArgValue::from(req.pmus)),
                ("egress_x", ArgValue::from(placed.egress.x)),
                ("egress_y", ArgValue::from(placed.egress.y)),
            ],
        );
    }
    // Window and clamp exactly as `simulate_kernel` does; `map_stages` is
    // deterministic, so the mapping (and thus the stats) match it exactly.
    let max_row = mapping
        .stages
        .iter()
        .flat_map(|s| s.positions.iter())
        .map(|c| c.y)
        .max()
        .unwrap_or(0);
    let width = tile.cols.clamp(2, 16);
    let height = (max_row + 1).clamp(2, 16);
    let clamp = |c: Coord| Coord::new(c.x.min(width - 1), c.y.min(height - 1));
    let flows: Vec<Flow> = pipeline_flows(&mapping, stages, fanout)
        .into_iter()
        .map(|f| {
            let src = clamp(f.src);
            let mut dsts: Vec<Coord> = f
                .dsts
                .into_iter()
                .map(clamp)
                .filter(|&d| d != src)
                .collect();
            dsts.dedup();
            Flow { src, dsts, ..f }
        })
        .filter(|f| !f.dsts.is_empty())
        .collect();
    let sim = NetSim::new(NetConfig {
        width,
        height,
        ..NetConfig::default()
    });
    let stats = sim.run_traced(&flows, name, tracer);
    (mapping, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_arch::RduChipSpec;

    fn tile() -> TileGeometry {
        RduChipSpec::sn40l().tile
    }

    fn decoder_like_stages() -> Vec<StageReq> {
        // A decode layer: several small gemm gangs and elementwise stages.
        vec![
            StageReq {
                pcus: 4,
                pmus: 3,
                traffic: 16,
            }, // norm
            StageReq {
                pcus: 12,
                pmus: 6,
                traffic: 16,
            }, // qkv
            StageReq {
                pcus: 8,
                pmus: 4,
                traffic: 16,
            }, // attention
            StageReq {
                pcus: 12,
                pmus: 6,
                traffic: 16,
            }, // mlp up
            StageReq {
                pcus: 12,
                pmus: 6,
                traffic: 16,
            }, // mlp down
        ]
    }

    #[test]
    fn stages_place_contiguously_without_overlap() {
        let m = map_stages(&tile(), &decoder_like_stages());
        assert!(!m.wrapped);
        let mut seen = std::collections::HashSet::new();
        for s in &m.stages {
            for &c in &s.positions {
                assert!(seen.insert(c), "position {c:?} reused");
            }
        }
        assert_eq!(m.positions_used, seen.len());
    }

    #[test]
    fn snake_order_keeps_stages_adjacent() {
        let m = map_stages(&tile(), &decoder_like_stages());
        for pair in m.stages.windows(2) {
            let a = pair[0].egress;
            let b = pair[1].positions[0];
            let dist = a.x.abs_diff(b.x) + a.y.abs_diff(b.y);
            assert!(dist <= 2, "consecutive stages {dist} hops apart");
        }
    }

    #[test]
    fn oversubscribed_tile_wraps() {
        let small = TileGeometry {
            rows: 4,
            cols: 4,
            agcus: 2,
        };
        let stages = vec![
            StageReq {
                pcus: 10,
                pmus: 0,
                traffic: 4
            };
            3
        ];
        let m = map_stages(&small, &stages);
        assert!(m.wrapped, "30 units on a 16-position tile must wrap");
    }

    #[test]
    #[should_panic(expected = "exceeds the tile")]
    fn giant_stage_panics() {
        let small = TileGeometry {
            rows: 2,
            cols: 2,
            agcus: 1,
        };
        let _ = map_stages(
            &small,
            &[StageReq {
                pcus: 10,
                pmus: 0,
                traffic: 1,
            }],
        );
    }

    #[test]
    fn pipeline_flows_connect_consecutive_stages() {
        let stages = decoder_like_stages();
        let m = map_stages(&tile(), &stages);
        let flows = pipeline_flows(&m, &stages, 2);
        assert_eq!(flows.len(), stages.len() - 1);
        for f in &flows {
            assert!(!f.dsts.is_empty());
            assert!(f.dsts.len() <= 2);
        }
    }

    #[test]
    fn mapped_pipeline_simulates_with_low_congestion() {
        let stages = decoder_like_stages();
        let (mapping, stats) = simulate_kernel(&tile(), &stages, 2);
        assert!(!mapping.wrapped);
        let total_packets: usize = stages[..stages.len() - 1].iter().map(|s| s.traffic).sum();
        assert!(
            stats.delivered >= total_packets,
            "all pipeline traffic delivered"
        );
        // Neighbor traffic on a snake placement should be nearly stall-free.
        assert!(
            stats.stall_cycles < stats.cycles * 2,
            "stalls {} vs cycles {}",
            stats.stall_cycles,
            stats.cycles
        );
    }
}
