//! Functional (value-level) models of the PCU and PMU datapaths.
//!
//! The timing models in [`crate::pcu`] and [`crate::pmu`] answer "how many
//! cycles"; these models answer "what values" — they actually move data
//! the way the hardware does, so tests can verify that the mechanisms
//! compute correctly:
//!
//! - [`SystolicArray`] executes a GEMM as an output-stationary wavefront
//!   and must agree with a reference matrix multiply (§IV-A);
//! - [`SimdPipeline`] streams vectors through chained stage functions;
//! - [`Scratchpad`] is a banked SRAM with the diagonally striped layout,
//!   demonstrating that a tensor written once reads back correctly in both
//!   row-major and transposed order at full bandwidth (§IV-B).

use sn_arch::{Cycles, PcuSpec, PmuSpec};

/// An output-stationary systolic array executing BF16-like GEMMs in f32.
#[derive(Debug, Clone)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
}

impl SystolicArray {
    pub fn new(spec: &PcuSpec) -> Self {
        SystolicArray {
            rows: spec.systolic_rows,
            cols: spec.systolic_cols,
        }
    }

    /// Multiplies `a` (`m x k`, row-major) by `b` (`k x n`, row-major) by
    /// marching data through the array tile by tile, exactly as the
    /// broadcast buffers feed it. Returns `(result, cycles)`; the result
    /// must equal a reference matmul and the cycle count follows the
    /// [`crate::pcu::PcuModel`] timing.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn gemm(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> (Vec<f32>, Cycles) {
        assert_eq!(a.len(), m * k, "lhs size");
        assert_eq!(b.len(), k * n, "rhs size");
        let mut out = vec![0.0f32; m * n];
        let mut cycles = (self.rows + self.cols) as u64; // fill
                                                         // Process output tiles; each tile accumulates over k cycles with
                                                         // one wavefront step per cycle (PE (i, j) sees a[i][t] and b[t][j]
                                                         // skewed in time; the skew only affects latency, not values, so we
                                                         // accumulate per step).
        for tile_m in (0..m).step_by(self.rows) {
            for tile_n in (0..n).step_by(self.cols) {
                for t in 0..k {
                    cycles += 1;
                    for i in tile_m..(tile_m + self.rows).min(m) {
                        for j in tile_n..(tile_n + self.cols).min(n) {
                            // PE(i, j): MAC of the streamed operands.
                            out[i * n + j] += a[i * k + t] * b[t * n + j];
                        }
                    }
                }
            }
        }
        (out, Cycles::new(cycles))
    }
}

/// A pipelined SIMD core: vectors stream through a chain of stage
/// functions, one vector per cycle in steady state.
#[derive(Debug)]
pub struct SimdPipeline {
    lanes: usize,
    stages: Vec<fn(f32) -> f32>,
    max_stages: usize,
}

impl SimdPipeline {
    /// Builds a pipeline from stage functions.
    ///
    /// # Panics
    ///
    /// Panics if the chain exceeds the PCU's stage budget — the compiler
    /// must split such chains across PCUs (§IV-A).
    pub fn new(spec: &PcuSpec, stages: Vec<fn(f32) -> f32>) -> Self {
        assert!(
            stages.len() <= spec.simd_stages,
            "chain of {} exceeds {} SIMD stages",
            stages.len(),
            spec.simd_stages
        );
        SimdPipeline {
            lanes: spec.simd_lanes,
            stages,
            max_stages: spec.simd_stages,
        }
    }

    /// Streams `input` through the pipeline; returns `(values, cycles)`.
    pub fn run(&self, input: &[f32]) -> (Vec<f32>, Cycles) {
        let out: Vec<f32> = input
            .iter()
            .map(|&v| self.stages.iter().fold(v, |acc, f| f(acc)))
            .collect();
        let vectors = input.len().div_ceil(self.lanes) as u64;
        let fill = self.stages.len().min(self.max_stages) as u64;
        (out, Cycles::new(fill + vectors))
    }
}

/// A banked scratchpad storing a 2-D tensor in the diagonally striped
/// format: element `(r, c)` lives in bank `(r + c) % banks` at row-major
/// position within the bank. One write layout serves both read orders at
/// full bandwidth (§IV-B).
#[derive(Debug, Clone)]
pub struct Scratchpad {
    banks: Vec<Vec<f32>>,
    rows: usize,
    cols: usize,
}

impl Scratchpad {
    /// Writes a `rows x cols` tensor diagonally striped across the PMU's
    /// banks.
    ///
    /// # Panics
    ///
    /// Panics if the tensor exceeds the scratchpad capacity (f32 model of
    /// BF16 data: capacity halves).
    pub fn write_striped(spec: &PmuSpec, data: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols);
        let capacity_elems = (spec.scratchpad.as_u64() / 2) as usize;
        assert!(
            rows * cols <= capacity_elems,
            "tensor exceeds PMU scratchpad"
        );
        let nb = spec.banks;
        let mut banks = vec![Vec::new(); nb];
        // Bank-local addresses must be position-computable: element (r, c)
        // goes to bank (r + c) % nb at index r * ceil(cols / nb) + c / nb.
        let per_row = cols.div_ceil(nb);
        for b in &mut banks {
            b.resize(rows * per_row, 0.0);
        }
        for r in 0..rows {
            for c in 0..cols {
                let bank = (r + c) % nb;
                banks[bank][r * per_row + c / nb] = data[r * cols + c];
            }
        }
        Scratchpad { banks, rows, cols }
    }

    fn get(&self, r: usize, c: usize) -> f32 {
        let nb = self.banks.len();
        let per_row = self.cols.div_ceil(nb);
        self.banks[(r + c) % nb][r * per_row + c / nb]
    }

    /// Reads the tensor back row-major. Returns `(values, conflict-free)`:
    /// the boolean reports whether every vector of `banks` consecutive
    /// elements touched distinct banks.
    pub fn read_rows(&self) -> (Vec<f32>, bool) {
        let nb = self.banks.len();
        let mut out = Vec::with_capacity(self.rows * self.cols);
        let mut conflict_free = true;
        for r in 0..self.rows {
            for c0 in (0..self.cols).step_by(nb) {
                let span = nb.min(self.cols - c0);
                let mut seen = vec![false; nb];
                for c in c0..c0 + span {
                    let bank = (r + c) % nb;
                    if seen[bank] {
                        conflict_free = false;
                    }
                    seen[bank] = true;
                    out.push(self.get(r, c));
                }
            }
        }
        (out, conflict_free)
    }

    /// Reads the tensor back column-major (the transposed view). Same
    /// conflict accounting over vectors of `banks` consecutive rows.
    pub fn read_transposed(&self) -> (Vec<f32>, bool) {
        let nb = self.banks.len();
        let mut out = Vec::with_capacity(self.rows * self.cols);
        let mut conflict_free = true;
        for c in 0..self.cols {
            for r0 in (0..self.rows).step_by(nb) {
                let span = nb.min(self.rows - r0);
                let mut seen = vec![false; nb];
                for r in r0..r0 + span {
                    let bank = (r + c) % nb;
                    if seen[bank] {
                        conflict_free = false;
                    }
                    seen[bank] = true;
                    out.push(self.get(r, c));
                }
            }
        }
        (out, conflict_free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for t in 0..k {
                    out[i * n + j] += a[i * k + t] * b[t * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn systolic_gemm_matches_reference() {
        let arr = SystolicArray::new(&PcuSpec::sn40l());
        let (m, k, n) = (20, 33, 18); // deliberately non-multiples of 16
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect();
        let (out, cycles) = arr.gemm(&a, &b, m, k, n);
        let reference = reference_gemm(&a, &b, m, k, n);
        for (x, y) in out.iter().zip(&reference) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
        assert!(cycles.as_u64() > 0);
    }

    #[test]
    fn systolic_cycles_agree_with_timing_model() {
        let spec = PcuSpec::sn40l();
        let arr = SystolicArray::new(&spec);
        let model = crate::pcu::PcuModel::new(spec);
        let (m, k, n) = (32, 64, 48);
        let a = vec![1.0; m * k];
        let b = vec![1.0; k * n];
        let (_, functional) = arr.gemm(&a, &b, m, k, n);
        let predicted = model.systolic_cycles(m, n, k);
        assert_eq!(
            functional, predicted,
            "functional and timing models must agree"
        );
    }

    #[test]
    fn simd_chain_applies_in_order() {
        let spec = PcuSpec::sn40l();
        let pipe = SimdPipeline::new(&spec, vec![|v| v + 1.0, |v| v * 2.0]);
        let (out, cycles) = pipe.run(&[0.0, 1.0, 2.0]);
        assert_eq!(out, vec![2.0, 4.0, 6.0]);
        assert_eq!(cycles.as_u64(), 2 + 1); // 2 fill + 1 vector
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_simd_chain_panics() {
        let spec = PcuSpec::sn40l();
        let _ = SimdPipeline::new(
            &spec,
            vec![|v| v; 7], // spec has 6 stages
        );
    }

    #[test]
    fn striped_scratchpad_reads_both_orders() {
        let spec = PmuSpec::sn40l();
        let (rows, cols) = (48, 48);
        let data: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
        let pad = Scratchpad::write_striped(&spec, &data, rows, cols);
        let (row_major, rm_ok) = pad.read_rows();
        assert_eq!(row_major, data, "row-major readback");
        assert!(rm_ok, "row reads are conflict-free");
        let (transposed, tr_ok) = pad.read_transposed();
        assert!(
            tr_ok,
            "transposed reads are conflict-free — the §IV-B property"
        );
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(transposed[c * rows + r], data[r * cols + c]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds PMU scratchpad")]
    fn oversized_tensor_rejected() {
        let spec = PmuSpec::sn40l();
        let elems = (spec.scratchpad.as_u64() / 2) as usize + 1;
        let data = vec![0.0; elems];
        let _ = Scratchpad::write_striped(&spec, &data, 1, elems);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Systolic GEMM equals the reference for arbitrary small shapes.
        #[test]
        fn systolic_always_matches(m in 1usize..24, k in 1usize..24, n in 1usize..24) {
            let arr = SystolicArray::new(&PcuSpec::sn40l());
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 7 + m) % 13) as f32 - 6.0).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i * 5 + n) % 11) as f32 - 5.0).collect();
            let (out, _) = arr.gemm(&a, &b, m, k, n);
            let reference = reference_gemm(&a, &b, m, k, n);
            for (x, y) in out.iter().zip(&reference) {
                prop_assert!((x - y).abs() < 1e-2);
            }
        }

        /// Any tensor round-trips through the striped scratchpad, and the
        /// transposed read never conflicts.
        #[test]
        fn striping_roundtrips(rows in 1usize..40, cols in 1usize..40) {
            let spec = PmuSpec::sn40l();
            let data: Vec<f32> = (0..rows * cols).map(|i| i as f32 * 0.5).collect();
            let pad = Scratchpad::write_striped(&spec, &data, rows, cols);
            let (rm, _) = pad.read_rows();
            prop_assert_eq!(rm, data.clone());
            let (tr, tr_ok) = pad.read_transposed();
            prop_assert!(tr_ok);
            for r in 0..rows {
                for c in 0..cols {
                    prop_assert_eq!(tr[c * rows + r], data[r * cols + c]);
                }
            }
        }
    }
}
