//! Control-fabric orchestration (§IV-A, §IV-C).
//!
//! The RDN's circuit-switched control fabric carries single-bit *tokens*
//! that "collectively orchestrate the execution of a graph": loop counters
//! in PCUs/PMUs emit a `done` event when they hit their programmed
//! maximum, and downstream units arm on those tokens. This module models
//! that machinery: programmable counters, token wires, and a distributed
//! orchestration graph whose completion order must respect the program's
//! dependences — with detection of the classic misprogramming (a token
//! cycle that deadlocks the kernel).

use serde::{Deserialize, Serialize};

/// A hardware loop counter (§IV-A): counts events up to a programmed
/// maximum and fires a `done` token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopCounter {
    max: u64,
    count: u64,
    fired: bool,
}

impl LoopCounter {
    /// Creates a counter with the programmed maximum.
    ///
    /// # Panics
    ///
    /// Panics on a zero maximum (a loop executes at least once).
    pub fn new(max: u64) -> Self {
        assert!(max > 0, "loop maximum must be positive");
        LoopCounter {
            max,
            count: 0,
            fired: false,
        }
    }

    /// Registers one iteration; returns `true` exactly once, when the
    /// programmed maximum is reached.
    pub fn tick(&mut self) -> bool {
        if self.fired {
            return false;
        }
        self.count += 1;
        if self.count >= self.max {
            self.fired = true;
            return true;
        }
        false
    }

    pub fn done(&self) -> bool {
        self.fired
    }

    /// Re-arms the counter for the next kernel invocation.
    pub fn reset(&mut self) {
        self.count = 0;
        self.fired = false;
    }
}

/// One unit in the orchestration graph: it runs for `work` ticks once all
/// its token inputs have fired, then fires its own token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrchUnit {
    pub name: String,
    /// Iterations before this unit's counter fires `done`.
    pub work: u64,
    /// Indices of units whose tokens must arrive before this one starts.
    pub waits_on: Vec<usize>,
}

/// Outcome of running an orchestration graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrchOutcome {
    /// All units completed; `finish_order` is by completion tick.
    Completed {
        ticks: u64,
        finish_order: Vec<usize>,
    },
    /// Some units never started: their token dependences form a cycle or
    /// wait on units that can never fire.
    Deadlocked { stuck: Vec<usize> },
}

/// Runs the token-orchestrated graph tick by tick.
///
/// # Panics
///
/// Panics if a `waits_on` index is out of range.
pub fn run_orchestration(units: &[OrchUnit]) -> OrchOutcome {
    let n = units.len();
    for u in units {
        for &d in &u.waits_on {
            assert!(d < n, "dependence index {d} out of range");
        }
    }
    let mut counters: Vec<LoopCounter> = units
        .iter()
        .map(|u| LoopCounter::new(u.work.max(1)))
        .collect();
    let mut started = vec![false; n];
    let mut finish_order = Vec::new();
    let mut ticks = 0u64;
    while finish_order.len() < n {
        // Arm units whose tokens have all arrived.
        for i in 0..n {
            if !started[i] && units[i].waits_on.iter().all(|&d| counters[d].done()) {
                started[i] = true;
            }
        }
        // Advance every armed, unfinished unit one tick.
        let mut progressed = false;
        for i in 0..n {
            if started[i] && !counters[i].done() {
                progressed = true;
                if counters[i].tick() {
                    finish_order.push(i);
                }
            }
        }
        if !progressed {
            let stuck: Vec<usize> = (0..n).filter(|&i| !counters[i].done()).collect();
            return OrchOutcome::Deadlocked { stuck };
        }
        ticks += 1;
    }
    OrchOutcome::Completed {
        ticks,
        finish_order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit(name: &str, work: u64, waits_on: &[usize]) -> OrchUnit {
        OrchUnit {
            name: name.to_string(),
            work,
            waits_on: waits_on.to_vec(),
        }
    }

    #[test]
    fn counter_fires_exactly_once() {
        let mut c = LoopCounter::new(3);
        assert!(!c.tick());
        assert!(!c.tick());
        assert!(c.tick());
        assert!(c.done());
        assert!(!c.tick(), "no re-fire without reset");
        c.reset();
        assert!(!c.done());
    }

    #[test]
    fn chain_completes_in_dependence_order() {
        let units = vec![
            unit("load", 4, &[]),
            unit("gemm", 8, &[0]),
            unit("store", 2, &[1]),
        ];
        match run_orchestration(&units) {
            OrchOutcome::Completed {
                ticks,
                finish_order,
            } => {
                assert_eq!(finish_order, vec![0, 1, 2]);
                assert_eq!(ticks, 4 + 8 + 2, "serial chain sums work");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn independent_units_overlap() {
        let units = vec![
            unit("a", 10, &[]),
            unit("b", 10, &[]),
            unit("join", 1, &[0, 1]),
        ];
        match run_orchestration(&units) {
            OrchOutcome::Completed { ticks, .. } => {
                assert_eq!(ticks, 11, "parallel units share ticks");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn token_cycle_deadlocks() {
        let units = vec![unit("a", 1, &[1]), unit("b", 1, &[0])];
        match run_orchestration(&units) {
            OrchOutcome::Deadlocked { stuck } => assert_eq!(stuck, vec![0, 1]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn self_dependence_deadlocks() {
        let units = vec![unit("a", 1, &[0])];
        assert!(matches!(
            run_orchestration(&units),
            OrchOutcome::Deadlocked { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_dependence_index_panics() {
        let _ = run_orchestration(&[unit("a", 1, &[7])]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Forward-only dependences (a DAG by construction) always
        /// complete, and every unit finishes after everything it waited on.
        #[test]
        fn dags_always_complete(
            works in proptest::collection::vec(1u64..12, 1..12),
            edges in proptest::collection::vec((1usize..12, 0usize..11), 0..20),
        ) {
            let n = works.len();
            let mut units: Vec<OrchUnit> = works
                .iter()
                .enumerate()
                .map(|(i, &w)| unit(&format!("u{i}"), w, &[]))
                .collect();
            for &(to, from) in &edges {
                let (to, from) = (to % n, from % n);
                if from < to {
                    units[to].waits_on.push(from);
                }
            }
            match run_orchestration(&units) {
                OrchOutcome::Completed { finish_order, .. } => {
                    let pos: std::collections::HashMap<usize, usize> =
                        finish_order.iter().enumerate().map(|(p, &i)| (i, p)).collect();
                    for (i, u) in units.iter().enumerate() {
                        for &d in &u.waits_on {
                            prop_assert!(pos[&d] < pos[&i], "{d} must finish before {i}");
                        }
                    }
                }
                OrchOutcome::Deadlocked { stuck } => {
                    prop_assert!(false, "DAG deadlocked: {stuck:?}");
                }
            }
        }
    }
}
