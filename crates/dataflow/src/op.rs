//! The operator catalog.
//!
//! Operators know three things: how to infer their output shape, how many
//! FLOPs they perform, and what access pattern they impose on the fabric.
//! The access pattern is what decides GPU-fusion legality in the baseline
//! (§III-A: transposes and shuffles break conventional fusion) — on the
//! RDU every pattern is fusable because PMUs implement reordering as
//! read/write address patterns (§IV-B).

use crate::dtype::DType;
use crate::shape::Shape;
use crate::tensor::TensorId;
use serde::{Deserialize, Serialize};
use sn_arch::Flops;
use std::fmt;

/// Pointwise unary functions executed in PCU SIMD stages or the tail unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryKind {
    /// SiLU / swish activation.
    Silu,
    /// GELU activation.
    Gelu,
    /// Exponential (tail-unit transcendental).
    Exp,
    /// Reciprocal square root.
    Rsqrt,
    /// Numeric format conversion (tail unit).
    Cast,
    /// Scale by a compile-time constant.
    Scale,
    /// Negation.
    Neg,
}

impl UnaryKind {
    /// Approximate real FLOPs per element (transcendentals cost several).
    pub fn flops_per_element(self) -> u64 {
        match self {
            UnaryKind::Silu | UnaryKind::Gelu => 4,
            UnaryKind::Exp | UnaryKind::Rsqrt => 4,
            UnaryKind::Cast | UnaryKind::Neg | UnaryKind::Scale => 1,
        }
    }
}

/// Pointwise binary functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryKind {
    Add,
    Sub,
    Mul,
    Div,
    Max,
}

/// Reductions over the innermost axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceKind {
    Sum,
    Max,
    Mean,
}

/// How an operator touches memory, from the point of view of a conventional
/// (GPU) fusion engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Purely elementwise streaming; always fusable everywhere.
    Streaming,
    /// Dense contraction (systolic); a fusion *anchor* on GPUs (an epilogue
    /// may attach to it) and a pipeline stage on the RDU.
    Contraction,
    /// Row-local reduction/normalization; fusable on GPUs only as a
    /// handwritten epilogue, fusable freely on the RDU.
    RowLocal,
    /// Data reordering (transpose, shuffle, concat/slice across the fast
    /// axis). Breaks conventional GPU fusion (§III-A); on the RDU it is
    /// absorbed into PMU read/write address patterns (§IV-B).
    Reorder,
    /// Inter-socket collective communication.
    Collective,
}

/// An operator with its static parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense matrix multiply: `A [.., m, k] x B [k, n] -> [.., m, n]`.
    /// With `transpose_b`, `B` is `[n, k]`.
    Gemm { transpose_b: bool },
    /// GEMM with unstructured weight sparsity (sparseGPT training,
    /// Table II): FLOPs scale by `density`.
    SparseGemm { density: f64, transpose_b: bool },
    /// Pointwise unary function.
    Unary(UnaryKind),
    /// Pointwise binary function (operands broadcast if one is a vector).
    Binary(BinaryKind),
    /// Axis permutation.
    Transpose { perm: Vec<usize> },
    /// Element-preserving re-view (e.g. `[B*S, h*d] -> [B*h, S, d]`).
    /// Head regrouping is a genuine data reordering on both platforms.
    Reshape { dims: Vec<usize> },
    /// Row softmax over the innermost axis.
    Softmax,
    /// RMS normalization over the innermost axis (Llama-family).
    RmsNorm,
    /// LayerNorm over the innermost axis (Bloom/Falcon-family).
    LayerNorm,
    /// Rotary position embedding applied to the innermost axis pairs.
    Rope,
    /// Reduction over the innermost axis.
    Reduce(ReduceKind),
    /// Embedding-table gather: `table [V, d], ids [.., s] -> [.., s, d]`.
    Embedding,
    /// Contiguous slice of `parts` equal pieces along the given axis,
    /// returning piece `index`.
    Slice {
        axis: usize,
        parts: usize,
        index: usize,
    },
    /// Concatenation of the inputs along `axis`.
    Concat { axis: usize },
    /// Appends this step's K or V rows into the cache tensor (decode).
    /// Output is the updated cache view.
    KvAppend,
    /// Tensor-parallel AllReduce across `participants` sockets; identity
    /// on data shape (each socket ends with the reduced tensor).
    AllReduce { participants: usize },
}

impl OpKind {
    /// The access pattern this operator imposes.
    pub fn access_pattern(&self) -> AccessPattern {
        match self {
            OpKind::Gemm { .. } | OpKind::SparseGemm { .. } => AccessPattern::Contraction,
            OpKind::Unary(_) | OpKind::Binary(_) | OpKind::Rope => AccessPattern::Streaming,
            OpKind::Softmax | OpKind::RmsNorm | OpKind::LayerNorm | OpKind::Reduce(_) => {
                AccessPattern::RowLocal
            }
            OpKind::Transpose { .. }
            | OpKind::Reshape { .. }
            | OpKind::Embedding
            | OpKind::Slice { .. }
            | OpKind::Concat { .. }
            | OpKind::KvAppend => AccessPattern::Reorder,
            OpKind::AllReduce { .. } => AccessPattern::Collective,
        }
    }

    /// Infers the output shape from input shapes.
    ///
    /// # Errors
    ///
    /// Returns a message when the inputs are malformed for this operator
    /// (wrong arity, mismatched contraction dimensions, bad axis).
    pub fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape, String> {
        fn arity(inputs: &[&Shape], n: usize, op: &OpKind) -> Result<(), String> {
            if inputs.len() != n {
                Err(format!("{op:?} expects {n} inputs, got {}", inputs.len()))
            } else {
                Ok(())
            }
        }
        match self {
            OpKind::Gemm { transpose_b } | OpKind::SparseGemm { transpose_b, .. } => {
                arity(inputs, 2, self)?;
                let a = inputs[0];
                let b = inputs[1];
                let k = a.inner();
                // Rank-2 rhs: a shared weight/factor matrix. Rank-3 rhs: a
                // batched GEMM where the leading axes must match (attention
                // score and context contractions).
                let (bk, n) = match b.rank() {
                    2 => {
                        if *transpose_b {
                            (b.dims()[1], b.dims()[0])
                        } else {
                            (b.dims()[0], b.dims()[1])
                        }
                    }
                    3 => {
                        if a.rank() != 3 || a.dims()[0] != b.dims()[0] {
                            return Err(format!("batched gemm mismatch: {a} x {b}"));
                        }
                        if *transpose_b {
                            (b.dims()[2], b.dims()[1])
                        } else {
                            (b.dims()[1], b.dims()[2])
                        }
                    }
                    r => return Err(format!("gemm rhs must be rank-2 or 3, got rank-{r}")),
                };
                if k != bk {
                    return Err(format!("gemm contraction mismatch: {a} x {b}"));
                }
                let mut dims = a.dims().to_vec();
                *dims.last_mut().expect("non-empty") = n;
                Ok(Shape::new(dims))
            }
            OpKind::Unary(_) | OpKind::Rope => {
                arity(inputs, 1, self)?;
                Ok(inputs[0].clone())
            }
            OpKind::Binary(_) => {
                arity(inputs, 2, self)?;
                let (a, b) = (inputs[0], inputs[1]);
                if a == b || b.elements() == 1 || b.elements() as usize == a.inner() {
                    Ok(a.clone())
                } else {
                    Err(format!("binary shape mismatch: {a} vs {b}"))
                }
            }
            OpKind::Reshape { dims } => {
                arity(inputs, 1, self)?;
                let target = Shape::new(dims.clone());
                if target.elements() != inputs[0].elements() {
                    return Err(format!(
                        "reshape {} -> {target} changes element count",
                        inputs[0]
                    ));
                }
                Ok(target)
            }
            OpKind::Transpose { perm } => {
                arity(inputs, 1, self)?;
                if perm.len() != inputs[0].rank() {
                    return Err(format!("perm {perm:?} does not match {}", inputs[0]));
                }
                Ok(inputs[0].permute(perm))
            }
            OpKind::Softmax | OpKind::RmsNorm | OpKind::LayerNorm => {
                // Norms may take optional scale/bias vectors as extra inputs.
                if inputs.is_empty() {
                    return Err(format!("{self:?} needs at least one input"));
                }
                Ok(inputs[0].clone())
            }
            OpKind::Reduce(_) => {
                arity(inputs, 1, self)?;
                let d = inputs[0].dims();
                if d.len() == 1 {
                    Ok(Shape::scalar())
                } else {
                    Ok(Shape::new(d[..d.len() - 1].to_vec()))
                }
            }
            OpKind::Embedding => {
                arity(inputs, 2, self)?;
                let table = inputs[0];
                let ids = inputs[1];
                if table.rank() != 2 {
                    return Err(format!("embedding table must be rank-2, got {table}"));
                }
                let mut dims = ids.dims().to_vec();
                dims.push(table.dims()[1]);
                Ok(Shape::new(dims))
            }
            OpKind::Slice { axis, parts, index } => {
                arity(inputs, 1, self)?;
                let mut dims = inputs[0].dims().to_vec();
                if *axis >= dims.len() || *index >= *parts {
                    return Err(format!("bad slice axis={axis} parts={parts} index={index}"));
                }
                if !dims[*axis].is_multiple_of(*parts) {
                    return Err(format!(
                        "axis {axis} of {} not divisible by {parts}",
                        inputs[0]
                    ));
                }
                dims[*axis] /= parts;
                Ok(Shape::new(dims))
            }
            OpKind::Concat { axis } => {
                if inputs.is_empty() {
                    return Err("concat needs at least one input".to_string());
                }
                let mut dims = inputs[0].dims().to_vec();
                if *axis >= dims.len() {
                    return Err(format!("bad concat axis {axis}"));
                }
                for s in &inputs[1..] {
                    if s.rank() != dims.len() {
                        return Err("concat rank mismatch".to_string());
                    }
                    dims[*axis] += s.dims()[*axis];
                }
                Ok(Shape::new(dims))
            }
            OpKind::KvAppend => {
                arity(inputs, 2, self)?;
                // inputs: (cache, new rows); output has cache shape.
                Ok(inputs[0].clone())
            }
            OpKind::AllReduce { participants } => {
                if *participants == 0 {
                    return Err("allreduce needs at least one participant".to_string());
                }
                arity(inputs, 1, self)?;
                Ok(inputs[0].clone())
            }
        }
    }

    /// FLOPs performed given input shapes, output shape, and the data type.
    pub fn flops(&self, inputs: &[&Shape], output: &Shape, dtype: DType) -> Flops {
        let out_elems = output.elements() as f64;
        let f = match self {
            OpKind::Gemm { .. } => {
                let k = inputs[0].inner() as f64;
                out_elems * k * dtype.flops_per_mac() as f64
            }
            OpKind::SparseGemm { density, .. } => {
                let k = inputs[0].inner() as f64;
                out_elems * k * dtype.flops_per_mac() as f64 * density
            }
            OpKind::Unary(u) => out_elems * u.flops_per_element() as f64,
            OpKind::Binary(BinaryKind::Mul) => out_elems * dtype.flops_per_mul() as f64,
            OpKind::Binary(_) => out_elems,
            OpKind::Softmax => out_elems * 5.0,
            OpKind::RmsNorm => out_elems * 4.0,
            OpKind::LayerNorm => out_elems * 5.0,
            OpKind::Rope => out_elems * 6.0,
            OpKind::Reduce(_) => inputs[0].elements() as f64,
            OpKind::Transpose { .. }
            | OpKind::Reshape { .. }
            | OpKind::Embedding
            | OpKind::Slice { .. }
            | OpKind::Concat { .. }
            | OpKind::KvAppend
            | OpKind::AllReduce { .. } => 0.0,
        };
        Flops::new(f)
    }

    /// Whether this op is a contraction that runs on PCU systolic arrays.
    pub fn is_gemm(&self) -> bool {
        matches!(self, OpKind::Gemm { .. } | OpKind::SparseGemm { .. })
    }

    /// Short mnemonic used in reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Gemm { .. } => "gemm",
            OpKind::SparseGemm { .. } => "spgemm",
            OpKind::Unary(UnaryKind::Silu) => "silu",
            OpKind::Unary(UnaryKind::Gelu) => "gelu",
            OpKind::Unary(UnaryKind::Exp) => "exp",
            OpKind::Unary(UnaryKind::Rsqrt) => "rsqrt",
            OpKind::Unary(UnaryKind::Cast) => "cast",
            OpKind::Unary(UnaryKind::Scale) => "scale",
            OpKind::Unary(UnaryKind::Neg) => "neg",
            OpKind::Binary(BinaryKind::Add) => "add",
            OpKind::Binary(BinaryKind::Sub) => "sub",
            OpKind::Binary(BinaryKind::Mul) => "mul",
            OpKind::Binary(BinaryKind::Div) => "div",
            OpKind::Binary(BinaryKind::Max) => "max",
            OpKind::Transpose { .. } => "transpose",
            OpKind::Reshape { .. } => "reshape",
            OpKind::Softmax => "softmax",
            OpKind::RmsNorm => "rmsnorm",
            OpKind::LayerNorm => "layernorm",
            OpKind::Rope => "rope",
            OpKind::Reduce(_) => "reduce",
            OpKind::Embedding => "embedding",
            OpKind::Slice { .. } => "slice",
            OpKind::Concat { .. } => "concat",
            OpKind::KvAppend => "kvappend",
            OpKind::AllReduce { .. } => "allreduce",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A node in the dataflow graph: one operator application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    pub name: String,
    pub op: OpKind,
    pub inputs: Vec<TensorId>,
    pub output: TensorId,
    /// Scheduling region (e.g. transformer layer index). The compiler's
    /// fusion pass never merges nodes from different regions: identical
    /// regions compile to one reusable kernel program, which is how a
    /// decoder model runs with "virtually zero kernel launch overheads"
    /// (§VI-B) despite one launch per layer.
    pub region: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec())
    }

    #[test]
    fn gemm_shape_inference() {
        let op = OpKind::Gemm { transpose_b: false };
        let a = s(&[8, 128, 64]);
        let b = s(&[64, 256]);
        assert_eq!(op.infer_shape(&[&a, &b]).unwrap(), s(&[8, 128, 256]));
    }

    #[test]
    fn gemm_transpose_b() {
        let op = OpKind::Gemm { transpose_b: true };
        let a = s(&[128, 64]);
        let b = s(&[256, 64]);
        assert_eq!(op.infer_shape(&[&a, &b]).unwrap(), s(&[128, 256]));
    }

    #[test]
    fn gemm_mismatch_rejected() {
        let op = OpKind::Gemm { transpose_b: false };
        let a = s(&[128, 64]);
        let b = s(&[65, 256]);
        assert!(op.infer_shape(&[&a, &b]).is_err());
    }

    #[test]
    fn gemm_flops_are_2mnk() {
        let op = OpKind::Gemm { transpose_b: false };
        let a = s(&[128, 64]);
        let b = s(&[64, 256]);
        let out = op.infer_shape(&[&a, &b]).unwrap();
        let f = op.flops(&[&a, &b], &out, DType::Bf16);
        assert_eq!(f.as_f64(), 2.0 * 128.0 * 256.0 * 64.0);
    }

    #[test]
    fn complex_gemm_flops_are_8mnk() {
        let op = OpKind::Gemm { transpose_b: false };
        let a = s(&[16, 32]);
        let b = s(&[32, 32]);
        let out = op.infer_shape(&[&a, &b]).unwrap();
        let f = op.flops(&[&a, &b], &out, DType::ComplexBf16);
        assert_eq!(f.as_f64(), 8.0 * 16.0 * 32.0 * 32.0);
    }

    #[test]
    fn sparse_gemm_scales_by_density() {
        let op = OpKind::SparseGemm {
            density: 0.125,
            transpose_b: false,
        };
        let a = s(&[64, 64]);
        let b = s(&[64, 64]);
        let out = op.infer_shape(&[&a, &b]).unwrap();
        let dense = OpKind::Gemm { transpose_b: false }.flops(&[&a, &b], &out, DType::Bf16);
        let sparse = op.flops(&[&a, &b], &out, DType::Bf16);
        assert!((sparse.as_f64() - dense.as_f64() * 0.125).abs() < 1.0);
    }

    #[test]
    fn slice_divides_axis() {
        let op = OpKind::Slice {
            axis: 1,
            parts: 4,
            index: 0,
        };
        assert_eq!(op.infer_shape(&[&s(&[2, 8, 3])]).unwrap(), s(&[2, 2, 3]));
        let bad = OpKind::Slice {
            axis: 1,
            parts: 3,
            index: 0,
        };
        assert!(bad.infer_shape(&[&s(&[2, 8, 3])]).is_err());
    }

    #[test]
    fn concat_accumulates_axis() {
        let op = OpKind::Concat { axis: 0 };
        let a = s(&[2, 4]);
        let b = s(&[3, 4]);
        assert_eq!(op.infer_shape(&[&a, &b]).unwrap(), s(&[5, 4]));
    }

    #[test]
    fn reduce_drops_inner_axis() {
        let op = OpKind::Reduce(ReduceKind::Sum);
        assert_eq!(op.infer_shape(&[&s(&[4, 8])]).unwrap(), s(&[4]));
        assert_eq!(op.infer_shape(&[&s(&[8])]).unwrap(), Shape::scalar());
    }

    #[test]
    fn embedding_appends_feature_dim() {
        let op = OpKind::Embedding;
        let table = s(&[32000, 4096]);
        let ids = s(&[2, 512]);
        assert_eq!(op.infer_shape(&[&table, &ids]).unwrap(), s(&[2, 512, 4096]));
    }

    #[test]
    fn transpose_is_reorder_and_zero_flops() {
        let op = OpKind::Transpose { perm: vec![1, 0] };
        assert_eq!(op.access_pattern(), AccessPattern::Reorder);
        let a = s(&[4, 8]);
        let out = op.infer_shape(&[&a]).unwrap();
        assert_eq!(out, s(&[8, 4]));
        assert_eq!(op.flops(&[&a], &out, DType::Bf16).as_f64(), 0.0);
    }

    #[test]
    fn reshape_preserves_elements() {
        let op = OpKind::Reshape {
            dims: vec![4, 2, 8],
        };
        assert_eq!(op.infer_shape(&[&s(&[8, 8])]).unwrap(), s(&[4, 2, 8]));
        let bad = OpKind::Reshape { dims: vec![4, 4] };
        assert!(bad.infer_shape(&[&s(&[8, 8])]).is_err());
        assert_eq!(op.access_pattern(), AccessPattern::Reorder);
    }

    #[test]
    fn batched_gemm_requires_matching_groups() {
        let op = OpKind::Gemm { transpose_b: false };
        let a = s(&[4, 16, 32]);
        let b = s(&[4, 32, 8]);
        assert_eq!(op.infer_shape(&[&a, &b]).unwrap(), s(&[4, 16, 8]));
        let mismatched = s(&[3, 32, 8]);
        assert!(op.infer_shape(&[&a, &mismatched]).is_err());
        let rank2_a = s(&[16, 32]);
        assert!(
            op.infer_shape(&[&rank2_a, &b]).is_err(),
            "rank-3 rhs needs rank-3 lhs"
        );
    }

    #[test]
    fn batched_gemm_flops_count_all_groups() {
        let op = OpKind::Gemm { transpose_b: false };
        let a = s(&[4, 16, 32]);
        let b = s(&[4, 32, 8]);
        let out = op.infer_shape(&[&a, &b]).unwrap();
        let f = op.flops(&[&a, &b], &out, DType::Bf16);
        assert_eq!(f.as_f64(), 2.0 * 4.0 * 16.0 * 8.0 * 32.0);
    }

    #[test]
    fn batched_gemm_transpose_b() {
        let op = OpKind::Gemm { transpose_b: true };
        let a = s(&[2, 8, 16]);
        let b = s(&[2, 4, 16]);
        assert_eq!(op.infer_shape(&[&a, &b]).unwrap(), s(&[2, 8, 4]));
    }

    #[test]
    fn allreduce_rejects_zero_participants() {
        let op = OpKind::AllReduce { participants: 0 };
        assert!(op.infer_shape(&[&s(&[4, 4])]).is_err());
    }

    #[test]
    fn access_patterns_classify() {
        assert_eq!(
            OpKind::Gemm { transpose_b: false }.access_pattern(),
            AccessPattern::Contraction
        );
        assert_eq!(OpKind::Softmax.access_pattern(), AccessPattern::RowLocal);
        assert_eq!(
            OpKind::Binary(BinaryKind::Add).access_pattern(),
            AccessPattern::Streaming
        );
        assert_eq!(
            OpKind::AllReduce { participants: 8 }.access_pattern(),
            AccessPattern::Collective
        );
    }
}
