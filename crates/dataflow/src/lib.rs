//! Dataflow graph IR for the SN40L reproduction.
//!
//! Models are expressed as directed acyclic graphs of tensor operators
//! (§III-A of the paper). Every operator reports its FLOP count and its
//! input/output byte traffic, which is what the fusion analysis
//! ([`intensity`]) and the compiler's static bandwidth model consume.
//!
//! # Example
//!
//! Build the paper's Figure 3 example (simplified Monarch FFT) and compute
//! the operational intensity of the fully fused pipeline (Table I):
//!
//! ```
//! use sn_dataflow::monarch::monarch_fig3;
//! use sn_dataflow::intensity::{fusion_levels, FusionLevel};
//!
//! let graph = monarch_fig3();
//! let levels = fusion_levels(&graph);
//! // Intensity strictly increases with fusion aggressiveness.
//! assert!(levels[&FusionLevel::None] < levels[&FusionLevel::Partial]);
//! assert!(levels[&FusionLevel::Partial] < levels[&FusionLevel::Full]);
//! ```

pub mod dot;
pub mod dtype;
pub mod graph;
pub mod intensity;
pub mod interp;
pub mod monarch;
pub mod op;
pub mod shape;
pub mod stats;
pub mod tensor;

pub use dtype::DType;
pub use graph::{Graph, GraphBuilder, GraphError, NodeId};
pub use op::{AccessPattern, BinaryKind, Node, OpKind, ReduceKind, UnaryKind};
pub use shape::Shape;
pub use tensor::{TensorDef, TensorId, TensorKind};
